"""Setup shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable-wheel support (it lets pip fall back to the legacy
``setup.py develop`` code path).
"""

from setuptools import setup

setup()

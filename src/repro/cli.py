"""Command-line interfaces: ``repro-assess``, ``repro-batch``,
``repro-serve``, ``repro-loadgen``, ``repro-chaos``, ``repro-crack``.

``repro-assess`` runs the Assess-Risk recipe (Figure 8) on a calibrated
benchmark or a FIMI ``.dat`` file, optionally followed by the
Similarity-by-Sampling curve (Figure 13).  ``repro-batch`` fans a
manifest of datasets out across the service layer's worker pool and
writes JSON-lines results; ``repro-serve`` exposes the engine over HTTP.
``repro-crack`` is the streaming attacker workbench: it loads a
consistency-graph instance, reads JSONL observations (stdin, a file, or
a file tailed with ``--watch``), and prints forced/forbidden events the
moment each identification locks on (see docs/attack.md).

Examples::

    repro-assess --benchmark retail --tolerance 0.1
    repro-assess --fimi my_data.dat --tolerance 0.05 --similarity
    repro-assess --benchmark chess --stats --report risk.md
    repro-assess --benchmark connect --protect quantile
    repro-assess --benchmark mushroom --save-assessment decision.json
    repro-batch manifest.json --workers 4 --output results.jsonl
    repro-serve --port 8080 --cache-dir /var/cache/repro
    repro-serve --async --cache-dir /var/cache/repro --shared-cache
    repro-loadgen --flavors threaded,async --connections 8,64
    repro-loadgen --smoke
    repro-chaos --seed 7 --duration 12
    repro-chaos --smoke
    repro-crack --instance staircase.json < observations.jsonl
    repro-crack --instance release.json --observations feed.jsonl --watch
    repro-crack --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from importlib import metadata

import numpy as np

import repro
from repro.analysis.profile import RiskProfile
from repro.beliefs.builders import uniform_width_belief
from repro.data.fimi import read_fimi
from repro.data.stats import describe
from repro.datasets.registry import BENCHMARK_NAMES, load_benchmark
from repro.errors import FormatError, ReproError
from repro.graph.bipartite import space_from_frequencies
from repro.io import assessment_to_json, load_json, save_json_atomic
from repro.protect.planner import protect_to_tolerance
from repro.recipe.assess import assess_risk
from repro.recipe.report import full_report
from repro.recipe.similarity import similarity_by_sampling

__all__ = [
    "main",
    "build_parser",
    "batch_main",
    "build_batch_parser",
    "serve_main",
    "build_serve_parser",
    "loadgen_main",
    "build_loadgen_parser",
    "chaos_main",
    "build_chaos_parser",
    "crack_main",
    "build_crack_parser",
]


def package_version() -> str:
    """The installed package version (source-tree fallback included)."""
    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        return repro.__version__


def _add_version_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
        help="print the package version and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-assess`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-assess",
        description="Assess the disclosure risk of releasing anonymized data "
        "(Lakshmanan, Ng, Ramesh; SIGMOD 2005).",
    )
    _add_version_flag(parser)
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--benchmark",
        choices=BENCHMARK_NAMES,
        help="analyze a calibrated Figure 9 benchmark",
    )
    source.add_argument("--fimi", metavar="PATH", help="analyze a FIMI .dat file")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="degree of tolerance tau: fraction of items the owner can "
        "afford to see cracked (default 0.1)",
    )
    parser.add_argument(
        "--delta",
        type=float,
        default=None,
        help="interval half-width override (default: median frequency gap)",
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="averaging runs for the alpha stage"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--similarity",
        action="store_true",
        help="also print the Similarity-by-Sampling curve (Figure 13)",
    )
    parser.add_argument(
        "--sample-fractions",
        type=float,
        nargs="+",
        default=[0.1, 0.3, 0.5, 0.7, 0.9],
        metavar="P",
        help="sample sizes for --similarity",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print database statistics before assessing",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write a per-item markdown risk profile to PATH",
    )
    parser.add_argument(
        "--protect",
        choices=["bin", "quantile", "suppress"],
        default=None,
        help="when the recipe does not disclose, search the smallest "
        "intervention of this kind that brings the release within tolerance",
    )
    parser.add_argument(
        "--full-report",
        metavar="PATH",
        default=None,
        help="write the complete markdown disclosure report to PATH",
    )
    parser.add_argument(
        "--save-assessment",
        metavar="PATH",
        default=None,
        help="persist the assessment as JSON to PATH",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    rng = np.random.default_rng(args.seed)
    try:
        if args.benchmark:
            dataset = load_benchmark(args.benchmark)
            source = dataset.profile
            print(f"dataset: calibrated {dataset.name!r} "
                  f"({len(source.domain)} items, {source.n_transactions} transactions)")
        else:
            source = read_fimi(args.fimi)
            print(f"dataset: {args.fimi} "
                  f"({len(source.domain)} items, {source.n_transactions} transactions)")

        if args.stats:
            print(describe(source).to_text())
            print()

        report = assess_risk(
            source, args.tolerance, delta=args.delta, runs=args.runs, rng=rng
        )
        print(report.summary())

        if args.report is not None:
            frequencies = source.frequencies()
            delta = report.delta
            if delta is None:
                from repro.data.frequency import FrequencyGroups

                delta = FrequencyGroups(frequencies).median_gap()
            belief = uniform_width_belief(frequencies, delta)
            space = space_from_frequencies(belief, frequencies)
            profile = RiskProfile.from_space(space)
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(profile.to_markdown())
                handle.write("\n")
            print(f"risk profile written to {args.report}")

        if args.full_report is not None:
            document = full_report(source, args.tolerance, rng=rng)
            with open(args.full_report, "w", encoding="utf-8") as handle:
                handle.write(document)
            print(f"full report written to {args.full_report}")

        if args.save_assessment is not None:
            save_json_atomic(assessment_to_json(report), args.save_assessment)
            print(f"assessment written to {args.save_assessment}")

        if args.protect is not None:
            if report.disclose:
                print(
                    "\nprotection skipped: the recipe already discloses, "
                    "no intervention is needed"
                )
            else:
                plan = protect_to_tolerance(
                    source, args.tolerance, strategy=args.protect, delta=report.delta
                )
                print(f"\nprotection plan: {plan.summary()}")

        if args.similarity:
            print("\nSimilarity-by-Sampling (Figure 13):")
            header_delta = "delta'"
            print(f"{'sample':>8}  {'alpha':>7}  {'std':>7}  {header_delta:>10}")
            for point in similarity_by_sampling(
                source, args.sample_fractions, rng=rng
            ):
                print(
                    f"{point.fraction:>7.0%}  {point.alpha_mean:>7.3f}  "
                    f"{point.alpha_std:>7.3f}  {point.delta_mean:>10.3g}"
                )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


# -- repro-batch ------------------------------------------------------------


def build_batch_parser() -> argparse.ArgumentParser:
    """The ``repro-batch`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-batch",
        description="Assess a manifest of datasets in parallel through the "
        "service layer, writing one JSON result line per dataset.",
    )
    _add_version_flag(parser)
    parser.add_argument(
        "manifest",
        help="JSON manifest: {\"defaults\": {params...}, \"datasets\": "
        "[{\"benchmark\"|\"fimi\": ..., \"name\": ..., params...}]} "
        "(see docs/service.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the assessment pool (default 1)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write JSON-lines results to PATH instead of stdout",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist assessment results under DIR (warm-starts later runs)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry transient per-job failures this many times (default 2)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout for pool jobs (default: none)",
    )
    parser.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="inject faults from a JSON schedule ({\"rules\": [...]}, see "
        "docs/service.md) — for failure-semantics testing",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="write one atomic per-job result file under DIR as jobs "
        "finish, so an interrupted batch can be resumed",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: skip jobs whose result file already "
        "exists in DIR (their records are emitted with \"resumed\": true)",
    )
    return parser


_PARAM_KEYS = ("tolerance", "delta", "runs", "seed", "interest")


def _manifest_jobs(manifest: dict) -> list:
    """Expand a manifest into named ``(name, profile, params, error)`` jobs.

    A bad *entry* (missing file, invalid parameters) becomes a job whose
    ``error`` is set instead of killing the batch; only a structurally
    malformed manifest raises.
    """
    from repro.service import AssessmentParams

    if not isinstance(manifest, dict) or not isinstance(manifest.get("datasets"), list):
        raise FormatError("manifest must be a JSON object with a 'datasets' list")
    defaults = manifest.get("defaults", {})
    if not isinstance(defaults, dict):
        raise FormatError("manifest 'defaults' must be a JSON object")
    jobs = []
    for position, entry in enumerate(manifest["datasets"]):
        if not isinstance(entry, dict):
            raise FormatError(f"dataset #{position} must be a JSON object")
        name = entry.get(
            "name", entry.get("benchmark", entry.get("fimi", f"dataset-{position}"))
        )
        try:
            if ("benchmark" in entry) == ("fimi" in entry):
                raise FormatError(
                    "needs exactly one of 'benchmark' or 'fimi'"
                )
            if "benchmark" in entry:
                source = load_benchmark(entry["benchmark"]).profile
            else:
                source = read_fimi(entry["fimi"]).to_profile()
            merged = {
                key: entry.get(key, defaults.get(key))
                for key in _PARAM_KEYS
                if entry.get(key, defaults.get(key)) is not None
            }
            if "tolerance" not in merged:
                raise FormatError(
                    "no tolerance (set it on the entry or in 'defaults')"
                )
            if "interest" in merged:
                merged["interest"] = frozenset(merged["interest"])
            jobs.append((name, source, AssessmentParams(**merged), None))
        except (ReproError, OSError, TypeError, ValueError) as error:
            jobs.append((name, None, None, f"{type(error).__name__}: {error}"))
    return jobs


def _result_record(name: str, result) -> dict:
    """The JSON-lines record for one finished (ok or failed) pool job."""
    record = {
        "name": name,
        "fingerprint": result.fingerprint,
        "cached": result.cached,
        "elapsed_seconds": result.elapsed_seconds,
    }
    if result.ok:
        record["assessment"] = assessment_to_json(result.assessment)
    else:
        record["error"] = result.error
    return record


def _load_resumed_record(path, fingerprint: str) -> dict | None:
    """A previously checkpointed record, or ``None`` when it is unusable.

    A torn, corrupt or mismatched checkpoint file silently falls back to
    recomputation — resuming must never be less safe than starting over.
    """
    try:
        record = load_json(path)
    except (FormatError, OSError):
        return None
    if (
        not isinstance(record, dict)
        or record.get("fingerprint") != fingerprint
        or "assessment" not in record
    ):
        return None
    return record


def batch_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-batch``; returns a process exit code."""
    from contextlib import nullcontext
    from pathlib import Path

    from repro.service import AssessmentCache, AssessmentEngine
    from repro.service.faults import fault_point, injected_faults, load_schedule
    from repro.service.fingerprint import request_fingerprint

    args = build_batch_parser().parse_args(argv)
    if args.resume and args.checkpoint is None:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return 1
    try:
        schedule = None if args.faults is None else load_schedule(args.faults)
        jobs = _manifest_jobs(load_json(args.manifest))
        engine = AssessmentEngine(
            cache=AssessmentCache(directory=args.cache_dir)
            if args.cache_dir
            else None
        )
        runnable = [
            (position, profile, params)
            for position, (_, profile, params, error) in enumerate(jobs)
            if error is None
        ]

        checkpoint_dir = None if args.checkpoint is None else Path(args.checkpoint)
        fingerprints: dict[int, str] = {}
        resumed: dict[int, dict] = {}
        if checkpoint_dir is not None:
            checkpoint_dir.mkdir(parents=True, exist_ok=True)
            for position, profile, params in runnable:
                fingerprints[position] = request_fingerprint(profile, params)
            if args.resume:
                for position, fingerprint in fingerprints.items():
                    record = _load_resumed_record(
                        checkpoint_dir / f"{fingerprint}.json", fingerprint
                    )
                    if record is not None:
                        resumed[position] = record
        pending = [job for job in runnable if job[0] not in resumed]

        by_position: dict[int, object] = {}
        with injected_faults(schedule) if schedule is not None else nullcontext():
            if checkpoint_dir is None:
                results = engine.assess_many(
                    [(profile, params) for _, profile, params in pending],
                    workers=args.workers,
                    retries=args.retries,
                    timeout_seconds=args.timeout,
                )
                for (position, _, _), result in zip(pending, results):
                    by_position[position] = result
            else:
                # Chunked execution: each finished chunk is durably
                # checkpointed before the next starts, so an interrupt
                # loses at most one chunk of work.
                chunk = max(args.workers, 1)
                for start in range(0, len(pending), chunk):
                    batch = pending[start : start + chunk]
                    results = engine.assess_many(
                        [(profile, params) for _, profile, params in batch],
                        workers=args.workers,
                        retries=args.retries,
                        timeout_seconds=args.timeout,
                    )
                    for (position, _, _), result in zip(batch, results):
                        by_position[position] = result
                        if result.ok:
                            name = jobs[position][0]
                            fault_point("checkpoint.write")
                            save_json_atomic(
                                _result_record(name, result),
                                checkpoint_dir
                                / f"{fingerprints[position]}.json",
                            )
        if resumed:
            print(
                f"resumed {len(resumed)} job(s) from {checkpoint_dir}",
                file=sys.stderr,
            )
        if schedule is not None:
            print(
                f"fault injection: {len(schedule.events)} event(s) fired "
                f"in this process (pool workers fire their own copies)",
                file=sys.stderr,
            )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    lines = []
    failures = 0
    for position, (name, _, _, load_error) in enumerate(jobs):
        if load_error is not None:
            record = {"name": name, "error": load_error}
            failures += 1
        elif position in resumed:
            record = dict(resumed[position])
            record["name"] = name
            record["resumed"] = True
        else:
            result = by_position.get(position)
            record = _result_record(name, result)
            if not result.ok:
                failures += 1
        lines.append(json.dumps(record, sort_keys=True))

    text = "\n".join(lines) + "\n"
    if args.output is None:
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{len(lines)} result(s) written to {args.output}"
              + (f" ({failures} failed)" if failures else ""))
    return 1 if failures == len(lines) and lines else 0


# -- repro-serve ------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the Assess-Risk engine over HTTP "
        "(POST /assess, GET /healthz, GET /metrics).",
    )
    _add_version_flag(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks a free one)"
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist assessment results under DIR",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=256,
        help="in-memory result-cache capacity (default 256)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log one line per HTTP request"
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="graceful-shutdown drain window for in-flight requests "
        "on SIGTERM/SIGINT (default 5.0)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="concurrent assessments admitted to compute (default 8)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="assessments allowed to wait for an admission slot before "
        "requests are shed with HTTP 429 (default 32)",
    )
    parser.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="inject faults from a JSON schedule ({\"rules\": [...]}, see "
        "docs/service.md) — for robustness testing only",
    )
    parser.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="serve from a single asyncio event loop (keep-alive + "
        "pipelining, engine work on a bounded thread executor) instead "
        "of one thread per connection",
    )
    parser.add_argument(
        "--shared-cache",
        action="store_true",
        help="treat --cache-dir as a tier shared by several replica "
        "processes: cold computes are single-flighted across processes "
        "through lease files",
    )
    parser.add_argument(
        "--lease-stale",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds without a heartbeat before a shared-cache lease is "
        "considered abandoned and taken over (default 5.0; chaos runs "
        "shrink this so crashed owners recover within the run)",
    )
    return parser


def serve_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-serve``; returns a process exit code.

    Runs until ``SIGTERM`` or ``SIGINT``, then stops accepting, drains
    in-flight requests for up to ``--grace`` seconds, and exits 0.
    """
    from contextlib import nullcontext

    from repro.service import AssessmentCache, AssessmentEngine, make_server
    from repro.service.faults import injected_faults, load_schedule
    from repro.service.server import run_until_signal

    args = build_serve_parser().parse_args(argv)
    try:
        schedule = None if args.faults is None else load_schedule(args.faults)
        from repro.service.lease import DEFAULT_STALE_AFTER

        engine = AssessmentEngine(
            cache=AssessmentCache(
                capacity=args.capacity,
                directory=args.cache_dir,
                shared=args.shared_cache,
                lease_stale_seconds=(
                    DEFAULT_STALE_AFTER
                    if args.lease_stale is None
                    else args.lease_stale
                ),
            )
        )
        if args.use_async:
            from repro.service.aio import serve_async

            banner = (
                f"repro-serve {package_version()} listening on "
                f"http://{args.host}:{{port}}"
            )
            with injected_faults(schedule) if schedule is not None else nullcontext():
                serve_async(
                    host=args.host,
                    port=args.port,
                    engine=engine,
                    quiet=not args.verbose,
                    grace_seconds=args.grace,
                    max_inflight=args.max_inflight,
                    max_queue=args.max_queue,
                    banner=banner,
                )
            if schedule is not None:
                print(
                    f"fault injection: {len(schedule.events)} event(s) fired",
                    file=sys.stderr,
                )
            print("shutting down")
            return 0
        server = make_server(
            host=args.host,
            port=args.port,
            engine=engine,
            quiet=not args.verbose,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
        )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    print(
        f"repro-serve {package_version()} listening on http://{host}:{port}",
        flush=True,
    )
    with injected_faults(schedule) if schedule is not None else nullcontext():
        run_until_signal(server, grace_seconds=args.grace)
    if schedule is not None:
        print(
            f"fault injection: {len(schedule.events)} event(s) fired",
            file=sys.stderr,
        )
    print("shutting down")
    return 0


# -- repro-loadgen ----------------------------------------------------------


def build_loadgen_parser() -> argparse.ArgumentParser:
    """The ``repro-loadgen`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-loadgen",
        description="Replayable load harness for the serving stack: drives "
        "real repro-serve subprocesses (threaded or --async, 1..N replicas) "
        "with seeded Zipf-skewed traffic and appends the measured cells to "
        "the BENCH_service.json trajectory.",
    )
    _add_version_flag(parser)
    parser.add_argument(
        "--flavors",
        default="threaded,async",
        help="comma-separated server flavors to measure (default both)",
    )
    parser.add_argument(
        "--connections",
        default="8,64",
        help="comma-separated concurrency levels per cell (default 8,64)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=4.0,
        metavar="SECONDS",
        help="measured window per cell (default 4.0)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="server processes per throughput cell (default 1)",
    )
    parser.add_argument(
        "--profiles",
        type=int,
        default=50,
        help="distinct request fingerprints in the workload (default 50)",
    )
    parser.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        help="Zipf skew exponent of the fingerprint popularity (default 1.1)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--requests",
        type=int,
        default=1_000_000,
        help="cap on requests per connection (default: duration-bounded)",
    )
    parser.add_argument(
        "--no-shared-trial",
        action="store_true",
        help="skip the 2-replica shared-cache cold-race trial",
    )
    parser.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="forward a fault schedule to every server replica",
    )
    parser.add_argument(
        "--label",
        default="full",
        help="label recorded with this run in the trajectory",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="BENCH_service.json path (default: repo root next to src/)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny run of both flavors + a shared-cache race; asserts the "
        "committed BENCH_service.json has a trajectory, writes nothing",
    )
    return parser


def _default_bench_path():
    from pathlib import Path

    return Path(repro.__file__).resolve().parent.parent.parent / "BENCH_service.json"


def loadgen_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-loadgen``; returns a process exit code."""
    import tempfile
    from pathlib import Path

    from repro.service.loadgen import (
        ReplicaPool,
        WorkloadSpec,
        append_trajectory,
        run_cell,
        run_shared_cache_trial,
    )

    args = build_loadgen_parser().parse_args(argv)
    flavors = [f.strip() for f in args.flavors.split(",") if f.strip()]
    connections = [int(c) for c in args.connections.split(",") if c.strip()]
    if args.smoke:
        flavors = ["threaded", "async"]
        connections = [2]
        spec = WorkloadSpec(profiles=6, zipf_s=args.zipf, seed=args.seed)
        duration = 1.0
    else:
        spec = WorkloadSpec(
            profiles=args.profiles, zipf_s=args.zipf, seed=args.seed
        )
        duration = args.duration

    cells = []
    try:
        for flavor in flavors:
            with ReplicaPool(
                count=args.replicas, flavor=flavor, faults=args.faults
            ) as pool:
                for concurrency in connections:
                    cell = run_cell(
                        pool,
                        spec,
                        connections=concurrency,
                        duration_seconds=duration,
                        max_requests_per_connection=args.requests,
                    )
                    cells.append(cell)
                    print(
                        f"{cell.flavor} x{cell.replicas} c={cell.connections}: "
                        f"{cell.rps:.0f} rps, p50 {cell.p50_ms:.2f} ms, "
                        f"p99 {cell.p99_ms:.2f} ms, shed {cell.shed_rate:.1%}, "
                        f"hit {cell.cache_hit_ratio:.1%}",
                        flush=True,
                    )
                fleet = pool.supervisor.status()
                print(
                    f"supervisor: {len(fleet['replicas'])} replica(s), "
                    f"restarts={fleet['restarts']}, "
                    f"crash_loops={fleet['crash_loops']}",
                    flush=True,
                )

        shared_trial = None
        if not args.no_shared_trial:
            with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
                shared_trial = run_shared_cache_trial(
                    Path(tmp) / "cache",
                    WorkloadSpec(
                        profiles=spec.profiles, zipf_s=0.2, seed=spec.seed
                    ),
                    replicas=2,
                    connections=4 if args.smoke else 8,
                    flavor="threaded",
                    duration_seconds=2.0 if args.smoke else duration,
                )
            print(
                f"shared-cache x{shared_trial['replicas']}: "
                f"{shared_trial['computed_total']} computes for "
                f"{shared_trial['fingerprints']} fingerprints "
                f"(per replica {shared_trial['computed_per_replica']}), "
                f"coalesced {shared_trial['lease_coalesced']}",
                flush=True,
            )
            if shared_trial["computed_total"] > shared_trial["fingerprints"]:
                print(
                    "error: shared-cache trial recomputed a fingerprint "
                    f"({shared_trial['computed_total']} computes > "
                    f"{shared_trial['fingerprints']} fingerprints)",
                    file=sys.stderr,
                )
                return 1
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    for cell in cells:
        if cell.client_errors or any(
            code >= 400 for code in cell.statuses if code != 429
        ):
            print(
                f"error: cell {cell.flavor}/c={cell.connections} saw "
                f"client_errors={cell.client_errors} statuses={cell.statuses}",
                file=sys.stderr,
            )
            return 1

    output = _default_bench_path() if args.output is None else Path(args.output)
    if args.smoke:
        if not output.exists():
            print(f"error: {output} is not committed", file=sys.stderr)
            return 1
        report = json.loads(output.read_text())
        if not report.get("trajectory"):
            print(
                f"error: {output} lacks a trajectory section — regenerate "
                "with a full repro-loadgen run",
                file=sys.stderr,
            )
            return 1
        if not report.get("chaos"):
            print(
                f"error: {output} lacks a chaos section — regenerate "
                "with a full repro-chaos run",
                file=sys.stderr,
            )
            return 1
        print(
            f"smoke OK: both flavors served; committed {output.name} has "
            f"{len(report['trajectory'])} trajectory record(s) and "
            f"{len(report['chaos'])} chaos record(s)"
        )
        return 0

    append_trajectory(output, cells, shared_trial, label=args.label)
    print(f"appended {len(cells)} cell(s) to {output}")
    return 0


# -- repro-chaos ------------------------------------------------------------


def build_chaos_parser() -> argparse.ArgumentParser:
    """The ``repro-chaos`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Chaos harness for the serving stack: generates a "
        "replayable randomized event schedule (kill -9, SIGTERM, fault "
        "bursts, overload spikes) from a seed, fires it at a supervised "
        "replica pool under live load, then verifies that nothing broke "
        "(see docs/robustness.md).",
    )
    _add_version_flag(parser)
    parser.add_argument("--seed", type=int, default=0, help="schedule seed")
    parser.add_argument(
        "--duration",
        type=float,
        default=12.0,
        metavar="SECONDS",
        help="length of the chaos window (default 12.0, minimum 6.0)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="supervised server processes sharing one cache (default 2)",
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=6,
        help="persistent client connections driving load (default 6)",
    )
    parser.add_argument(
        "--flavor",
        choices=("threaded", "async"),
        default="threaded",
        help="server flavor under test (default threaded)",
    )
    parser.add_argument(
        "--profiles",
        type=int,
        default=18,
        help="distinct request fingerprints in the workload (default 18)",
    )
    parser.add_argument(
        "--lease-stale",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="lease staleness window forwarded to every replica "
        "(default 1.0 — short, so killed owners are taken over quickly)",
    )
    parser.add_argument(
        "--min-kills",
        type=int,
        default=3,
        help="SIGKILLs the schedule must deliver (default 3)",
    )
    parser.add_argument(
        "--run-dir",
        metavar="PATH",
        default=None,
        help="keep the shared cache and burst schedules here for "
        "post-mortem debugging (default: a temporary directory)",
    )
    parser.add_argument(
        "--label",
        default="chaos",
        help="label recorded with this run in the chaos section",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="BENCH_service.json path (default: repo root next to src/)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seeded bounded run: asserts >= --min-kills kills delivered, "
        "zero verifier violations, a reproducible schedule digest, and a "
        "chaos section in the committed BENCH_service.json; writes nothing",
    )
    return parser


def _print_chaos_record(record: dict[str, object]) -> None:
    client = record["client"]
    delivered = record["events_delivered"]
    fleet = record["supervisor"]
    verifier = record["verifier"]
    assert isinstance(client, dict)
    assert isinstance(delivered, dict)
    assert isinstance(fleet, dict)
    assert isinstance(verifier, dict)
    print(
        f"schedule {record['schedule_digest']} (seed {record['seed']}): "
        f"delivered kills={delivered['kills']} terms={delivered['terms']} "
        f"bursts={delivered['bursts']} spikes={delivered['spikes']}",
        flush=True,
    )
    print(
        f"client: {client['requests']} requests, {client['errors']} "
        f"connection errors, {client['reconnects']} reconnects, "
        f"{client['fingerprints_answered']} fingerprints answered",
        flush=True,
    )
    print(
        f"supervisor: restarts={fleet['restarts']}, "
        f"crash_loops={fleet['crash_loops']}, "
        f"sigkill_escalations={fleet['sigkill_escalations']}",
        flush=True,
    )
    checks = verifier["checks"]
    assert isinstance(checks, dict)
    print(
        f"verifier: {'PASS' if verifier['ok'] else 'FAIL'} — "
        f"{checks.get('artifacts', 0)} artifacts, "
        f"{checks.get('commits_logged', 0)} commits, "
        f"compute excess {checks.get('compute_excess', 0)} "
        f"(allowance {checks.get('compute_excess_allowance', 0)})",
        flush=True,
    )
    violations = verifier["violations"]
    assert isinstance(violations, list)
    for violation in violations:
        assert isinstance(violation, dict)
        print(
            f"violation [{violation['kind']}]: {violation['message']}",
            file=sys.stderr,
            flush=True,
        )


def chaos_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-chaos``; returns a process exit code."""
    import tempfile
    from contextlib import ExitStack
    from pathlib import Path

    from repro.service.chaos import (
        append_chaos,
        generate_schedule,
        run_chaos,
        schedule_digest,
    )

    args = build_chaos_parser().parse_args(argv)
    if args.smoke:
        # Bounded, seeded gate for CI: the same parameters every time, so
        # a red run always replays with ``repro-chaos --seed 7 --run-dir d``.
        args.seed, args.duration = 7, 10.0
        args.replicas, args.connections = 2, 6
        args.flavor, args.profiles = "threaded", 18
        args.lease_stale, args.min_kills = 1.0, 3

    with ExitStack() as stack:
        if args.run_dir is None:
            run_dir = Path(
                stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="repro-chaos-")
                )
            )
        else:
            run_dir = Path(args.run_dir)
        try:
            result = run_chaos(
                run_dir,
                seed=args.seed,
                duration_seconds=args.duration,
                replicas=args.replicas,
                connections=args.connections,
                flavor=args.flavor,
                profiles=args.profiles,
                lease_stale_seconds=args.lease_stale,
                min_kills=args.min_kills,
                label=args.label,
            )
        except (ReproError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        _print_chaos_record(result.record)
        if not result.report.ok and args.run_dir is None:
            print(
                "hint: rerun with --run-dir PATH to keep the cache "
                "directory and burst schedules for post-mortem",
                file=sys.stderr,
            )

    delivered_kills = result.delivered.kills
    if delivered_kills < args.min_kills:
        print(
            f"error: schedule promised {args.min_kills} kills but only "
            f"{delivered_kills} landed",
            file=sys.stderr,
        )
        return 1

    output = _default_bench_path() if args.output is None else Path(args.output)
    if args.smoke:
        if not result.report.ok:
            print("error: verifier found violations", file=sys.stderr)
            return 1
        replayed = schedule_digest(
            generate_schedule(
                args.seed,
                args.duration,
                args.replicas,
                min_kills=args.min_kills,
                lease_stale_seconds=args.lease_stale,
            )
        )
        if replayed != result.record["schedule_digest"]:
            print(
                f"error: schedule digest is not reproducible "
                f"({replayed} != {result.record['schedule_digest']})",
                file=sys.stderr,
            )
            return 1
        if not output.exists():
            print(f"error: {output} is not committed", file=sys.stderr)
            return 1
        report = json.loads(output.read_text())
        if not report.get("chaos"):
            print(
                f"error: {output} lacks a chaos section — regenerate "
                "with a full repro-chaos run",
                file=sys.stderr,
            )
            return 1
        print(
            f"smoke OK: {delivered_kills} kills survived; committed "
            f"{output.name} has {len(report['chaos'])} chaos record(s)"
        )
        return 0

    append_chaos(output, result.record)
    print(f"appended chaos record to {output}")
    return 0 if result.report.ok else 1


# -- repro-crack ------------------------------------------------------------


def build_crack_parser() -> argparse.ArgumentParser:
    """The ``repro-crack`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-crack",
        description="Streaming attacker workbench: maintain the exact "
        "forced/forbidden/undecided edge partition of a consistency graph "
        "as JSONL observations arrive (see docs/attack.md).",
    )
    _add_version_flag(parser)
    parser.add_argument(
        "--instance",
        metavar="PATH",
        default=None,
        help="instance JSON: {\"adjacency\": [[...], ...]} with optional "
        "\"observed\", \"truth\" and \"degree_k\", or "
        "{\"profile\": <profile_to_json payload>, \"delta\": 0.01}",
    )
    parser.add_argument(
        "--observations",
        metavar="PATH",
        default=None,
        help="JSONL observation stream (default: stdin)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="tail --observations for appended lines until a "
        "{\"kind\": \"close\"} arrives",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="polling interval for --watch (default 0.5)",
    )
    parser.add_argument(
        "--degree-k",
        type=int,
        default=None,
        help="naked-subset propagation depth override (default 3)",
    )
    parser.add_argument(
        "--no-summary",
        action="store_true",
        help="suppress the per-step summary events",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI self-check (staircase forces everything without "
        "touching Ryser or the interval DP) and exit",
    )
    return parser


def _crack_smoke() -> int:
    """The ``--smoke`` gate: propagation alone must crack the staircase.

    Figure 6(a)'s staircase graph has exactly one consistent mapping, so
    the solver must stream every forced identification from the initial
    classification — with the exact counting engines (Ryser, interval
    DP) patched to fail on touch, proving the workbench never leans on
    them.
    """
    # import_module, not ``import repro.graph.permanent``: the package
    # re-exports the ``permanent`` *function* under the same attribute.
    from importlib import import_module

    from repro.attack.solver import ConsistencySolver, Observation

    permanent_mod = import_module("repro.graph.permanent")
    intervaldp_mod = import_module("repro.graph.intervaldp")

    n = 6
    adjacency = [list(range(i + 1)) for i in range(n)]

    def _forbidden_engine(*args: object, **kwargs: object) -> object:
        raise AssertionError("smoke: the exact counting engines must not run")

    saved = (permanent_mod.permanent, intervaldp_mod.assignment_count)
    permanent_mod.permanent = _forbidden_engine  # type: ignore[assignment]
    intervaldp_mod.assignment_count = _forbidden_engine  # type: ignore[assignment]
    try:
        solver = ConsistencySolver(adjacency, true_partner_of=list(range(n)))
        events = solver.bootstrap()
        forced = {(e.item, e.anon) for e in events if e.kind == "forced"}
        if forced != {(i, i) for i in range(n)}:
            print(f"smoke FAILED: forced pairs {sorted(forced)}", file=sys.stderr)
            return 1
        if any(e.crack is not True for e in events if e.kind == "forced"):
            print("smoke FAILED: a forced pair was not a certified crack", file=sys.stderr)
            return 1
        summary = solver.summary()
        if summary["undecided"] != 0 or summary.get("certified_cracks") != n:
            print(f"smoke FAILED: summary {summary}", file=sys.stderr)
            return 1
        # A redundant confirm must change nothing; a contradicting one
        # must flip the instance to infeasible — still engine-free.
        if solver.ingest(Observation(kind="confirm", item=0, anon=0)):
            print("smoke FAILED: a redundant confirm emitted events", file=sys.stderr)
            return 1
        contradiction = solver.ingest(Observation(kind="confirm", item=1, anon=0))
        if [e.kind for e in contradiction] != ["infeasible"]:
            print("smoke FAILED: contradiction not detected", file=sys.stderr)
            return 1
    finally:
        permanent_mod.permanent, intervaldp_mod.assignment_count = saved
    print(
        f"repro-crack smoke ok: staircase n={n} streamed {n} certified "
        "identifications, exact engines untouched"
    )
    return 0


def crack_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-crack``; returns a process exit code."""
    import time

    from repro.attack.solver import SolverEvent, decode_observation, read_observations
    from repro.service.crack import solver_from_instance

    args = build_crack_parser().parse_args(argv)
    if args.smoke:
        return _crack_smoke()
    if args.instance is None:
        print("error: --instance is required (or --smoke)", file=sys.stderr)
        return 2
    if args.watch and args.observations is None:
        print("error: --watch needs --observations PATH to tail", file=sys.stderr)
        return 2

    def emit(event: SolverEvent) -> None:
        print(event.encode(), flush=True)

    try:
        instance = load_json(args.instance)
        if args.degree_k is not None:
            instance = {**instance, "degree_k": args.degree_k}
        solver = solver_from_instance(instance)

        def ingest(observation) -> None:
            for event in solver.ingest(observation):
                emit(event)
            if not args.no_summary and observation.kind != "close":
                counts = {
                    key: int(value)
                    for key, value in solver.summary().items()
                    if key not in ("n", "step")
                }
                emit(SolverEvent(kind="summary", step=solver.step, counts=counts))

        for event in solver.bootstrap():
            emit(event)
        if args.watch:
            with open(args.observations, "r", encoding="utf-8") as handle:
                while not solver.closed:
                    line = handle.readline()
                    if not line:
                        time.sleep(args.poll)
                        continue
                    if line.strip():
                        ingest(decode_observation(line))
        else:
            if args.observations is None:
                for observation in read_observations(sys.stdin):
                    ingest(observation)
                    if solver.closed:
                        break
            else:
                with open(args.observations, "r", encoding="utf-8") as handle:
                    for observation in read_observations(handle):
                        ingest(observation)
                        if solver.closed:
                            break
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: ``repro-assess``.

Runs the Assess-Risk recipe (Figure 8) on a calibrated benchmark or a
FIMI ``.dat`` file, optionally followed by the Similarity-by-Sampling
curve (Figure 13).

Examples::

    repro-assess --benchmark retail --tolerance 0.1
    repro-assess --fimi my_data.dat --tolerance 0.05 --similarity
    repro-assess --benchmark chess --stats --report risk.md
    repro-assess --benchmark connect --protect quantile
    repro-assess --benchmark mushroom --save-assessment decision.json
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.analysis.profile import RiskProfile
from repro.beliefs.builders import uniform_width_belief
from repro.data.fimi import read_fimi
from repro.data.stats import describe
from repro.datasets.registry import BENCHMARK_NAMES, load_benchmark
from repro.errors import ReproError
from repro.graph.bipartite import space_from_frequencies
from repro.io import assessment_to_json, save_json
from repro.protect.planner import protect_to_tolerance
from repro.recipe.assess import assess_risk
from repro.recipe.report import full_report
from repro.recipe.similarity import similarity_by_sampling

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-assess`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-assess",
        description="Assess the disclosure risk of releasing anonymized data "
        "(Lakshmanan, Ng, Ramesh; SIGMOD 2005).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--benchmark",
        choices=BENCHMARK_NAMES,
        help="analyze a calibrated Figure 9 benchmark",
    )
    source.add_argument("--fimi", metavar="PATH", help="analyze a FIMI .dat file")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="degree of tolerance tau: fraction of items the owner can "
        "afford to see cracked (default 0.1)",
    )
    parser.add_argument(
        "--delta",
        type=float,
        default=None,
        help="interval half-width override (default: median frequency gap)",
    )
    parser.add_argument(
        "--runs", type=int, default=5, help="averaging runs for the alpha stage"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--similarity",
        action="store_true",
        help="also print the Similarity-by-Sampling curve (Figure 13)",
    )
    parser.add_argument(
        "--sample-fractions",
        type=float,
        nargs="+",
        default=[0.1, 0.3, 0.5, 0.7, 0.9],
        metavar="P",
        help="sample sizes for --similarity",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print database statistics before assessing",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write a per-item markdown risk profile to PATH",
    )
    parser.add_argument(
        "--protect",
        choices=["bin", "quantile", "suppress"],
        default=None,
        help="when the recipe does not disclose, search the smallest "
        "intervention of this kind that brings the release within tolerance",
    )
    parser.add_argument(
        "--full-report",
        metavar="PATH",
        default=None,
        help="write the complete markdown disclosure report to PATH",
    )
    parser.add_argument(
        "--save-assessment",
        metavar="PATH",
        default=None,
        help="persist the assessment as JSON to PATH",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    rng = np.random.default_rng(args.seed)
    try:
        if args.benchmark:
            dataset = load_benchmark(args.benchmark)
            source = dataset.profile
            print(f"dataset: calibrated {dataset.name!r} "
                  f"({len(source.domain)} items, {source.n_transactions} transactions)")
        else:
            source = read_fimi(args.fimi)
            print(f"dataset: {args.fimi} "
                  f"({len(source.domain)} items, {source.n_transactions} transactions)")

        if args.stats:
            print(describe(source).to_text())
            print()

        report = assess_risk(
            source, args.tolerance, delta=args.delta, runs=args.runs, rng=rng
        )
        print(report.summary())

        if args.report is not None:
            frequencies = source.frequencies()
            delta = report.delta
            if delta is None:
                from repro.data.frequency import FrequencyGroups

                delta = FrequencyGroups(frequencies).median_gap()
            belief = uniform_width_belief(frequencies, delta)
            space = space_from_frequencies(belief, frequencies)
            profile = RiskProfile.from_space(space)
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(profile.to_markdown())
                handle.write("\n")
            print(f"risk profile written to {args.report}")

        if args.full_report is not None:
            document = full_report(source, args.tolerance, rng=rng)
            with open(args.full_report, "w", encoding="utf-8") as handle:
                handle.write(document)
            print(f"full report written to {args.full_report}")

        if args.save_assessment is not None:
            save_json(assessment_to_json(report), args.save_assessment)
            print(f"assessment written to {args.save_assessment}")

        if args.protect is not None and not report.disclose:
            plan = protect_to_tolerance(
                source, args.tolerance, strategy=args.protect, delta=report.delta
            )
            print(f"\nprotection plan: {plan.summary()}")

        if args.similarity:
            print("\nSimilarity-by-Sampling (Figure 13):")
            header_delta = "delta'"
            print(f"{'sample':>8}  {'alpha':>7}  {'std':>7}  {header_delta:>10}")
            for point in similarity_by_sampling(
                source, args.sample_fractions, rng=rng
            ):
                print(
                    f"{point.fraction:>7.0%}  {point.alpha_mean:>7.3f}  "
                    f"{point.alpha_std:>7.3f}  {point.delta_mean:>10.3g}"
                )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Bounded admission control for the HTTP front end.

A :class:`ThreadingHTTPServer` accepts every connection and gives each
its own thread, so under overload the process accumulates unbounded
concurrent computations until nothing finishes.  The
:class:`AdmissionController` bounds the damage:

* at most ``max_inflight`` assessments compute concurrently;
* at most ``max_queue`` more wait (FIFO via condition-variable
  wakeups) for a slot — a waiter gives up when its own deadline budget
  would expire before compute could even start;
* beyond that, requests are *shed* immediately (HTTP 429), because a
  client is better served by an instant retry signal than by a request
  parked on a doomed queue.

The ``inflight`` / ``queued`` gauges and the ``shed`` counter (on the
engine's :class:`~repro.service.metrics.ServiceMetrics`) expose the
controller's state; the ``server.admission`` fault-injection site fires
on every admission attempt so overload behaviour is deterministically
testable.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ReproError
from repro.service.faults import fault_point
from repro.service.metrics import ServiceMetrics

__all__ = ["AdmissionController", "QueueFullError", "AdmissionTimeout"]


class QueueFullError(ReproError):
    """Both the inflight slots and the waiting queue are full (HTTP 429)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionTimeout(ReproError):
    """A queued request's own deadline expired before a slot freed (503)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionController:
    """Bounded inflight + FIFO-ish queue with load shedding.

    Parameters
    ----------
    max_inflight:
        Concurrent admitted computations.
    max_queue:
        Requests allowed to wait for a slot; the next one is shed.
    metrics:
        Optional :class:`ServiceMetrics` for the ``inflight`` /
        ``queued`` gauges and the ``shed`` counter.
    """

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 32,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if max_inflight < 1:
            raise ReproError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ReproError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._metrics = metrics
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self._update_gauges()

    def _update_gauges(self) -> None:
        if self._metrics is not None:
            self._metrics.set_gauge("inflight", self._inflight)
            self._metrics.set_gauge("queued", self._queued)

    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def queued(self) -> int:
        with self._cond:
            return self._queued

    def snapshot(self) -> dict[str, int]:
        """Queue depth and limits, for ``GET /metrics``."""
        with self._cond:
            return {
                "inflight": self._inflight,
                "queued": self._queued,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
            }

    @contextmanager
    def admitted(self, timeout_seconds: Optional[float] = None) -> Iterator[None]:
        """Hold an inflight slot for the duration of the ``with`` block.

        Raises :class:`QueueFullError` when the queue is full (shed) and
        :class:`AdmissionTimeout` when *timeout_seconds* elapses while
        waiting.  *timeout_seconds* should be the request's remaining
        deadline: a request whose budget would expire on the queue is
        told to come back rather than admitted to fail.
        """
        fault_point("server.admission")
        deadline = (
            None if timeout_seconds is None else time.monotonic() + timeout_seconds
        )
        with self._cond:
            if self._inflight >= self.max_inflight:
                if self._queued >= self.max_queue:
                    if self._metrics is not None:
                        self._metrics.increment("shed")
                    raise QueueFullError(
                        f"admission queue full ({self.max_inflight} inflight, "
                        f"{self.max_queue} queued); request shed",
                        retry_after=1.0,
                    )
                self._queued += 1
                self._update_gauges()
                try:
                    while self._inflight >= self.max_inflight:
                        remaining = (
                            None if deadline is None else deadline - time.monotonic()
                        )
                        if remaining is not None and remaining <= 0:
                            raise AdmissionTimeout(
                                "request deadline expired while queued for "
                                "an admission slot",
                                retry_after=1.0,
                            )
                        self._cond.wait(remaining)
                finally:
                    self._queued -= 1
                    self._update_gauges()
            self._inflight += 1
            self._update_gauges()
        try:
            yield
        finally:
            with self._cond:
                self._inflight -= 1
                self._update_gauges()
                self._cond.notify()

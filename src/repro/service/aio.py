"""Asyncio HTTP front end: same routes, one event loop, many sockets.

The threaded server (:mod:`repro.service.server`) spends one OS thread
per connection; at hundreds of mostly-idle keep-alive connections the
scheduler overhead dominates on a small host.  This front end serves
the exact same routes — ``POST /assess``, ``POST /crack/step``,
``GET /healthz``, ``GET /metrics`` — from a single event loop
(:func:`asyncio.start_server`), parsing HTTP/1.1 with keep-alive and
pipelining, and dispatching the actual engine work to a bounded thread
executor.  Route semantics, admission control, the error mapping and
the metrics all come from the shared
:class:`~repro.service.routes.ServiceCore`, so the two flavors are
behaviourally identical; ``repro-serve --async`` selects this one.

Protocol notes
--------------

* Requests are parsed back-to-back off each connection's buffer, so a
  client that pipelines N requests gets N responses in order without
  waiting — the event loop interleaves the executor dispatches.
* Every response carries an exact ``Content-Length`` (the core
  guarantees a JSON body on every path), which is what makes keep-alive
  legal.  ``Connection: close`` is honoured, as is HTTP/1.0's
  close-by-default.
* A malformed request head, an oversized body, or a body shorter than
  its declared ``Content-Length`` answers 400 where possible and always
  closes the connection — after a framing error the stream cannot be
  trusted.

Graceful shutdown mirrors the threaded server: stop accepting, wait for
in-flight requests to drain (bounded by the grace period), then close
the remaining keep-alive connections and the executor.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS

from repro.service.admission import AdmissionController
from repro.service.engine import AssessmentEngine
from repro.service.routes import MAX_BODY_BYTES, RouteResponse, ServiceCore

__all__ = ["AsyncAssessmentServer", "serve_async"]

#: Upper bound on one request's head (request line + headers).
_MAX_HEAD_BYTES = 64 * 1024


def _parse_head(head: bytes) -> tuple[str, str, str, dict[str, str]] | None:
    """``(method, path, version, headers)`` from a request head, or ``None``.

    Tolerates ``\\r\\n`` and bare ``\\n`` line endings; header names are
    lower-cased.  Anything structurally off — no request line, a version
    that is not ``HTTP/1.x`` — is a parse failure, not an exception.
    """
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        return None
    lines = text.replace("\r\n", "\n").split("\n")
    parts = lines[0].split()
    if len(parts) != 3:
        return None
    method, path, version = parts
    if not version.startswith("HTTP/1."):
        return None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            return None
        headers[name.strip().lower()] = value.strip()
    return method, path, version, headers


def _keep_alive(version: str, headers: dict[str, str]) -> bool:
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        return connection == "keep-alive"
    return connection != "close"


def _encode_response(response: RouteResponse, keep_alive: bool) -> bytes:
    body = response.body()
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    if not keep_alive:
        lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def _bad_request(message: str) -> RouteResponse:
    return RouteResponse(
        400,
        {"error": {"type": "ValueError", "message": message}, "status": 400},
    )


class AsyncAssessmentServer:
    """An :func:`asyncio.start_server` front end over one :class:`ServiceCore`.

    Parameters
    ----------
    core:
        The shared route layer; a fresh one (fresh engine, default
        admission limits) when omitted.
    executor_workers:
        Threads in the dispatch executor — the real concurrency bound
        for engine work (admission control further bounds ``/assess``).
    """

    def __init__(
        self,
        core: ServiceCore | None = None,
        executor_workers: int = 8,
        quiet: bool = True,
    ) -> None:
        self.core = core if core is not None else ServiceCore()
        self.quiet = quiet
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="repro-aio"
        )
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task[None]] = set()

    # -- convenience pass-throughs (parity with AssessmentServer) ---------

    @property
    def engine(self) -> AssessmentEngine:
        return self.core.engine

    @property
    def admission(self) -> AdmissionController:
        return self.core.admission

    def inflight_requests(self) -> int:
        return self.core.inflight_requests()

    @property
    def server_port(self) -> int:
        assert self._server is not None, "server not started"
        sockets = self._server.sockets
        port: int = sockets[0].getsockname()[1]
        return port

    # -- lifecycle --------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting; ``port=0`` picks a free port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=_MAX_HEAD_BYTES
        )

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown_gracefully(self, grace_seconds: float = 5.0) -> bool:
        """Stop accepting, drain in-flight requests, close connections.

        Returns ``True`` when every in-flight request finished within
        *grace_seconds*.  Idle keep-alive connections are closed
        unconditionally afterwards — their clients get a clean EOF.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace_seconds
        drained = True
        while self.core.inflight_requests() > 0:
            if loop.time() >= deadline:
                drained = False
                break
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            writer.close()
        # Reap the connection handlers so loop teardown never cancels a
        # coroutine mid-read (which would log a spurious traceback).
        tasks = [task for task in self._tasks if not task.done()]
        if tasks:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*tasks, return_exceptions=True), timeout=1.0
                )
            except asyncio.TimeoutError:  # pragma: no cover - stuck handler
                drained = False
        self._executor.shutdown(wait=False)
        return drained

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            self.core.engine.metrics.increment("client_disconnects")
        except asyncio.CancelledError:
            pass  # loop shutdown closed us mid-read; nothing to answer
        finally:
            if task is not None:
                self._tasks.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except asyncio.IncompleteReadError as exc:
                if exc.partial:
                    # Mid-request EOF: the head never completed.
                    self.core.engine.metrics.increment("client_disconnects")
                return  # clean EOF between requests: keep-alive ended
            except asyncio.LimitOverrunError:
                await self._send(
                    writer, _bad_request("request head too large"), keep_alive=False
                )
                return
            parsed = _parse_head(head)
            if parsed is None:
                await self._send(
                    writer, _bad_request("malformed request head"), keep_alive=False
                )
                return
            method, path, version, headers = parsed
            keep_alive = _keep_alive(version, headers)
            try:
                length = int(headers.get("content-length", "0") or "0")
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                await self._send(
                    writer,
                    _bad_request(f"invalid Content-Length {headers.get('content-length')}"),
                    keep_alive=False,
                )
                return
            body = b""
            if length > 0:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    # Truncated body: the framing is gone; hang up (the
                    # client already stopped talking, a reply is moot).
                    self.core.engine.metrics.increment("client_disconnects")
                    return
            with self.core.tracked_request():
                response = await loop.run_in_executor(
                    self._executor, self.core.dispatch, method, path, body
                )
            await self._send(writer, response, keep_alive=keep_alive)
            if not keep_alive:
                return

    async def _send(
        self, writer: asyncio.StreamWriter, response: RouteResponse, keep_alive: bool
    ) -> None:
        writer.write(_encode_response(response, keep_alive))
        await writer.drain()


async def _run_until_signal(
    server: AsyncAssessmentServer,
    host: str,
    port: int,
    grace_seconds: float,
    banner: str | None,
) -> None:
    await server.start(host, port)
    if banner is not None:
        print(banner.format(port=server.server_port), flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[int] = []
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                break
    try:
        await stop.wait()
    except asyncio.CancelledError:  # pragma: no cover - external cancel
        pass
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.shutdown_gracefully(grace_seconds)


def serve_async(
    host: str = "127.0.0.1",
    port: int = 8080,
    engine: AssessmentEngine | None = None,
    quiet: bool = False,
    grace_seconds: float = 5.0,
    max_inflight: int = 8,
    max_queue: int = 32,
    executor_workers: int = 8,
    banner: str | None = None,
) -> None:
    """Run the asyncio flavor until interrupted (``repro-serve --async``).

    *banner*, when given, is printed once the socket is bound, with
    ``{port}`` substituted — the load harness parses it to discover an
    ephemeral port.  Exits cleanly on ``SIGTERM``/``SIGINT``, draining
    in-flight requests for up to *grace_seconds* first.
    """
    core = ServiceCore(
        engine=engine, max_inflight=max_inflight, max_queue=max_queue
    )
    server = AsyncAssessmentServer(
        core=core, executor_workers=executor_workers, quiet=quiet
    )
    try:
        asyncio.run(
            _run_until_signal(server, host, port, grace_seconds, banner)
        )
    except KeyboardInterrupt:
        pass

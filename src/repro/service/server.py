"""A stdlib-only JSON HTTP front end for the assessment engine.

Endpoints
---------

``POST /assess``
    Body: ``{"profile": <profile_to_json payload>, "tolerance": 0.05,
    "delta": null, "runs": 5, "seed": 0, "interest": [3, 7, "milk"],
    "deadline_seconds": 2.5}``
    (everything but ``profile`` and ``tolerance`` optional; *interest*
    items are raw JSON ints/strings matching the profile's items).
    Response: ``{"fingerprint", "cached", "elapsed_seconds", "partial",
    "assessment": <assessment_to_json payload>}``.  With
    ``deadline_seconds`` set, the engine computes under a
    :class:`~repro.budget.ComputeBudget`: an over-budget request still
    answers 200 with ``"partial": true`` and an ``INCONCLUSIVE``
    decision carrying the best estimate so far, or 503 with a
    ``Retry-After`` header when the deadline expired before *anything*
    was ready.

``POST /crack/step``
    The streaming attacker workbench (see :mod:`repro.service.crack`):
    open a solver session with an ``instance`` payload, then stream
    ``observations`` into it by ``session`` id.  Response:
    ``{"session", "events", "summary", "closed"}`` with the newly
    decided forced/forbidden edges as JSONL-shaped event objects.

``GET /healthz``
    Liveness probe; reports the package version.

``GET /metrics``
    Engine metrics snapshot plus cache counters.

Every error response is structured the same way::

    {"error": {"type": "<exception class>", "message": "<detail>"},
     "status": <http status>}

with ``400`` for malformed requests (including truncated bodies and
out-of-range ``runs`` / ``tolerance`` / ``seed`` / ``deadline_seconds``
values), ``422`` for requests the recipe rejects, ``404`` for unknown
paths, ``429`` (plus ``Retry-After``) when the admission queue sheds
the request, ``503`` (plus ``Retry-After``) when the circuit breaker is
open or a deadline expired with nothing to show, and ``500`` for
unexpected internal failures (which are counted in the ``http_500``
metric, never returned as a raw traceback).

The server is a :class:`http.server.ThreadingHTTPServer`; the engine's
cache and metrics are lock-guarded, so concurrent requests are safe.
``POST /assess`` additionally passes through a bounded
:class:`~repro.service.admission.AdmissionController` (``max_inflight``
computations, ``max_queue`` waiters, 429 beyond that), so overload
degrades by shedding instead of by piling up threads.
Bind port 0 to get an ephemeral port (see ``server.server_port``).
In-flight requests are tracked (the ``inflight_requests`` gauge), and
:meth:`AssessmentServer.shutdown_gracefully` waits for them to drain —
``repro-serve`` wires that to ``SIGTERM``/``SIGINT``, so a supervised
process finishes the answers it already accepted before exiting.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import repro
from repro.errors import BudgetExceeded, ReproError
from repro.io import assessment_to_json, profile_from_json
from repro.service.admission import (
    AdmissionController,
    AdmissionTimeout,
    QueueFullError,
)
from repro.service.breaker import CircuitOpenError
from repro.service.budget import request_budget
from repro.service.crack import CrackSessionStore
from repro.service.engine import AssessmentEngine
from repro.service.fingerprint import AssessmentParams

__all__ = ["AssessmentServer", "make_server", "serve", "run_until_signal"]

#: Largest accepted ``seed`` (NumPy seeds the generator with unsigned
#: 64-bit state; the fingerprint must match what the engine computes).
_MAX_SEED = 2**64 - 1

_MAX_BODY_BYTES = 64 * 1024 * 1024


class AssessmentServer(ThreadingHTTPServer):
    """An HTTP server bound to one :class:`AssessmentEngine`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: AssessmentEngine,
        quiet: bool = True,
        admission: AdmissionController | None = None,
    ) -> None:
        self.engine = engine
        self.quiet = quiet
        self.admission = (
            AdmissionController(metrics=engine.metrics)
            if admission is None
            else admission
        )
        self.crack_sessions = CrackSessionStore()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        super().__init__(address, _AssessmentHandler)

    @contextmanager
    def tracked_request(self) -> Iterator[None]:
        """Count a request as in-flight for graceful-shutdown draining."""
        with self._inflight_lock:
            self._inflight += 1
            self.engine.metrics.set_gauge("inflight_requests", self._inflight)
        try:
            yield
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                self.engine.metrics.set_gauge("inflight_requests", self._inflight)

    def inflight_requests(self) -> int:
        """How many requests are currently being answered."""
        with self._inflight_lock:
            return self._inflight

    def shutdown_gracefully(self, grace_seconds: float = 5.0) -> bool:
        """Stop accepting, drain in-flight requests, close the socket.

        Must be called from a thread other than the one running
        :meth:`serve_forever`.  Returns ``True`` when every in-flight
        request finished within *grace_seconds*, ``False`` when the
        grace period expired with requests still running (their daemon
        threads are then abandoned).
        """
        self.shutdown()
        deadline = time.monotonic() + grace_seconds
        drained = True
        while self.inflight_requests() > 0:
            if time.monotonic() >= deadline:
                drained = False
                break
            time.sleep(0.02)
        self.server_close()
        return drained


class _AssessmentHandler(BaseHTTPRequestHandler):
    server: AssessmentServer

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (ConnectionError, BrokenPipeError):
            # The client hung up mid-reply; nothing left to answer.
            self.server.engine.metrics.increment("client_disconnects")

    def _reply_error(
        self,
        status: int,
        error_type: str,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._reply(
            status,
            {"error": {"type": error_type, "message": message}, "status": status},
            headers=headers,
        )

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("empty request body")
        if length > _MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        # A socket read may return fewer bytes than asked for; keep
        # reading until the declared Content-Length is satisfied, and
        # reject bodies the client truncated instead of parsing a prefix.
        chunks: list[bytes] = []
        received = 0
        while received < length:
            chunk = self.rfile.read(length - received)
            if not chunk:
                raise ValueError(
                    f"truncated request body: Content-Length said {length} "
                    f"bytes but only {received} arrived"
                )
            chunks.append(chunk)
            received += len(chunk)
        payload = json.loads(b"".join(chunks))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- endpoints --------------------------------------------------------

    def do_GET(self) -> None:
        with self.server.tracked_request():
            if self.path == "/healthz":
                self._reply(200, {"status": "ok", "version": repro.__version__})
            elif self.path == "/metrics":
                engine = self.server.engine
                self._reply(
                    200,
                    {"metrics": engine.metrics.snapshot(), "cache": engine.cache.stats()},
                )
            else:
                self._reply_error(404, "NotFound", f"unknown path {self.path}")

    def do_POST(self) -> None:
        with self.server.tracked_request():
            if self.path == "/crack/step":
                self._crack_step()
                return
            if self.path != "/assess":
                self._reply_error(404, "NotFound", f"unknown path {self.path}")
                return
            try:
                payload = self._read_json_body()
                if "profile" not in payload:
                    raise ValueError("missing required key 'profile'")
                if "tolerance" not in payload:
                    raise ValueError("missing required key 'tolerance'")
                profile = profile_from_json(payload["profile"])
                interest = payload.get("interest")
                tolerance = float(payload["tolerance"])
                if not tolerance >= 0:
                    raise ValueError(f"tolerance must be >= 0, got {tolerance}")
                runs = int(payload.get("runs", 5))
                if runs < 1:
                    raise ValueError(f"runs must be >= 1, got {runs}")
                seed = int(payload.get("seed", 0))
                if not 0 <= seed <= _MAX_SEED:
                    raise ValueError(
                        f"seed must be in [0, 2**64), got {seed}"
                    )
                params = AssessmentParams(
                    tolerance=tolerance,
                    delta=None if payload.get("delta") is None else float(payload["delta"]),
                    runs=runs,
                    seed=seed,
                    interest=None if interest is None else frozenset(interest),
                )
                deadline = payload.get("deadline_seconds")
                budget = (
                    None if deadline is None else request_budget(float(deadline))
                )
            except (ValueError, TypeError, KeyError, json.JSONDecodeError, ReproError) as exc:
                self._reply_error(400, type(exc).__name__, str(exc))
                return
            try:
                timeout = None if budget is None else budget.remaining_seconds()
                with self.server.admission.admitted(timeout_seconds=timeout):
                    outcome = self.server.engine.assess_request(
                        profile, params, budget=budget
                    )
            except QueueFullError as exc:
                self._reply_error(
                    429,
                    type(exc).__name__,
                    str(exc),
                    headers={"Retry-After": str(int(exc.retry_after + 0.5) or 1)},
                )
                return
            except (AdmissionTimeout, CircuitOpenError) as exc:
                self._reply_error(
                    503,
                    type(exc).__name__,
                    str(exc),
                    headers={"Retry-After": str(int(exc.retry_after + 0.5) or 1)},
                )
                return
            except BudgetExceeded as exc:
                # The deadline expired before any rung produced even a
                # partial answer; tell the client to come back rather
                # than hanging or dropping the connection.
                self._reply_error(
                    503,
                    type(exc).__name__,
                    f"deadline expired before any result was ready ({exc})",
                    headers={"Retry-After": "1"},
                )
                return
            except ReproError as exc:
                self._reply_error(422, type(exc).__name__, str(exc))
                return
            except Exception as exc:
                # An unexpected failure (I/O fault, bug) must surface as
                # a structured 500, never as a dropped connection.
                self.server.engine.metrics.increment("http_500")
                self._reply_error(500, type(exc).__name__, str(exc))
                return
            self._reply(
                200,
                {
                    "fingerprint": outcome.fingerprint,
                    "cached": outcome.cached,
                    "elapsed_seconds": outcome.elapsed_seconds,
                    "partial": outcome.assessment.partial,
                    "assessment": assessment_to_json(outcome.assessment),
                },
            )

    def _crack_step(self) -> None:
        """One ``POST /crack/step`` move against the solver session store."""
        metrics = self.server.engine.metrics
        try:
            payload = self._read_json_body()
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._reply_error(400, type(exc).__name__, str(exc))
            return
        try:
            with metrics.timer("crack:step"):
                result = self.server.crack_sessions.step(payload)
        except ReproError as exc:
            self._reply_error(422, type(exc).__name__, str(exc))
            return
        except Exception as exc:
            metrics.increment("http_500")
            self._reply_error(500, type(exc).__name__, str(exc))
            return
        metrics.increment("crack_steps")
        self._reply(200, result)


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    engine: AssessmentEngine | None = None,
    quiet: bool = True,
    max_inflight: int = 8,
    max_queue: int = 32,
) -> AssessmentServer:
    """Create (but do not start) a server; ``port=0`` picks a free port."""
    engine = engine or AssessmentEngine()
    admission = AdmissionController(
        max_inflight=max_inflight, max_queue=max_queue, metrics=engine.metrics
    )
    return AssessmentServer((host, port), engine, quiet=quiet, admission=admission)


def run_until_signal(
    server: AssessmentServer, grace_seconds: float = 5.0
) -> None:
    """Serve until ``SIGTERM``/``SIGINT``, then shut down gracefully.

    ``serve_forever`` runs in a helper thread while the calling thread
    waits for a signal (handlers are installed only when called from the
    main thread; otherwise a ``KeyboardInterrupt`` still triggers the
    same graceful path).  On shutdown the server stops accepting,
    drains in-flight requests for up to *grace_seconds*, and closes the
    listening socket.
    """
    stop = threading.Event()
    previous: dict[int, object] = {}

    def _handle_signal(signum: int, frame: object) -> None:
        stop.set()

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _handle_signal)

    worker = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    worker.start()
    try:
        while not stop.is_set():
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown_gracefully(grace_seconds)
        worker.join(timeout=grace_seconds + 1.0)
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    engine: AssessmentEngine | None = None,
    quiet: bool = False,
    grace_seconds: float = 5.0,
    max_inflight: int = 8,
    max_queue: int = 32,
) -> None:
    """Run the API until interrupted (the ``repro-serve`` entry point).

    Exits cleanly on ``SIGTERM`` or ``SIGINT``, draining in-flight
    requests for up to *grace_seconds* first.
    """
    server = make_server(
        host, port, engine, quiet=quiet, max_inflight=max_inflight, max_queue=max_queue
    )
    run_until_signal(server, grace_seconds=grace_seconds)

"""A stdlib-only JSON HTTP front end for the assessment engine.

Endpoints
---------

``POST /assess``
    Body: ``{"profile": <profile_to_json payload>, "tolerance": 0.05,
    "delta": null, "runs": 5, "seed": 0, "interest": [3, 7, "milk"],
    "deadline_seconds": 2.5}``
    (everything but ``profile`` and ``tolerance`` optional; *interest*
    items are raw JSON ints/strings matching the profile's items).
    Response: ``{"fingerprint", "cached", "elapsed_seconds", "partial",
    "assessment": <assessment_to_json payload>}``.  With
    ``deadline_seconds`` set, the engine computes under a
    :class:`~repro.budget.ComputeBudget`: an over-budget request still
    answers 200 with ``"partial": true`` and an ``INCONCLUSIVE``
    decision carrying the best estimate so far, or 503 with a
    ``Retry-After`` header when the deadline expired before *anything*
    was ready.

``POST /crack/step``
    The streaming attacker workbench (see :mod:`repro.service.crack`):
    open a solver session with an ``instance`` payload, then stream
    ``observations`` into it by ``session`` id.  Response:
    ``{"session", "events", "summary", "closed"}`` with the newly
    decided forced/forbidden edges as JSONL-shaped event objects.

``GET /healthz``
    Liveness probe; reports the package version.

``GET /metrics``
    Engine metrics snapshot plus cache counters, admission queue depth
    and per-route latency histograms.

Route semantics — validation, the error mapping (400/404/422/429/500/
503 with ``Retry-After``), admission control, per-route counters and
latency histograms — live in the transport-agnostic
:class:`~repro.service.routes.ServiceCore`, shared verbatim with the
asyncio front end (:mod:`repro.service.aio`).  This module contributes
only the threaded transport.

The server is a :class:`http.server.ThreadingHTTPServer` speaking
HTTP/1.1 with keep-alive: every response (including error bodies)
carries an exact ``Content-Length``, so a client can reuse one
connection for many requests instead of paying connection setup per
request.  A request whose body cannot be read to its declared length is
answered 400 and the connection is closed — after a truncated body the
framing can no longer be trusted.

Bind port 0 to get an ephemeral port (see ``server.server_port``).
In-flight requests are tracked (the ``inflight_requests`` gauge), and
:meth:`AssessmentServer.shutdown_gracefully` waits for them to drain —
``repro-serve`` wires that to ``SIGTERM``/``SIGINT``, so a supervised
process finishes the answers it already accepted before exiting.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Iterator
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.admission import AdmissionController
from repro.service.crack import CrackSessionStore
from repro.service.engine import AssessmentEngine
from repro.service.routes import MAX_BODY_BYTES, RouteResponse, ServiceCore

__all__ = ["AssessmentServer", "make_server", "serve", "run_until_signal"]


class AssessmentServer(ThreadingHTTPServer):
    """An HTTP server bound to one :class:`ServiceCore`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: AssessmentEngine | None = None,
        quiet: bool = True,
        admission: AdmissionController | None = None,
        core: ServiceCore | None = None,
    ) -> None:
        self.core = (
            ServiceCore(engine=engine, admission=admission) if core is None else core
        )
        self.quiet = quiet
        super().__init__(address, _AssessmentHandler)

    # Convenience pass-throughs: tests and callers address the server,
    # the shared state lives on the core (one core can back several
    # transports).

    @property
    def engine(self) -> AssessmentEngine:
        return self.core.engine

    @property
    def admission(self) -> AdmissionController:
        return self.core.admission

    @property
    def crack_sessions(self) -> CrackSessionStore:
        return self.core.crack_sessions

    @contextmanager
    def tracked_request(self) -> Iterator[None]:
        """Count a request as in-flight for graceful-shutdown draining."""
        with self.core.tracked_request():
            yield

    def inflight_requests(self) -> int:
        """How many requests are currently being answered."""
        return self.core.inflight_requests()

    def shutdown_gracefully(self, grace_seconds: float = 5.0) -> bool:
        """Stop accepting, drain in-flight requests, close the socket.

        Must be called from a thread other than the one running
        :meth:`serve_forever`.  Returns ``True`` when every in-flight
        request finished within *grace_seconds*, ``False`` when the
        grace period expired with requests still running (their daemon
        threads are then abandoned).
        """
        self.shutdown()
        deadline = time.monotonic() + grace_seconds
        drained = True
        while self.inflight_requests() > 0:
            if time.monotonic() >= deadline:
                drained = False
                break
            time.sleep(0.02)
        self.server_close()
        return drained


class _AssessmentHandler(BaseHTTPRequestHandler):
    server: AssessmentServer

    #: HTTP/1.1 makes keep-alive the default; every reply path below
    #: (success and error alike) sets an exact Content-Length, which is
    #: what makes persistent connections legal.
    protocol_version = "HTTP/1.1"

    #: Headers and body go out as separate writes; without TCP_NODELAY
    #: Nagle holds the body back for the delayed ACK (~40 ms per
    #: request on loopback).  Asyncio transports disable Nagle by
    #: default, so this also keeps the flavor comparison honest.
    disable_nagle_algorithm = True

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send(self, response: RouteResponse) -> None:
        body = response.body()
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (ConnectionError, BrokenPipeError):
            # The client hung up mid-reply; nothing left to answer.
            self.server.engine.metrics.increment("client_disconnects")
            # repro-lint: disable-next-line=CC001 -- happens-before: a handler instance is per-connection, so do_GET/do_POST on it never run concurrently
            self.close_connection = True

    def _read_body(self) -> bytes:
        """Read exactly Content-Length bytes off the socket.

        A socket read may return fewer bytes than asked for; keep
        reading until the declared Content-Length is satisfied, and
        reject bodies the client truncated instead of parsing a prefix.
        """
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            return b""
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        chunks: list[bytes] = []
        received = 0
        while received < length:
            chunk = self.rfile.read(length - received)
            if not chunk:
                raise ValueError(
                    f"truncated request body: Content-Length said {length} "
                    f"bytes but only {received} arrived"
                )
            chunks.append(chunk)
            received += len(chunk)
        return b"".join(chunks)

    # -- endpoints --------------------------------------------------------

    def do_GET(self) -> None:
        with self.server.tracked_request():
            self._send(self.server.core.dispatch("GET", self.path))

    def do_POST(self) -> None:
        with self.server.tracked_request():
            try:
                body = self._read_body()
            except ValueError as exc:
                # After a truncated or oversized body the connection's
                # framing cannot be trusted; answer and hang up.
                self._send(
                    RouteResponse(
                        400,
                        {
                            "error": {
                                "type": type(exc).__name__,
                                "message": str(exc),
                            },
                            "status": 400,
                        },
                    )
                )
                self.close_connection = True
                return
            self._send(self.server.core.dispatch("POST", self.path, body))


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    engine: AssessmentEngine | None = None,
    quiet: bool = True,
    max_inflight: int = 8,
    max_queue: int = 32,
) -> AssessmentServer:
    """Create (but do not start) a server; ``port=0`` picks a free port."""
    core = ServiceCore(
        engine=engine, max_inflight=max_inflight, max_queue=max_queue
    )
    return AssessmentServer((host, port), quiet=quiet, core=core)


def run_until_signal(
    server: AssessmentServer, grace_seconds: float = 5.0
) -> None:
    """Serve until ``SIGTERM``/``SIGINT``, then shut down gracefully.

    ``serve_forever`` runs in a helper thread while the calling thread
    waits for a signal (handlers are installed only when called from the
    main thread; otherwise a ``KeyboardInterrupt`` still triggers the
    same graceful path).  On shutdown the server stops accepting,
    drains in-flight requests for up to *grace_seconds*, and closes the
    listening socket.
    """
    stop = threading.Event()
    previous: dict[int, object] = {}

    def _handle_signal(signum: int, frame: object) -> None:
        stop.set()

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _handle_signal)

    worker = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    worker.start()
    try:
        while not stop.is_set():
            stop.wait(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown_gracefully(grace_seconds)
        worker.join(timeout=grace_seconds + 1.0)
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    engine: AssessmentEngine | None = None,
    quiet: bool = False,
    grace_seconds: float = 5.0,
    max_inflight: int = 8,
    max_queue: int = 32,
) -> None:
    """Run the API until interrupted (the ``repro-serve`` entry point).

    Exits cleanly on ``SIGTERM`` or ``SIGINT``, draining in-flight
    requests for up to *grace_seconds* first.
    """
    server = make_server(
        host, port, engine, quiet=quiet, max_inflight=max_inflight, max_queue=max_queue
    )
    run_until_signal(server, grace_seconds=grace_seconds)

"""A stdlib-only JSON HTTP front end for the assessment engine.

Endpoints
---------

``POST /assess``
    Body: ``{"profile": <profile_to_json payload>, "tolerance": 0.05,
    "delta": null, "runs": 5, "seed": 0, "interest": [3, 7, "milk"]}``
    (everything but ``profile`` and ``tolerance`` optional; *interest*
    items are raw JSON ints/strings matching the profile's items).
    Response: ``{"fingerprint", "cached", "elapsed_seconds",
    "assessment": <assessment_to_json payload>}``.

``GET /healthz``
    Liveness probe; reports the package version.

``GET /metrics``
    Engine metrics snapshot plus cache counters.

The server is a :class:`http.server.ThreadingHTTPServer`; the engine's
cache and metrics are lock-guarded, so concurrent requests are safe.
Bind port 0 to get an ephemeral port (see ``server.server_port``).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import repro
from repro.errors import ReproError
from repro.io import assessment_to_json, profile_from_json
from repro.service.engine import AssessmentEngine
from repro.service.fingerprint import AssessmentParams

__all__ = ["AssessmentServer", "make_server", "serve"]

_MAX_BODY_BYTES = 64 * 1024 * 1024


class AssessmentServer(ThreadingHTTPServer):
    """An HTTP server bound to one :class:`AssessmentEngine`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], engine: AssessmentEngine, quiet: bool = True):
        self.engine = engine
        self.quiet = quiet
        super().__init__(address, _AssessmentHandler)


class _AssessmentHandler(BaseHTTPRequestHandler):
    server: AssessmentServer

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("empty request body")
        if length > _MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        body = self.rfile.read(length)
        payload = json.loads(body)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- endpoints --------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._reply(200, {"status": "ok", "version": repro.__version__})
        elif self.path == "/metrics":
            engine = self.server.engine
            self._reply(
                200,
                {"metrics": engine.metrics.snapshot(), "cache": engine.cache.stats()},
            )
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:
        if self.path != "/assess":
            self._reply(404, {"error": f"unknown path {self.path}"})
            return
        try:
            payload = self._read_json_body()
            if "profile" not in payload:
                raise ValueError("missing required key 'profile'")
            if "tolerance" not in payload:
                raise ValueError("missing required key 'tolerance'")
            profile = profile_from_json(payload["profile"])
            interest = payload.get("interest")
            params = AssessmentParams(
                tolerance=float(payload["tolerance"]),
                delta=None if payload.get("delta") is None else float(payload["delta"]),
                runs=int(payload.get("runs", 5)),
                seed=int(payload.get("seed", 0)),
                interest=None if interest is None else frozenset(interest),
            )
        except (ValueError, TypeError, KeyError, json.JSONDecodeError, ReproError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        try:
            outcome = self.server.engine.assess_request(profile, params)
        except ReproError as exc:
            self._reply(422, {"error": str(exc)})
            return
        self._reply(
            200,
            {
                "fingerprint": outcome.fingerprint,
                "cached": outcome.cached,
                "elapsed_seconds": outcome.elapsed_seconds,
                "assessment": assessment_to_json(outcome.assessment),
            },
        )


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    engine: AssessmentEngine | None = None,
    quiet: bool = True,
) -> AssessmentServer:
    """Create (but do not start) a server; ``port=0`` picks a free port."""
    return AssessmentServer((host, port), engine or AssessmentEngine(), quiet=quiet)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    engine: AssessmentEngine | None = None,
    quiet: bool = False,
) -> None:
    """Run the API until interrupted (the ``repro-serve`` entry point)."""
    server = make_server(host, port, engine, quiet=quiet)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()

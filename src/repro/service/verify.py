"""Post-mortem invariant verification for chaos runs.

After a chaos run — replicas killed and restarted under live load,
fault bursts at the cache-write and lease sites — the question is not
"did anything crash" (plenty did, on purpose) but "did the system ever
produce a wrong answer or leak state".  :func:`verify_run` answers it
from four kinds of evidence left behind:

1. **The cache directory.**  Every ``*.json`` artifact must parse, be
   schema-current, carry the fingerprint it is filed under, round-trip
   byte-identically through :mod:`repro.io`, and not be partial
   (deadline-degraded results must never be cached).
2. **The commit log** (``commits.log``, see
   :class:`~repro.service.cache.AssessmentCache`).  One appended line
   per durably committed cold compute, written strictly after the
   artifact's atomic rename — so a fingerprint appearing twice means
   two processes both computed *and* both committed: a single-flight
   violation no kill window can excuse.  Every logged fingerprint must
   have its artifact.
3. **Filesystem debris.**  A lease whose owner pid is still alive after
   the whole fleet was stopped is a leak.  Dead-owner leases and orphan
   ``*.tmp`` files are exactly what ``kill -9`` is expected to leave;
   the check is that one recovery pass — the same
   ``recover_orphans`` sweep any restarting replica runs — removes all
   of it, leaving only well-formed artifacts.
4. **Recorded responses vs. a fault-free oracle.**  Every 200 response
   the load clients saw must be byte-identical (canonical JSON) to an
   in-process replay of the same fingerprint through an unfaulted
   engine; any 5xx, or a 4xx other than 429 shed, is a violation.

Summed replica metrics are reconciled as a *soft* bound: counters die
with a killed process (``computed`` increments at compute start), so
the verifier only checks that cold computes beyond the committed
artifacts are explained by kills, failed writes, and scheduled crash
rules — the hard uniqueness claim rests on the commit log.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ReproError
from repro.io import (
    SCHEMA_VERSION,
    assessment_from_json,
    assessment_to_json,
    load_json,
)
from repro.service.cache import COMMIT_LOG_NAME, AssessmentCache

__all__ = ["Violation", "VerifierReport", "verify_run"]


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to chase it."""

    kind: str
    message: str

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "message": self.message}


@dataclass
class VerifierReport:
    """Everything :func:`verify_run` measured, violations first."""

    violations: list[Violation] = field(default_factory=list)
    checks: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "violations": [violation.to_json() for violation in self.violations],
            "checks": self.checks,
        }


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return True


def _canonical(assessment_payload: Any) -> str:
    return json.dumps(assessment_payload, sort_keys=True)


def _check_artifacts(
    cache_dir: Path,
    oracle: Mapping[str, str],
    report: VerifierReport,
) -> set[str]:
    """Invariant 1: every artifact parses, round-trips, and is not partial."""
    fingerprints: set[str] = set()
    artifacts = sorted(cache_dir.glob("*.json"))
    for path in artifacts:
        fingerprint = path.stem
        try:
            payload = load_json(path)
        except (OSError, ReproError) as exc:
            report.violations.append(
                Violation("artifact_unreadable", f"{path.name}: {exc}")
            )
            continue
        if payload.get("type") != "cached_assessment":
            report.violations.append(
                Violation("artifact_malformed", f"{path.name}: wrong type tag")
            )
            continue
        if payload.get("schema_version") != SCHEMA_VERSION:
            report.violations.append(
                Violation(
                    "artifact_malformed",
                    f"{path.name}: schema {payload.get('schema_version')} "
                    f"!= {SCHEMA_VERSION}",
                )
            )
            continue
        if payload.get("fingerprint") != fingerprint:
            report.violations.append(
                Violation(
                    "artifact_malformed",
                    f"{path.name}: embedded fingerprint "
                    f"{payload.get('fingerprint')!r} does not match filename",
                )
            )
            continue
        try:
            assessment = assessment_from_json(payload["assessment"])
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            report.violations.append(
                Violation("artifact_malformed", f"{path.name}: {exc}")
            )
            continue
        round_tripped = assessment_to_json(assessment)
        if _canonical(round_tripped) != _canonical(payload["assessment"]):
            report.violations.append(
                Violation(
                    "artifact_roundtrip",
                    f"{path.name}: does not round-trip through repro.io",
                )
            )
            continue
        if assessment.partial:
            report.violations.append(
                Violation(
                    "partial_cached",
                    f"{path.name}: a partial (INCONCLUSIVE) result was cached",
                )
            )
            continue
        expected = oracle.get(fingerprint)
        if expected is not None and _canonical(payload["assessment"]) != expected:
            report.violations.append(
                Violation(
                    "artifact_diverged",
                    f"{path.name}: cached assessment differs from the "
                    "fault-free oracle",
                )
            )
            continue
        fingerprints.add(fingerprint)
    report.checks["artifacts"] = len(artifacts)
    return fingerprints


def _check_commit_log(
    cache_dir: Path,
    artifact_fingerprints: set[str],
    report: VerifierReport,
) -> set[str]:
    """Invariant 2: exactly one committed cold compute per fingerprint."""
    committed: dict[str, list[str]] = {}
    log_path = cache_dir / COMMIT_LOG_NAME
    lines: list[str] = []
    if log_path.exists():
        lines = [
            line
            for line in log_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
    for line in lines:
        parts = line.split()
        if len(parts) != 2:
            report.violations.append(
                Violation("commit_log_malformed", f"unparseable line: {line!r}")
            )
            continue
        fingerprint, pid = parts
        committed.setdefault(fingerprint, []).append(pid)
    for fingerprint, pids in sorted(committed.items()):
        if len(pids) > 1:
            report.violations.append(
                Violation(
                    "duplicate_compute",
                    f"{fingerprint}: committed {len(pids)} times "
                    f"(pids {', '.join(pids)}) — single-flight was violated",
                )
            )
        if fingerprint not in artifact_fingerprints:
            report.violations.append(
                Violation(
                    "commit_without_artifact",
                    f"{fingerprint}: commit logged but no artifact on disk",
                )
            )
    report.checks["commits_logged"] = len(lines)
    report.checks["fingerprints_committed"] = len(committed)
    return set(committed)


def _check_debris(
    cache_dir: Path,
    lease_stale_seconds: float,
    report: VerifierReport,
) -> None:
    """Invariant 3: no live-owner leases; one recovery pass leaves it clean."""
    pre_tmp = sorted(cache_dir.glob("*.tmp"))
    pre_leases = sorted(cache_dir.glob("*.lease"))
    for lease in pre_leases:
        pid = -1
        try:
            payload = json.loads(lease.read_bytes().decode("utf-8"))
            pid = int(payload["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            continue  # torn payload: judged (and swept) by age below
        if _pid_alive(pid):
            report.violations.append(
                Violation(
                    "lease_leak",
                    f"{lease.name}: owner pid {pid} is still alive after "
                    "the fleet was stopped",
                )
            )
    # The same sweep any restarting replica runs at cache open: orphan
    # temp files unconditionally, leases judged by pid/age.  All owners
    # are dead by now, so everything must go.
    AssessmentCache(
        directory=cache_dir, shared=True, lease_stale_seconds=lease_stale_seconds
    )
    for leftover in sorted(cache_dir.glob("*.tmp")):
        report.violations.append(
            Violation("orphan_tmp", f"{leftover.name}: survived recovery")
        )
    for leftover in sorted(cache_dir.glob("*.lease")):
        report.violations.append(
            Violation("orphan_lease", f"{leftover.name}: survived recovery")
        )
    report.checks["tmp_recovered"] = len(pre_tmp)
    report.checks["leases_recovered"] = len(pre_leases)


def _check_responses(
    responses: Mapping[str, str],
    response_conflicts: Sequence[str],
    statuses: Mapping[int, int],
    oracle: Mapping[str, str],
    report: VerifierReport,
) -> None:
    """Invariant 4: every answer byte-identical to the fault-free oracle."""
    for status, count in sorted(statuses.items()):
        if status >= 500:
            report.violations.append(
                Violation(
                    "server_error",
                    f"{count} response(s) with status {status}",
                )
            )
        elif status >= 400 and status != 429:
            report.violations.append(
                Violation(
                    "client_error_status",
                    f"{count} response(s) with status {status} "
                    "(the workload sends only well-formed requests)",
                )
            )
    for conflict in response_conflicts:
        report.violations.append(Violation("response_conflict", conflict))
    matched = 0
    for fingerprint, canonical in sorted(responses.items()):
        expected = oracle.get(fingerprint)
        if expected is None:
            report.violations.append(
                Violation(
                    "unknown_fingerprint",
                    f"{fingerprint}: answered but absent from the oracle replay",
                )
            )
        elif canonical != expected:
            report.violations.append(
                Violation(
                    "response_diverged",
                    f"{fingerprint}: response differs from the fault-free oracle",
                )
            )
        else:
            matched += 1
    report.checks["fingerprints_answered"] = len(responses)
    report.checks["responses_matching_oracle"] = matched


def _sum_counters(
    snapshots: Sequence[Mapping[str, Any]], *paths: tuple[str, ...]
) -> int:
    total = 0
    for snapshot in snapshots:
        for path in paths:
            value: Any = snapshot
            for key in path:
                if not isinstance(value, Mapping):
                    value = None
                    break
                value = value.get(key)
            if isinstance(value, (int, float)):
                total += int(value)
    return total


def _check_metrics(
    snapshots: Sequence[Mapping[str, Any]],
    committed: set[str],
    kills: int,
    max_inflight: int,
    crash_capacity: int,
    report: VerifierReport,
) -> None:
    """Soft bound: excess computes must be explained by injected failures.

    ``computed`` increments at compute *start* and dies with a killed
    process, so the summed last-known counters are neither an upper nor
    a lower bound on true computes — but computes that visibly exceed
    the committed artifacts still need an explanation: an in-flight
    compute lost to one of *kills* (at most ``max_inflight`` each), a
    failed/torn write that forced a recompute, or a lease takeover after
    a deadline.  Anything beyond that is double work the run cannot
    account for.
    """
    computed = _sum_counters(snapshots, ("metrics", "counters", "computed"))
    write_errors = _sum_counters(snapshots, ("cache", "write_errors"))
    lease_timeouts = _sum_counters(snapshots, ("cache", "lease_timeouts"))
    lease_takeovers = _sum_counters(snapshots, ("cache", "lease_takeovers"))
    excess = computed - len(committed)
    allowance = (
        kills * max_inflight + write_errors + crash_capacity + lease_timeouts
    )
    if excess > allowance:
        report.violations.append(
            Violation(
                "unexplained_recomputes",
                f"{computed} computes for {len(committed)} committed "
                f"fingerprints; excess {excess} exceeds the injected-failure "
                f"allowance {allowance} (kills={kills} x inflight="
                f"{max_inflight}, write_errors={write_errors}, "
                f"crash_capacity={crash_capacity}, "
                f"lease_timeouts={lease_timeouts})",
            )
        )
    report.checks["computed_total"] = computed
    report.checks["write_errors_total"] = write_errors
    report.checks["lease_timeouts_total"] = lease_timeouts
    report.checks["lease_takeovers_total"] = lease_takeovers
    report.checks["compute_excess"] = excess
    report.checks["compute_excess_allowance"] = allowance


def verify_run(
    cache_dir: Path,
    responses: Mapping[str, str],
    response_conflicts: Sequence[str],
    statuses: Mapping[int, int],
    oracle: Mapping[str, str],
    metric_snapshots: Sequence[Mapping[str, Any]],
    kills: int,
    max_inflight: int,
    lease_stale_seconds: float,
    crash_capacity: int = 0,
) -> VerifierReport:
    """Check every chaos invariant; returns a structured report.

    Parameters
    ----------
    cache_dir:
        The shared cache directory the (now stopped) fleet mounted.
    responses:
        ``fingerprint -> canonical assessment JSON`` as the load clients
        observed them (first answer per fingerprint).
    response_conflicts:
        Client-side divergences (two 200s for one fingerprint that did
        not agree), already rendered as messages.
    statuses:
        HTTP status histogram over every completed response.
    oracle:
        ``fingerprint -> canonical assessment JSON`` from the fault-free
        in-process replay of the same workload.
    metric_snapshots:
        Last-known ``GET /metrics`` payload per (replica, incarnation).
    kills / max_inflight / crash_capacity:
        The recompute allowance: SIGKILLed incarnations (each can lose
        up to *max_inflight* in-flight computes) and the schedule's
        crash-rule capacity (torn writes unwind computes the same way).
    lease_stale_seconds:
        Staleness window for the final recovery sweep.
    """
    report = VerifierReport()
    artifact_fingerprints = _check_artifacts(cache_dir, oracle, report)
    committed = _check_commit_log(cache_dir, artifact_fingerprints, report)
    _check_debris(cache_dir, lease_stale_seconds, report)
    _check_responses(responses, response_conflicts, statuses, oracle, report)
    _check_metrics(
        metric_snapshots, committed, kills, max_inflight, crash_capacity, report
    )
    return report

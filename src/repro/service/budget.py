"""Service-side compute budgets: request deadlines wired to fault injection.

The budget *mechanism* lives low in the layer graph
(:mod:`repro.budget`) so simulation and graph code can poll it without
importing the service layer.  This module is the service-facing facade:
it re-exports the core types and builds per-request budgets whose slow
polling path fires the ``budget.poll`` fault-injection site, making
deadline behaviour deterministically testable (e.g. a ``delay`` rule at
``budget.poll`` burns wall-clock so the next poll observes an expired
deadline).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.budget import BudgetExceeded, ComputeBudget, PartialEstimate
from repro.errors import ReproError
from repro.service.faults import fault_point

__all__ = [
    "ComputeBudget",
    "PartialEstimate",
    "BudgetExceeded",
    "request_budget",
    "MAX_DEADLINE_SECONDS",
]

#: Upper bound on per-request deadlines; anything longer is a client
#: error (the admission queue would otherwise hold slots hostage).
MAX_DEADLINE_SECONDS = 3600.0


def request_budget(
    deadline_seconds: float,
    max_sweeps: Optional[int] = None,
    poll_every: int = 256,
    clock: Callable[[], float] = time.monotonic,
) -> ComputeBudget:
    """A per-request budget whose polls hit the ``budget.poll`` fault site.

    Raises :class:`~repro.errors.ReproError` for non-positive or absurd
    deadlines, so the HTTP layer can map the problem to a structured 400.
    """
    if not deadline_seconds > 0:
        raise ReproError(
            f"deadline_seconds must be > 0, got {deadline_seconds}"
        )
    if deadline_seconds > MAX_DEADLINE_SECONDS:
        raise ReproError(
            f"deadline_seconds must be <= {MAX_DEADLINE_SECONDS}, "
            f"got {deadline_seconds}"
        )
    return ComputeBudget(
        seconds=deadline_seconds,
        max_sweeps=max_sweeps,
        poll_every=poll_every,
        clock=clock,
        fault_hook=fault_point,
    )

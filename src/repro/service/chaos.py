"""Seeded chaos runs against a supervised replica fleet (``repro-chaos``).

The scale-out stack makes hard claims: a replica killed mid-compute can
never leave a wrong, partial, or duplicated cached answer behind.  This
module stops testing those claims one fault at a time and instead
replays *adversarial operations*: a seed expands into a randomized but
fully replayable event schedule —

``kill``
    ``SIGKILL`` a replica under live load (no drain, no cleanup; the
    supervisor restarts it on its original port).
``term``
    ``SIGTERM`` a replica (graceful drain, then restart) — the
    "deploy rolled mid-traffic" case.
``fault_burst``
    Restart a replica with a deterministic fault schedule: disk-full
    (``enospc``) and torn writes at the ``cache.write.*`` sites, plus
    clock skew at the lease staleness judgement.
``spike``
    An overload step: extra client connections for a bounded window.

— which is driven against a :class:`~repro.service.loadgen.ReplicaPool`
(``supervise=True``) carrying seeded Zipf traffic, with every response
recorded.  Afterwards the post-mortem verifier
(:mod:`repro.service.verify`) replays the same workload against a
fault-free in-process oracle and checks the full invariant set; the
result is appended as one record in the ``chaos`` section of
``BENCH_service.json``.

Determinism: :func:`generate_schedule` is a pure function of its
arguments (``random.Random(f"repro-chaos:{seed}")`` and nothing else),
so the same seed replays the same schedule — :func:`schedule_digest`
pins that in the record — and, with a healthy verifier, the same
verdict.  Event *times* in the schedule are offsets from the run start;
death events are spaced and round-robined so the intentional kill rate
stays below the supervisor's crash-loop threshold (a chaos run proves
recovery, a crash loop proves the supervisor gives up — that path has
its own unit tests).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import repro
from repro.errors import ReproError
from repro.io import load_json, save_json_atomic
from repro.service.faults import FaultRule
from repro.service.loadgen import (
    ReplicaPool,
    WorkloadSpec,
    _ClientStats,
    _drive_connection,
    build_payloads,
    request_stream,
)
from repro.service.supervisor import RestartPolicy
from repro.service.verify import VerifierReport, verify_run

__all__ = [
    "ChaosEvent",
    "ChaosResult",
    "generate_schedule",
    "schedule_digest",
    "run_chaos",
    "append_chaos",
]

EVENT_KINDS = ("kill", "term", "fault_burst", "spike")

#: Events are confined to this fraction of the run: nothing before the
#: fleet has answered real traffic, nothing after 70% so the tail of the
#: run observes recovery (restarts completing, leases aging out).
_EVENT_WINDOW = (0.15, 0.70)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled act of sabotage."""

    at_seconds: float
    kind: str
    replica: int = 0
    spike_connections: int = 0
    spike_duration_seconds: float = 0.0
    burst_rules: tuple[FaultRule, ...] = ()

    def to_json(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "at_seconds": round(self.at_seconds, 3),
            "kind": self.kind,
            "replica": self.replica,
        }
        if self.kind == "spike":
            payload["spike_connections"] = self.spike_connections
            payload["spike_duration_seconds"] = round(
                self.spike_duration_seconds, 3
            )
        if self.burst_rules:
            payload["burst_rules"] = [rule.to_json() for rule in self.burst_rules]
        return payload


def _burst_rules(rng: random.Random, lease_stale_seconds: float) -> tuple[FaultRule, ...]:
    """A deterministic fault burst for one replica incarnation.

    Chosen to be *survivable*: disk-full and torn writes force
    recomputes the verifier's allowance accounts for, and the clock
    skew stays well under the staleness window so a heartbeating owner
    is never wrongly taken over (that would be a real double compute —
    exactly what the run must prove cannot happen without cause).
    """
    return (
        FaultRule(
            site="cache.write.replace",
            action="enospc",
            times=1 + rng.randrange(2),
            after=rng.randrange(2),
        ),
        FaultRule(
            site="cache.write.replace",
            action="torn_write",
            times=1,
            after=2 + rng.randrange(2),
            truncate_at=rng.randrange(160),
        ),
        FaultRule(
            site="cache.lease.state",
            action="clock_skew",
            times=1,
            after=rng.randrange(4),
            skew_seconds=round(0.25 * lease_stale_seconds, 3),
        ),
    )


def generate_schedule(
    seed: int,
    duration_seconds: float,
    replicas: int,
    min_kills: int = 3,
    lease_stale_seconds: float = 1.0,
) -> list[ChaosEvent]:
    """The replayable event schedule: a pure function of its arguments.

    ``min_kills`` SIGKILLs, one SIGTERM, and one fault burst are spread
    over the event window with deterministic jitter; death events are
    round-robined across replicas and spaced so no replica sees deaths
    faster than the chaos restart policy's crash-loop threshold.  One
    overload spike lands at an independent time.
    """
    if duration_seconds < 6.0:
        raise ReproError(
            f"chaos runs need >= 6 seconds, got {duration_seconds}"
        )
    if replicas < 2:
        raise ReproError("chaos runs need >= 2 replicas (kills must not stop the fleet)")
    rng = random.Random(f"repro-chaos:{seed}")
    window_start = _EVENT_WINDOW[0] * duration_seconds
    window_len = (_EVENT_WINDOW[1] - _EVENT_WINDOW[0]) * duration_seconds

    death_kinds = ["kill"] * min_kills + ["term", "fault_burst"]
    rng.shuffle(death_kinds)
    slot = window_len / len(death_kinds)
    replica_offset = rng.randrange(replicas)
    events: list[ChaosEvent] = []
    for position, kind in enumerate(death_kinds):
        at = window_start + position * slot + rng.random() * slot * 0.4
        replica = (replica_offset + position) % replicas
        if kind == "fault_burst":
            events.append(
                ChaosEvent(
                    at_seconds=at,
                    kind=kind,
                    replica=replica,
                    burst_rules=_burst_rules(rng, lease_stale_seconds),
                )
            )
        else:
            events.append(ChaosEvent(at_seconds=at, kind=kind, replica=replica))
    events.append(
        ChaosEvent(
            at_seconds=window_start + rng.random() * window_len,
            kind="spike",
            replica=rng.randrange(replicas),
            spike_connections=4 + rng.randrange(5),
            spike_duration_seconds=1.0 + rng.random(),
        )
    )
    events.sort(key=lambda event: (event.at_seconds, event.kind))
    return events


def schedule_digest(events: Sequence[ChaosEvent]) -> str:
    """A stable hash of the schedule, pinned into the run record."""
    canonical = json.dumps([event.to_json() for event in events], sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# -- the driver -------------------------------------------------------------


@dataclass
class _ResponseLog:
    """First 200 answer per fingerprint, plus any client-side divergence."""

    responses: dict[str, str] = field(default_factory=dict)
    conflicts: list[str] = field(default_factory=list)

    def record(self, index: int, status: int, body: bytes) -> None:
        if status != 200:
            return
        try:
            payload = json.loads(body)
            fingerprint = str(payload["fingerprint"])
            canonical = json.dumps(payload["assessment"], sort_keys=True)
        except (ValueError, KeyError, TypeError):
            self.conflicts.append(
                f"payload index {index}: unparseable 200 response body"
            )
            return
        previous = self.responses.setdefault(fingerprint, canonical)
        if previous != canonical:
            self.conflicts.append(
                f"{fingerprint}: two 200 responses disagree byte-for-byte"
            )


@dataclass
class _Delivered:
    kills: int = 0
    terms: int = 0
    bursts: int = 0
    spikes: int = 0

    def to_json(self) -> dict[str, int]:
        return {
            "kills": self.kills,
            "terms": self.terms,
            "bursts": self.bursts,
            "spikes": self.spikes,
        }


async def _deliver_signal(pool: ReplicaPool, replica: int, kill: bool) -> bool:
    """Signal *replica*, waiting briefly for it to be alive if mid-restart.

    An event can land while its target is still in restart backoff from
    the previous one; "kill replica R" means R's current-or-next
    incarnation, so retry for a bounded window rather than silently
    dropping the event (CI requires a minimum number of real kills).
    """
    deadline = time.monotonic() + 6.0
    while time.monotonic() < deadline:
        delivered = (
            pool.supervisor.kill(replica) if kill else pool.supervisor.terminate(replica)
        )
        if delivered:
            return True
        await asyncio.sleep(0.1)
    return False


async def _run_events(
    pool: ReplicaPool,
    spec: WorkloadSpec,
    payloads: Sequence[bytes],
    schedule: Sequence[ChaosEvent],
    run_dir: Path,
    start: float,
    stop_at: float,
    stats: _ClientStats,
    log: _ResponseLog,
    delivered: _Delivered,
) -> None:
    spike_tasks: list[asyncio.Task[None]] = []
    for number, event in enumerate(schedule):
        delay = start + event.at_seconds - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        if event.kind == "kill":
            if await _deliver_signal(pool, event.replica, kill=True):
                delivered.kills += 1
        elif event.kind == "term":
            if await _deliver_signal(pool, event.replica, kill=False):
                delivered.terms += 1
        elif event.kind == "fault_burst":
            burst_path = run_dir / f"burst_{number}.json"
            save_json_atomic(
                {"rules": [rule.to_json() for rule in event.burst_rules]},
                burst_path,
            )
            pool.set_fault_override(event.replica, str(burst_path))
            if await _deliver_signal(pool, event.replica, kill=False):
                delivered.bursts += 1
        elif event.kind == "spike":
            delivered.spikes += 1
            ports = pool.ports
            spike_stop = min(stop_at, time.monotonic() + event.spike_duration_seconds)
            for extra in range(event.spike_connections):
                spike_tasks.append(
                    asyncio.ensure_future(
                        _drive_connection(
                            "127.0.0.1",
                            ports[extra % len(ports)],
                            payloads,
                            request_stream(spec, 10_000 + 100 * number + extra),
                            spike_stop,
                            1_000_000,
                            stats,
                            record=log.record,
                        )
                    )
                )
    if spike_tasks:
        await asyncio.gather(*spike_tasks)


async def _drive_chaos(
    pool: ReplicaPool,
    spec: WorkloadSpec,
    payloads: Sequence[bytes],
    schedule: Sequence[ChaosEvent],
    run_dir: Path,
    connections: int,
    duration_seconds: float,
    stats: _ClientStats,
    log: _ResponseLog,
    delivered: _Delivered,
) -> None:
    start = time.monotonic()
    stop_at = start + duration_seconds
    ports = pool.ports
    tasks = [
        asyncio.ensure_future(
            _drive_connection(
                "127.0.0.1",
                ports[worker % len(ports)],
                payloads,
                request_stream(spec, worker),
                stop_at,
                1_000_000,
                stats,
                record=log.record,
            )
        )
        for worker in range(connections)
    ]
    tasks.append(
        asyncio.ensure_future(
            _run_events(
                pool, spec, payloads, schedule, run_dir,
                start, stop_at, stats, log, delivered,
            )
        )
    )
    await asyncio.gather(*tasks)


def oracle_replay(payloads: Sequence[bytes]) -> dict[str, str]:
    """Fault-free in-process answers: ``fingerprint -> canonical JSON``.

    Replays every workload payload through the same transport-agnostic
    dispatch the replicas ran (:class:`~repro.service.routes.
    ServiceCore`) on a fresh unfaulted engine; assessments are
    deterministic (seeds derive from the fingerprint), so these are the
    bytes every replica — killed, restarted, or fault-burst — must have
    answered.
    """
    from repro.service.routes import ServiceCore

    core = ServiceCore(max_queue=len(payloads) + 8)
    oracle: dict[str, str] = {}
    for body in payloads:
        response = core.dispatch("POST", "/assess", body)
        if response.status != 200:
            raise ReproError(
                f"oracle replay answered {response.status}: {response.payload}"
            )
        fingerprint = str(response.payload["fingerprint"])
        oracle[fingerprint] = json.dumps(
            response.payload["assessment"], sort_keys=True
        )
    return oracle


@dataclass
class ChaosResult:
    """One finished chaos run: the record plus the parsed verdict."""

    record: dict[str, Any]
    report: VerifierReport
    delivered: _Delivered


def run_chaos(
    run_dir: Path,
    seed: int = 0,
    duration_seconds: float = 10.0,
    replicas: int = 2,
    connections: int = 6,
    flavor: str = "threaded",
    profiles: int = 18,
    lease_stale_seconds: float = 1.0,
    min_kills: int = 3,
    max_inflight: int = 8,
    label: str = "chaos",
) -> ChaosResult:
    """One full chaos run: schedule, drive, recover, verify.

    *run_dir* receives the shared cache directory and the generated
    burst schedules; keep it for debugging a failing seed, delete it
    otherwise.  Returns the JSON-able run record (including the
    verifier report) — the caller decides whether to append it to
    ``BENCH_service.json``.
    """
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    cache_dir = run_dir / "cache"
    schedule = generate_schedule(
        seed, duration_seconds, replicas,
        min_kills=min_kills, lease_stale_seconds=lease_stale_seconds,
    )
    spec = WorkloadSpec(profiles=profiles, seed=seed)
    payloads = build_payloads(spec)
    stats = _ClientStats()
    log = _ResponseLog()
    delivered = _Delivered()
    # Fast restarts, and a crash-loop bar the *scheduled* kill cadence
    # stays under (the generator round-robins and spaces death events);
    # tripping it in a chaos run means the supervisor itself is broken.
    policy = RestartPolicy(
        initial_delay_seconds=0.05,
        max_delay_seconds=1.0,
        crash_loop_window_seconds=3.0,
        crash_loop_threshold=3,
    )
    pool = ReplicaPool(
        count=replicas,
        flavor=flavor,
        cache_dir=cache_dir,
        shared=True,
        max_queue=256,
        max_inflight=max_inflight,
        lease_stale_seconds=lease_stale_seconds,
        supervise=True,
        policy=policy,
        seed=seed,
    )
    with pool:
        asyncio.run(
            _drive_chaos(
                pool, spec, payloads, schedule, run_dir,
                connections, duration_seconds, stats, log, delivered,
            )
        )
        # Settle: let in-flight answers land, restarts finish, and
        # crashed-owner leases age out of the staleness window, then
        # take the final per-incarnation metric snapshots — after a
        # kill -9 these are all that remain of a replica's counters.
        time.sleep(max(1.0, 2.0 * lease_stale_seconds))
        pool.supervisor.tick()
        pool.supervisor.scrape_all()
        supervisor_status = pool.supervisor.status()
        crash_loops = pool.supervisor.crash_loop_reports()
        snapshots = list(pool.supervisor.metric_snapshots.values())
    oracle = oracle_replay(payloads)
    crash_capacity = sum(
        rule.times or 0
        for event in schedule
        for rule in event.burst_rules
        if rule.action in ("crash", "torn_write")
    )
    report = verify_run(
        cache_dir=cache_dir,
        responses=log.responses,
        response_conflicts=log.conflicts,
        statuses=stats.statuses,
        oracle=oracle,
        metric_snapshots=snapshots,
        kills=delivered.kills + delivered.terms + delivered.bursts,
        max_inflight=max_inflight,
        lease_stale_seconds=lease_stale_seconds,
        crash_capacity=crash_capacity,
    )
    record: dict[str, Any] = {
        "label": label,
        "version": repro.__version__,
        "seed": seed,
        "flavor": flavor,
        "replicas": replicas,
        "connections": connections,
        "profiles": profiles,
        "duration_seconds": duration_seconds,
        "lease_stale_seconds": lease_stale_seconds,
        "min_kills": min_kills,
        "schedule_digest": schedule_digest(schedule),
        "events": [event.to_json() for event in schedule],
        "events_delivered": delivered.to_json(),
        "client": {
            "requests": sum(stats.statuses.values()),
            "errors": stats.errors,
            "reconnects": stats.reconnects,
            "statuses": {
                str(code): count for code, count in sorted(stats.statuses.items())
            },
            "fingerprints_answered": len(log.responses),
        },
        "supervisor": supervisor_status,
        "crash_loop_reports": crash_loops,
        "verifier": report.to_json(),
    }
    return ChaosResult(record=record, report=report, delivered=delivered)


# -- the tracked chaos section ----------------------------------------------


def append_chaos(path: Path, record: dict[str, Any]) -> dict[str, Any]:
    """Append one chaos record to ``BENCH_service.json`` (created if absent)."""
    try:
        report = load_json(path)
        if not isinstance(report, dict) or report.get("benchmark") != "bench_service":
            report = {"benchmark": "bench_service", "schema": 1, "trajectory": []}
    except (OSError, ReproError):
        report = {"benchmark": "bench_service", "schema": 1, "trajectory": []}
    chaos = report.setdefault("chaos", [])
    assert isinstance(chaos, list)
    chaos.append(record)
    save_json_atomic(report, path)
    return report

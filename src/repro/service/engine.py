"""The reusable Assess-Risk engine behind the service layer.

:func:`repro.recipe.assess.assess_risk` answers one question from
scratch.  The :class:`AssessmentEngine` turns that recipe into a
server-grade component:

* **Result cache** — answers are content-addressed by
  :func:`~repro.service.fingerprint.request_fingerprint`; a repeated
  question is a dictionary lookup (plus an optional disk tier, see
  :class:`~repro.service.cache.AssessmentCache`).
* **Shared intermediates** — the expensive inputs of the recipe stages
  (:class:`FrequencyGroups` per profile; belief + bipartite
  :class:`MappingSpace` per ``(profile, delta)``) are memoized, so a
  tolerance sweep over one release, or a batch of requests against the
  same data, builds them once.
* **Deterministic randomness** — the alpha stage's RNG is seeded from
  the request fingerprint (:func:`~repro.service.fingerprint.derived_seed`),
  so the same question yields byte-identical JSON whether it runs
  inline, through :meth:`assess_many` with one worker, or fanned out
  across a process pool.

The per-stage arithmetic deliberately mirrors ``assess_risk`` line for
line; ``tests/test_service.py`` pins the equivalence.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Generic, Iterable, Sequence, TypeVar

import numpy as np

from repro.beliefs.builders import uniform_width_belief
from repro.budget import ComputeBudget, PartialEstimate
from repro.core.alpha import alpha_max as compute_alpha_max
from repro.core.oestimate import o_estimate
from repro.data.database import FrequencyProfile, FrequencySource
from repro.data.frequency import FrequencyGroups
from repro.errors import BudgetExceeded, RecipeError, ReproError
from repro.graph.bipartite import FrequencyMappingSpace, space_from_frequencies
from repro.recipe.assess import (
    AttackSummary,
    Decision,
    RiskAssessment,
    _attack_summary,
    _try_exact_interval,
)
from repro.service.breaker import CircuitBreaker
from repro.service.cache import AssessmentCache
from repro.service.faults import fault_point
from repro.service.fingerprint import (
    AssessmentParams,
    derived_seed,
    profile_fingerprint,
    request_fingerprint,
)
from repro.service.metrics import ServiceMetrics

__all__ = ["AssessmentOutcome", "BatchResult", "AssessmentEngine"]


@dataclass(frozen=True)
class AssessmentOutcome:
    """One answered question: the assessment plus serving metadata."""

    assessment: RiskAssessment
    fingerprint: str
    cached: bool
    elapsed_seconds: float


@dataclass(frozen=True)
class BatchResult:
    """One slot of an :meth:`AssessmentEngine.assess_many` batch.

    Either *assessment* is set (``ok``) or *error* carries the message of
    the exception that job raised — one bad dataset never kills a batch.
    """

    index: int
    fingerprint: str
    assessment: RiskAssessment | None
    error: str | None
    cached: bool
    elapsed_seconds: float
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.assessment is not None


_K = TypeVar("_K")
_V = TypeVar("_V")


class _LRU(Generic[_K, _V]):
    """A tiny bounded mapping for memoized intermediates (thread-safe)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[_K, _V] = OrderedDict()

    def get(self, key: _K) -> _V | None:
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key: _K, value: _V) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)


def _as_profile(source: FrequencySource) -> FrequencyProfile:
    if isinstance(source, FrequencyProfile):
        return source
    to_profile = getattr(source, "to_profile", None)
    if to_profile is not None:
        return to_profile()
    counts = {item: source.item_count(item) for item in source.domain}
    return FrequencyProfile(counts, source.n_transactions)


class AssessmentEngine:
    """Cached, intermediate-sharing executor of the Assess-Risk recipe.

    Parameters
    ----------
    cache:
        Result cache; defaults to a fresh in-memory
        :class:`AssessmentCache`.
    metrics:
        Shared :class:`ServiceMetrics`; defaults to a private instance.
    max_profiles, max_spaces:
        Bounds on the memoized intermediates (frequency groups per
        profile; belief/space per ``(profile, delta)``).
    breaker:
        Circuit breaker guarding the serial compute path; defaults to a
        fresh :class:`~repro.service.breaker.CircuitBreaker` sharing the
        engine's metrics.  Pool workers are separate processes and are
        deliberately outside the breaker.
    reuse_exact_intermediates:
        Memoize the exact-engine marginals and the attack summary per
        ``(profile, delta, interest)``.  Both depend only on the space —
        not on the tolerance — so a tolerance sweep re-derives the
        decision per tolerance while solving the hard counting problems
        once.  On by default; disable to force every request to re-solve
        (benchmarking, memory-constrained deployments).
    """

    def __init__(
        self,
        cache: AssessmentCache | None = None,
        metrics: ServiceMetrics | None = None,
        max_profiles: int = 16,
        max_spaces: int = 8,
        breaker: CircuitBreaker | None = None,
        reuse_exact_intermediates: bool = True,
    ) -> None:
        self.cache = AssessmentCache() if cache is None else cache
        self.metrics = ServiceMetrics() if metrics is None else metrics
        self.breaker = (
            CircuitBreaker(metrics=self.metrics) if breaker is None else breaker
        )
        self.reuse_exact_intermediates = reuse_exact_intermediates
        self._profiles: _LRU[str, tuple[dict[Any, float], FrequencyGroups]] = _LRU(
            max_profiles
        )
        self._spaces: _LRU[tuple[str, float], FrequencyMappingSpace] = _LRU(max_spaces)
        self._exact: _LRU[
            tuple[str, float, frozenset[Any] | None], tuple[float | None, str | None]
        ] = _LRU(max_spaces * 4)
        self._attacks: _LRU[tuple[str, float], AttackSummary | None] = _LRU(
            max_spaces * 4
        )
        # id() -> (profile, fingerprint).  Holding the profile keeps its
        # id() valid for as long as the entry lives, so re-assessing the
        # same object (sweeps, repeated server hits) skips the content
        # hash entirely.
        self._fingerprints: _LRU[int, tuple[FrequencyProfile, str]] = _LRU(
            max_profiles * 2
        )

    # -- single requests --------------------------------------------------

    def assess(
        self,
        source: FrequencySource,
        tolerance: float,
        *,
        delta: float | None = None,
        runs: int = 5,
        seed: int = 0,
        interest: Iterable | None = None,
        budget: ComputeBudget | None = None,
    ) -> AssessmentOutcome:
        """Answer one question, through the cache."""
        params = AssessmentParams(
            tolerance=tolerance, delta=delta, runs=runs, seed=seed,
            interest=None if interest is None else frozenset(interest),
        )
        return self.assess_request(source, params, budget=budget)

    def assess_request(
        self,
        source: FrequencySource,
        params: AssessmentParams,
        budget: ComputeBudget | None = None,
    ) -> AssessmentOutcome:
        """Answer one pre-packaged request, through the cache.

        Lookups are single-flight: concurrent requests for the same
        fingerprint (e.g. simultaneous HTTP hits) run one computation
        and share its result instead of racing.

        *budget* attaches a per-request deadline (see
        :mod:`repro.service.budget`).  Budgets are deliberately *not*
        part of the fingerprint — the answer to a question does not
        depend on how long the client was willing to wait — so a
        deadline-bearing request still hits the shared cache; but a
        *partial* (INCONCLUSIVE) result is never cached, because a
        different deadline could have done better.  Deadline-bearing
        misses skip the single-flight rendezvous: sharing another
        request's computation would mean inheriting someone else's
        deadline.
        """
        start = time.perf_counter()
        self.metrics.increment("requests")
        profile = _as_profile(source)
        fingerprint = request_fingerprint(
            profile, params, profile_hash=self._profile_fp(profile)
        )

        def compute() -> RiskAssessment:
            self.metrics.increment("computed")
            with self.metrics.timer("assess"):
                return self._compute(profile, params, fingerprint, budget=budget)

        if budget is None:
            assessment, origin = self.cache.get_or_compute(
                fingerprint, lambda: self.breaker.call(compute)
            )
            cached = origin != "computed"
        elif self.cache.shared:
            # Deadline-bearing misses still coordinate across replicas:
            # another process's in-progress artifact can be awaited for
            # up to the remaining budget (compute_shared falls back to a
            # local compute past that), and a partial result is withheld
            # from the cache by the store predicate.
            assessment, origin = self.cache.compute_shared(
                fingerprint,
                lambda: self.breaker.call(compute),
                timeout_seconds=budget.remaining_seconds(),
                store=lambda result: not result.partial,
            )
            cached = origin != "computed"
            if not cached and assessment.partial:
                self.metrics.increment("partial_results")
        else:
            hit = self.cache.get(fingerprint)
            if hit is not None:
                assessment, cached = hit, True
            else:
                assessment = self.breaker.call(compute)
                cached = False
                if not assessment.partial:
                    self.cache.put(fingerprint, assessment)
                else:
                    self.metrics.increment("partial_results")
        if cached:
            self.metrics.increment("cache_hits")
        return AssessmentOutcome(
            assessment=assessment,
            fingerprint=fingerprint,
            cached=cached,
            elapsed_seconds=time.perf_counter() - start,
        )

    # -- batches and sweeps ----------------------------------------------

    def assess_many(
        self,
        requests: Sequence[tuple[FrequencySource, AssessmentParams]],
        workers: int = 1,
        *,
        retries: int = 2,
        backoff_seconds: float = 0.05,
        timeout_seconds: float | None = None,
        deadline_seconds: float | None = None,
    ) -> list[BatchResult]:
        """Answer a batch, optionally fanned out across processes.

        Results are returned in input order and are identical for any
        *workers* value (per-job seeds derive from the fingerprints, not
        from scheduling).  Cache hits are served without touching the
        pool; computed results are inserted into the cache.

        Transient failures (anything but a deterministic
        :class:`~repro.errors.ReproError`) are retried up to *retries*
        times with exponential backoff, on the serial path and inside
        the pool alike.  *timeout_seconds* caps each pool job's
        wall-clock time (measured from submission; serial jobs cannot be
        preempted and ignore it).  *deadline_seconds* attaches a
        per-job cooperative :class:`~repro.budget.ComputeBudget` on the
        serial path: computations degrade to INCONCLUSIVE partial
        results near the deadline, retry backoff never sleeps past it,
        and partial results are not cached.
        """
        if workers <= 1:
            return [
                self._assess_job(
                    index, source, params, retries, backoff_seconds,
                    deadline_seconds=deadline_seconds,
                )
                for index, (source, params) in enumerate(requests)
            ]

        jobs: list[tuple[int, FrequencyProfile, AssessmentParams, str]] = []
        results: dict[int, BatchResult] = {}
        for index, (source, params) in enumerate(requests):
            start = time.perf_counter()
            self.metrics.increment("requests")
            profile = _as_profile(source)
            fingerprint = request_fingerprint(
                profile, params, profile_hash=self._profile_fp(profile)
            )
            cached = self.cache.get(fingerprint)
            if cached is not None:
                self.metrics.increment("cache_hits")
                results[index] = BatchResult(
                    index=index,
                    fingerprint=fingerprint,
                    assessment=cached,
                    error=None,
                    cached=True,
                    elapsed_seconds=time.perf_counter() - start,
                )
            else:
                jobs.append((index, profile, params, fingerprint))

        if jobs:
            from repro.service.pool import run_batch

            for result in run_batch(
                jobs,
                workers=workers,
                retries=retries,
                backoff_seconds=backoff_seconds,
                timeout_seconds=timeout_seconds,
            ):
                if result.ok:
                    self.metrics.increment("computed")
                    self.cache.put(result.fingerprint, result.assessment)
                else:
                    self.metrics.increment("errors")
                results[result.index] = result

        return [results[index] for index in range(len(requests))]

    def _assess_job(
        self,
        index: int,
        source: FrequencySource,
        params: AssessmentParams,
        retries: int,
        backoff_seconds: float,
        deadline_seconds: float | None = None,
    ) -> BatchResult:
        """One serial batch slot: single-flight cache + retry, error captured."""
        start = time.perf_counter()
        self.metrics.increment("requests")
        attempts = [0]
        try:
            profile = _as_profile(source)
            fingerprint = request_fingerprint(
                profile, params, profile_hash=self._profile_fp(profile)
            )
        except Exception as exc:
            self.metrics.increment("errors")
            return BatchResult(
                index=index,
                fingerprint="",
                assessment=None,
                error=f"{type(exc).__name__}: {exc}",
                cached=False,
                elapsed_seconds=time.perf_counter() - start,
            )

        budget = (
            None
            if deadline_seconds is None
            else ComputeBudget(seconds=deadline_seconds)
        )

        def compute() -> RiskAssessment:
            self.metrics.increment("computed")
            with self.metrics.timer("assess"):
                return self._compute_with_retries(
                    profile, params, fingerprint, retries, backoff_seconds,
                    attempts, budget=budget,
                )

        try:
            if budget is None:
                assessment, origin = self.cache.get_or_compute(fingerprint, compute)
            else:
                # Deadline-bearing slots mirror assess_request: skip the
                # single-flight rendezvous (another request's deadline is
                # not ours) and never cache a partial result.
                hit = self.cache.get(fingerprint)
                if hit is not None:
                    assessment, origin = hit, "cache"
                else:
                    assessment, origin = compute(), "computed"
                    if not assessment.partial:
                        self.cache.put(fingerprint, assessment)
                    else:
                        self.metrics.increment("partial_results")
        except Exception as exc:  # per-job capture, batch survives
            self.metrics.increment("errors")
            return BatchResult(
                index=index,
                fingerprint=fingerprint,
                assessment=None,
                error=f"{type(exc).__name__}: {exc}",
                cached=False,
                elapsed_seconds=time.perf_counter() - start,
                attempts=max(1, attempts[0]),
            )
        cached = origin != "computed"
        if cached:
            self.metrics.increment("cache_hits")
        return BatchResult(
            index=index,
            fingerprint=fingerprint,
            assessment=assessment,
            error=None,
            cached=cached,
            elapsed_seconds=time.perf_counter() - start,
            attempts=max(1, attempts[0]),
        )

    def _compute_with_retries(
        self,
        profile: FrequencyProfile,
        params: AssessmentParams,
        fingerprint: str,
        retries: int,
        backoff_seconds: float,
        attempts: list[int] | None = None,
        budget: ComputeBudget | None = None,
    ) -> RiskAssessment:
        """Run :meth:`_compute`, retrying transient failures with backoff.

        A :class:`~repro.errors.ReproError` is deterministic (the same
        inputs will fail the same way) and is never retried; anything
        else — injected I/O faults, flaky system calls — is retried up
        to *retries* times.  Determinism of the result is unaffected:
        the RNG seed derives from the fingerprint, so a retried job
        produces byte-identical output.

        With a deadline-bearing *budget*, the exponential backoff never
        oversleeps the remaining deadline: each sleep is capped by what
        is left, and when nothing is left the last failure is re-raised
        immediately instead of burning the caller's budget in
        ``time.sleep`` (the computation itself still degrades through
        :meth:`_compute`'s usual partial-estimate path).
        """
        attempt = 0
        while True:
            if attempts is not None:
                attempts[0] = attempt + 1
            try:
                return self._compute(profile, params, fingerprint, budget=budget)
            except ReproError:
                raise
            except Exception:
                if attempt >= retries:
                    raise
                delay = backoff_seconds * (2**attempt)
                if budget is not None:
                    remaining = budget.remaining_seconds()
                    if remaining is not None:
                        if remaining <= 0:
                            raise
                        delay = min(delay, remaining)
                self.metrics.increment("retries")
                time.sleep(delay)
                attempt += 1

    def sweep_tolerance(
        self,
        source: FrequencySource,
        tolerances: Sequence[float],
        *,
        delta: float | None = None,
        runs: int = 5,
        seed: int = 0,
        interest: Iterable | None = None,
    ) -> list[AssessmentOutcome]:
        """Assess one release under many tolerances, sharing one space.

        The memoized intermediates make this build the frequency groups,
        belief and bipartite space once for the whole sweep instead of
        once per tolerance.
        """
        return [
            self.assess(
                source, tolerance, delta=delta, runs=runs, seed=seed,
                interest=interest,
            )
            for tolerance in tolerances
        ]

    # -- shared intermediates ---------------------------------------------

    def _profile_fp(self, profile: FrequencyProfile) -> str:
        """The profile's content hash, memoized per object identity."""
        key = id(profile)
        memo = self._fingerprints.get(key)
        if memo is not None and memo[0] is profile:
            return memo[1]
        fingerprint = profile_fingerprint(profile)
        self._fingerprints.put(key, (profile, fingerprint))
        return fingerprint

    def _profile_state(
        self, profile: FrequencyProfile
    ) -> tuple[str, dict[Any, float], FrequencyGroups]:
        key = self._profile_fp(profile)
        state = self._profiles.get(key)
        if state is None:
            with self.metrics.timer("stage:groups"):
                frequencies = profile.frequencies()
                state = (frequencies, FrequencyGroups(frequencies))
            self._profiles.put(key, state)
        return key, state[0], state[1]

    def _space_state(
        self, profile_key: str, frequencies: dict[Any, float], delta: float
    ) -> FrequencyMappingSpace:
        key = (profile_key, delta)
        space = self._spaces.get(key)
        if space is None:
            with self.metrics.timer("stage:space"):
                belief = uniform_width_belief(frequencies, delta)
                space = space_from_frequencies(belief, frequencies)
            self._spaces.put(key, space)
        return space

    # -- the recipe, stage by stage ---------------------------------------

    def _compute(
        self,
        profile: FrequencyProfile,
        params: AssessmentParams,
        fingerprint: str,
        budget: ComputeBudget | None = None,
    ) -> RiskAssessment:
        fault_point("engine.compute")
        if budget is not None:
            budget.poll()
        profile_key, frequencies, groups = self._profile_state(profile)
        n = len(frequencies)
        g = len(groups)
        interest = params.interest
        basis = n if interest is None else len(interest)
        tolerance = params.tolerance

        # Steps 1-2: point-valued worst case (Lemma 3 / Lemma 4).
        if interest is None:
            point_valued = float(g)
        else:
            from repro.core.exact import expected_cracks_point_valued_subset

            point_valued = expected_cracks_point_valued_subset(groups, interest)
        if point_valued <= tolerance * basis:
            return RiskAssessment(
                decision=Decision.DISCLOSE_POINT_VALUED,
                tolerance=tolerance,
                n_items=n,
                g=g,
                interest=interest,
            )

        # Steps 3-5: compliant interval belief with the median-gap width.
        delta = params.delta
        if delta is None:
            if g < 2:
                raise RecipeError(
                    "a single frequency group has no gaps; pass delta explicitly"
                )
            delta = groups.median_gap()
        space = self._space_state(profile_key, frequencies, delta)

        # Steps 6-7: the fully compliant O-estimate decides; the exact
        # engine additionally serves ground truth when its plan is cheap.
        if budget is not None:
            budget.poll()
        with self.metrics.timer("stage:oestimate"):
            estimate = o_estimate(space, interest=interest)
        exact_key = (profile_key, delta, interest)
        exact_state = (
            self._exact.get(exact_key) if self.reuse_exact_intermediates else None
        )
        if exact_state is not None:
            exact_cracks, exact_strategy_name = exact_state
            self.metrics.increment("exact_memo_hits")
        else:
            with self.metrics.timer("stage:exact"):
                exact_cracks, exact_strategy_name = _try_exact_interval(
                    space, interest, budget
                )
            # A (None, None) under a deadline may be budget-caused, not a
            # property of the instance — only memoize what a budget-free
            # run would also have produced.
            if self.reuse_exact_intermediates and (
                budget is None or exact_strategy_name is not None
            ):
                self._exact.put(exact_key, (exact_cracks, exact_strategy_name))
        if exact_strategy_name is not None:
            self.metrics.increment("exact_served")
            self.metrics.increment(f"exact:{exact_strategy_name}")
        else:
            self.metrics.increment("exact_skipped")
        attack_key = (profile_key, delta)
        attack = (
            self._attacks.get(attack_key) if self.reuse_exact_intermediates else None
        )
        if attack is None:
            with self.metrics.timer("stage:attack"):
                attack = _attack_summary(space, budget)
            if self.reuse_exact_intermediates and (
                budget is None or attack is not None
            ):
                self._attacks.put(attack_key, attack)
        else:
            self.metrics.increment("attack_memo_hits")
        if estimate.value <= tolerance * basis:
            return RiskAssessment(
                decision=Decision.DISCLOSE_INTERVAL,
                tolerance=tolerance,
                n_items=n,
                g=g,
                delta=delta,
                interval_estimate=estimate,
                interest=interest,
                exact_cracks=exact_cracks,
                exact_strategy=exact_strategy_name,
                attack=attack,
            )

        # Steps 8-9: largest tolerable degree of compliancy, with the
        # RNG pinned to the request fingerprint for reproducibility.
        # The interval rung's O-estimate is bounded, so budget exhaustion
        # from here on degrades to an INCONCLUSIVE partial assessment
        # instead of failing the request.
        try:
            if budget is not None:
                budget.poll()
            rng = np.random.default_rng(derived_seed(fingerprint))
            with self.metrics.timer("stage:alpha"):
                alpha = compute_alpha_max(
                    space, tolerance, runs=params.runs, rng=rng, interest=interest
                )
        except BudgetExceeded as exc:
            partial = exc.partial if isinstance(exc.partial, PartialEstimate) else (
                PartialEstimate(
                    value=float(estimate.value),
                    std_error=0.0,
                    sweeps_completed=0,
                    rung="o-estimate",
                    reason=exc.reason,
                )
            )
            return RiskAssessment(
                decision=Decision.INCONCLUSIVE,
                tolerance=tolerance,
                n_items=n,
                g=g,
                delta=delta,
                interval_estimate=estimate,
                interest=interest,
                exact_cracks=exact_cracks,
                exact_strategy=exact_strategy_name,
                partial_estimate=partial,
                attack=attack,
            )
        return RiskAssessment(
            decision=Decision.ALPHA_BOUND,
            tolerance=tolerance,
            n_items=n,
            g=g,
            delta=delta,
            interval_estimate=estimate,
            alpha_max=alpha,
            interest=interest,
            runs=params.runs,
            exact_cracks=exact_cracks,
            exact_strategy=exact_strategy_name,
            attack=attack,
        )

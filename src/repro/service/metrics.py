"""Lightweight service metrics: counters and per-stage wall-clock timers.

The engine and HTTP server share one :class:`ServiceMetrics` instance;
``GET /metrics`` serves its :meth:`~ServiceMetrics.snapshot`.  Everything
is guarded by a single lock so the threaded server can record from
concurrent requests.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Named counters and gauges plus named (count, total seconds) timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timer_counts: dict[str, int] = {}
        self._timer_totals: dict[str, float] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to an instantaneous *value*."""
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str) -> float:
        """Current value of a gauge (0 if never set)."""
        with self._lock:
            return self._gauges.get(name, 0)

    def observe(self, name: str, seconds: float) -> None:
        """Record one observation of *seconds* under the timer *name*."""
        with self._lock:
            self._timer_counts[name] = self._timer_counts.get(name, 0) + 1
            self._timer_totals[name] = self._timer_totals.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body with :func:`time.perf_counter`."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of every counter and timer."""
        with self._lock:
            timers = {
                name: {
                    "count": count,
                    "total_seconds": self._timer_totals[name],
                    "mean_seconds": self._timer_totals[name] / count,
                }
                for name, count in self._timer_counts.items()
            }
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": timers,
            }

    def reset(self) -> None:
        """Drop every counter, gauge and timer."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timer_counts.clear()
            self._timer_totals.clear()

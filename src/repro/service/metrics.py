"""Lightweight service metrics: counters, timers and latency histograms.

The engine and HTTP servers (threaded and asyncio alike) share one
:class:`ServiceMetrics` instance; ``GET /metrics`` serves its
:meth:`~ServiceMetrics.snapshot`.  Everything is guarded by a single
lock so concurrent requests can record safely from any thread.

Histograms use a small fixed bucket ladder
(:data:`LATENCY_BUCKETS_SECONDS`, 1 ms to 10 s) so the load harness
(``repro-loadgen``) can cross-check its client-side percentiles against
what the server itself observed, without unbounded per-request storage.
"""

from __future__ import annotations

import bisect
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["ServiceMetrics", "LATENCY_BUCKETS_SECONDS"]

#: Upper bounds (seconds) of the fixed latency histogram buckets; one
#: implicit overflow bucket catches everything slower than the last edge.
LATENCY_BUCKETS_SECONDS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class ServiceMetrics:
    """Named counters and gauges plus named (count, total seconds) timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timer_counts: dict[str, int] = {}
        self._timer_totals: dict[str, float] = {}
        self._histograms: dict[str, list[int]] = {}
        self._histogram_sums: dict[str, float] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add *amount* to the counter *name* (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to an instantaneous *value*."""
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str) -> float:
        """Current value of a gauge (0 if never set)."""
        with self._lock:
            return self._gauges.get(name, 0)

    def observe(self, name: str, seconds: float) -> None:
        """Record one observation of *seconds* under the timer *name*."""
        with self._lock:
            self._timer_counts[name] = self._timer_counts.get(name, 0) + 1
            self._timer_totals[name] = self._timer_totals.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body with :func:`time.perf_counter`."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def observe_latency(self, name: str, seconds: float) -> None:
        """Record *seconds* into the fixed-bucket histogram *name*."""
        index = bisect.bisect_left(LATENCY_BUCKETS_SECONDS, seconds)
        with self._lock:
            counts = self._histograms.get(name)
            if counts is None:
                counts = [0] * (len(LATENCY_BUCKETS_SECONDS) + 1)
                self._histograms[name] = counts
            counts[index] += 1
            self._histogram_sums[name] = self._histogram_sums.get(name, 0.0) + seconds

    def histogram(self, name: str) -> dict[str, Any] | None:
        """One histogram's snapshot block, or ``None`` if never observed."""
        with self._lock:
            counts = self._histograms.get(name)
            if counts is None:
                return None
            return self._histogram_block(name, counts)

    def _histogram_block(self, name: str, counts: list[int]) -> dict[str, Any]:
        # Caller holds the lock.
        total = sum(counts)
        return {
            "buckets_seconds": list(LATENCY_BUCKETS_SECONDS),
            "counts": list(counts),
            "count": total,
            "sum_seconds": self._histogram_sums.get(name, 0.0),
        }

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of every counter, timer and histogram."""
        with self._lock:
            timers = {
                name: {
                    "count": count,
                    "total_seconds": self._timer_totals[name],
                    "mean_seconds": self._timer_totals[name] / count,
                }
                for name, count in self._timer_counts.items()
            }
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": timers,
                "histograms": {
                    name: self._histogram_block(name, counts)
                    for name, counts in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Drop every counter, gauge, timer and histogram."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timer_counts.clear()
            self._timer_totals.clear()
            self._histograms.clear()
            self._histogram_sums.clear()

"""Cross-process single-flight leases for the shared cache tier.

Several replica processes may mount one content-addressed cache
directory (``AssessmentCache(directory=..., shared=True)``).  When a
cold fingerprint arrives at N replicas at once, exactly one of them
should run the computation; the rest should wait for the artifact to
appear on disk.  In-process that is the cache's ``_Flight`` rendezvous;
across processes it is a *lease file*:

* ``<fingerprint>.lease`` is created with ``O_CREAT | O_EXCL`` — the
  POSIX-atomic "exactly one winner" primitive.  The winner computes,
  writes the artifact (atomically, via ``save_json_atomic``), and
  unlinks the lease.
* The lease payload records the owner's pid plus a monotonically
  increasing heartbeat counter.  :meth:`Lease.heartbeat` rewrites the
  payload (bumping the counter and the file's mtime), so a long compute
  keeps its lease visibly alive.
* Waiters poll the artifact path with exponential backoff (bounded by
  their own request deadline, when they have one) and judge the lease
  with :func:`lease_state`: a lease whose owner pid is dead, or whose
  mtime has not moved for ``stale_after`` seconds, is *stale* and may be
  taken over — ``unlink`` + a fresh ``O_CREAT | O_EXCL`` attempt, which
  itself races safely (at most one taker wins the recreate).

The pid-liveness check uses ``os.kill(pid, 0)`` and therefore assumes
replicas share a host (the intended topology: N processes, one cache
directory, one machine).  On a network filesystem only the mtime
staleness rule applies.

Crash-realism: a lease is deliberately **not** released on
:class:`~repro.service.faults.InjectedCrash` (or any other
``BaseException``) — a process killed mid-compute leaves its lease file
behind exactly like a real ``kill -9``, and recovery happens through
stale-lease takeover, not through ``finally`` blocks a dead process
would never have run.  The ``cache.lease`` fault site fires on every
acquisition attempt so that schedule-driven tests can kill an owner at
the exact moment it wins the race.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.errors import ReproError
from repro.service.faults import clock_skew, fault_point

__all__ = [
    "Lease",
    "LeaseInfo",
    "LeaseState",
    "acquire_lease",
    "lease_state",
    "take_over",
    "sweep_stale_leases",
]

PathLike = Union[str, Path]

#: Seconds without a heartbeat after which a lease with a live owner is
#: still considered abandoned (hung process, lost thread).  Owners
#: heartbeat far more often than this, so a healthy compute of any
#: length keeps its lease.
DEFAULT_STALE_AFTER = 5.0


@dataclass(frozen=True)
class LeaseInfo:
    """What a waiter can read out of somebody else's lease file."""

    pid: int
    heartbeats: int
    age_seconds: float
    owner_alive: bool


class LeaseState:
    """Classification of a lease path: ``missing``, ``held`` or ``stale``."""

    MISSING = "missing"
    HELD = "held"
    STALE = "stale"

    def __init__(self, kind: str, info: LeaseInfo | None = None) -> None:
        self.kind = kind
        self.info = info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LeaseState({self.kind!r}, {self.info!r})"


class Lease:
    """An acquired lease: heartbeat while computing, release when done.

    Create through :func:`acquire_lease` (or :func:`take_over`), never
    directly — acquisition is what makes the ``O_CREAT | O_EXCL``
    guarantee.
    """

    def __init__(self, path: Path, pid: int) -> None:
        self.path = path
        self.pid = pid
        # One lock serializes the mutable lease state (_heartbeats,
        # _released, _beater) between the owner thread and the heartbeat
        # daemon; the Event alone ordered the shutdown but not the
        # counter/payload writes racing a concurrent release().
        self._state_lock = threading.Lock()
        self._heartbeats = 0
        self._released = False
        self._stop = threading.Event()
        self._beater: threading.Thread | None = None
        with self._state_lock:
            self._write_payload()

    def _write_payload(self) -> None:
        # A lease payload is coordination state, not a cached artifact:
        # it must NOT be written atomically-with-rename, because the
        # whole point of the file is that its inode was created with
        # O_EXCL by exactly one process.  A torn payload is harmless —
        # readers fall back to mtime + "malformed means stale-by-age".
        payload = json.dumps(
            {"pid": self.pid, "heartbeats": self._heartbeats},
            sort_keys=True,
        )
        fd = os.open(self.path, os.O_WRONLY | os.O_TRUNC)
        try:
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)

    def heartbeat(self) -> int:
        """Refresh the lease (payload + mtime); returns the beat count."""
        with self._state_lock:
            if self._released:
                raise ReproError(f"lease {self.path.name} already released")
            self._heartbeats += 1
            self._write_payload()
            return self._heartbeats

    def start_heartbeat(self, interval_seconds: float) -> None:
        """Refresh the lease every *interval_seconds* in a daemon thread.

        The thread stops on :meth:`stop_heartbeat` / :meth:`release` —
        and, like everything else about a lease, dies with the process:
        a killed owner's lease goes quiet and is taken over by age.
        """

        def beat() -> None:
            while not self._stop.wait(interval_seconds):
                try:
                    self.heartbeat()
                except (ReproError, OSError):
                    return  # released concurrently, or the file is gone

        with self._state_lock:
            if self._beater is not None:
                return
            self._beater = threading.Thread(
                target=beat, name=f"lease-heartbeat-{self.path.name}", daemon=True
            )
            self._beater.start()

    def stop_heartbeat(self) -> None:
        """Stop the heartbeat thread without touching the lease file.

        The cache calls this when an injected crash unwinds through the
        compute: the simulated-dead process must stop looking alive, but
        its lease file stays behind for stale takeover — exactly the
        debris a real ``kill -9`` leaves.
        """
        self._stop.set()
        # Swap the thread handle out under the lock, but join OUTSIDE
        # it: the beat thread's heartbeat() takes the same lock, so
        # joining while holding it would deadlock until the timeout.
        with self._state_lock:
            beater, self._beater = self._beater, None
        if beater is not None:
            beater.join(timeout=1.0)

    def release(self) -> None:
        """Unlink the lease file and stop the heartbeat (idempotent)."""
        with self._state_lock:
            if self._released:
                return
            self._released = True
        self.stop_heartbeat()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass  # a takeover (wrongly) judged us stale; nothing to free

    @property
    def released(self) -> bool:
        with self._state_lock:
            return self._released


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return True
    return True


def acquire_lease(path: PathLike, pid: int | None = None) -> Lease | None:
    """Try to create *path* exclusively; ``None`` when somebody holds it.

    Fires the ``cache.lease`` fault site before touching the filesystem,
    so schedules can model a replica dying at the moment it would have
    won (leaving either no lease or an orphan for takeover, depending on
    where the crash rule is placed).
    """
    fault_point("cache.lease")
    target = Path(path)
    try:
        fd = os.open(target, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return None
    except OSError as exc:
        # Filesystems that report the collision as a bare OSError with
        # errno EEXIST (rather than the FileExistsError subclass) mean
        # the same thing: somebody else holds the lease.  Anything else
        # (ENOSPC, EIO, ...) is a real failure the caller must see.
        if exc.errno == errno.EEXIST:
            return None
        raise
    os.close(fd)
    return Lease(target, os.getpid() if pid is None else pid)


def lease_state(
    path: PathLike, stale_after: float = DEFAULT_STALE_AFTER
) -> LeaseState:
    """Classify the lease at *path*: missing, held or stale.

    A lease is *stale* when its owner pid is no longer alive, or when
    its mtime is older than *stale_after* seconds (no heartbeats — a
    hung owner).  A payload that cannot be parsed (torn write, takeover
    race) falls back to the mtime rule alone.

    The ``cache.lease.state`` fault site fires before the ``stat``:
    an injected ``OSError`` lands in the vanished-mid-stat fallback
    (reported as *missing* — the caller's next poll sees the truth),
    and injected clock skew (:func:`~repro.service.faults.clock_skew`)
    is added to the observed age, so schedules can make a healthy
    owner's heartbeats look stale without sleeping through the window.
    """
    target = Path(path)
    try:
        fault_point("cache.lease.state", path=target)
        stat = target.stat()
    except FileNotFoundError:
        return LeaseState(LeaseState.MISSING)
    except OSError:
        # A transient stat failure is indistinguishable from a vanished
        # lease; report MISSING rather than guessing HELD/STALE — the
        # caller re-polls either way.
        return LeaseState(LeaseState.MISSING)
    age = max(0.0, time.time() - stat.st_mtime + clock_skew())
    pid = -1
    heartbeats = -1
    try:
        payload = json.loads(target.read_bytes().decode("utf-8"))
        pid = int(payload["pid"])
        heartbeats = int(payload["heartbeats"])
    except (OSError, ValueError, KeyError, TypeError):
        # Freshly created (empty), torn, or concurrently unlinked: judge
        # by age alone.
        kind = LeaseState.STALE if age > stale_after else LeaseState.HELD
        return LeaseState(kind, LeaseInfo(pid, heartbeats, age, owner_alive=False))
    alive = _pid_alive(pid)
    info = LeaseInfo(pid=pid, heartbeats=heartbeats, age_seconds=age, owner_alive=alive)
    if not alive or age > stale_after:
        return LeaseState(LeaseState.STALE, info)
    return LeaseState(LeaseState.HELD, info)


def take_over(
    path: PathLike, stale_after: float = DEFAULT_STALE_AFTER
) -> Lease | None:
    """Break a stale lease and try to acquire it; ``None`` if outraced.

    Re-checks staleness immediately before the unlink so a concurrent
    heartbeat (the owner was alive after all) is respected; the
    subsequent exclusive create may still lose to another taker — that
    is fine, exactly one process ends up owning the recreated lease.
    """
    state = lease_state(path, stale_after=stale_after)
    if state.kind == LeaseState.HELD:
        return None
    if state.kind == LeaseState.STALE:
        try:
            fault_point("cache.lease.takeover", path=Path(path))
            Path(path).unlink()
        except FileNotFoundError:
            pass  # a rival taker (or the returning owner) got there first
        except OSError:
            # Could not break the lease this round; do not race the
            # recreate against whoever still holds the inode.
            return None
    return acquire_lease(path)


def sweep_stale_leases(
    directory: PathLike, stale_after: float = DEFAULT_STALE_AFTER
) -> int:
    """Unlink every stale ``*.lease`` under *directory*; returns the count.

    Run by :meth:`repro.service.cache.AssessmentCache.recover_orphans`
    when a cache opens a directory, so leftovers of crashed replicas do
    not make the first cold miss of a fresh process wait out the
    staleness window.

    The staleness check and the unlink are two filesystem operations,
    so the sweep inherently races a releasing owner (or a rival
    sweeper): the lease judged stale may be gone by the time the unlink
    runs.  That TOCTOU window is expected, not an error — the file
    vanishing means nothing was leaked, so it is simply not counted.
    The ``cache.lease.sweep`` fault site fires inside the window so
    schedules can pin the race deterministically.
    """
    removed = 0
    for path in Path(directory).glob("*.lease"):
        if lease_state(path, stale_after=stale_after).kind != LeaseState.STALE:
            continue
        try:
            fault_point("cache.lease.sweep", path=path)
            path.unlink()
        except FileNotFoundError:
            # TOCTOU: the owner released (or another sweeper won)
            # between the staleness check and our unlink.
            continue
        except OSError:
            continue  # transient fs error; the next sweep retries
        removed += 1
    return removed

"""The risk-assessment service layer.

Turns the one-shot Assess-Risk recipe into a reusable, cache-backed,
parallel engine with an HTTP front end:

* :mod:`repro.service.fingerprint` — content-addressed request hashes
  and fingerprint-derived deterministic seeds.
* :mod:`repro.service.cache` — two-tier (memory LRU + JSON disk) result
  cache with hit/miss/eviction counters.
* :mod:`repro.service.engine` — :class:`AssessmentEngine` with
  ``assess``, ``assess_many`` and ``sweep_tolerance``, sharing the
  expensive recipe intermediates across requests.
* :mod:`repro.service.pool` — process-pool fan-out with per-job error
  capture and scheduling-independent results.
* :mod:`repro.service.metrics` — counters, gauges and per-stage timers.
* :mod:`repro.service.budget` — per-request compute budgets (deadline +
  sweep quotas) wired to fault injection; see :mod:`repro.budget` for
  the core mechanism.
* :mod:`repro.service.breaker` — a failure-streak circuit breaker that
  fast-fails requests while the compute path is known-broken.
* :mod:`repro.service.admission` — bounded admission control (inflight
  slots + waiting queue + load shedding) for the HTTP front end.
* :mod:`repro.service.routes` — the transport-agnostic route layer
  (validation, error mapping, per-route metrics) shared by both HTTP
  front ends.
* :mod:`repro.service.server` — the threaded ``http.server`` JSON API
  (``POST /assess``, ``GET /healthz``, ``GET /metrics``) with HTTP/1.1
  keep-alive, structured errors, per-request deadlines and graceful
  signal-driven shutdown.
* :mod:`repro.service.aio` — the asyncio flavor of the same API
  (``repro-serve --async``): one event loop, keep-alive + pipelining,
  engine work on a bounded thread executor.
* :mod:`repro.service.lease` — cross-process single-flight lease files
  for the shared cache tier (N replicas, one directory, one compute per
  cold fingerprint).
* :mod:`repro.service.loadgen` — the replayable load harness behind
  ``repro-loadgen`` and the tracked ``BENCH_service.json`` trajectory.
* :mod:`repro.service.faults` — deterministic fault injection (errors,
  crashes, latency, ENOSPC, fsync failures, torn writes, clock skew)
  for testing the layer's failure semantics.
* :mod:`repro.service.supervisor` — replica lifecycle management:
  health probing, restart with exponential backoff + jitter, crash-loop
  detection, SIGTERM-then-SIGKILL shutdown escalation.
* :mod:`repro.service.chaos` — the seeded chaos harness behind
  ``repro-chaos``: replayable kill/fault/overload schedules fired at a
  supervised pool under live load.
* :mod:`repro.service.verify` — the post-mortem verifier: artifact
  integrity, single-flight commit-log audit, debris recovery, and
  byte-identical oracle replay after a chaos run.
"""

from repro.budget import BudgetExceeded, ComputeBudget, PartialEstimate
from repro.service.admission import (
    AdmissionController,
    AdmissionTimeout,
    QueueFullError,
)
from repro.service.breaker import CircuitBreaker, CircuitOpenError
from repro.service.budget import MAX_DEADLINE_SECONDS, request_budget
from repro.service.cache import AssessmentCache
from repro.service.engine import AssessmentEngine, AssessmentOutcome, BatchResult
from repro.service.faults import (
    FaultInjector,
    FaultRule,
    InjectedCrash,
    fault_point,
    injected_faults,
    load_schedule,
)
from repro.service.fingerprint import (
    AssessmentParams,
    derived_seed,
    profile_fingerprint,
    request_fingerprint,
)
from repro.service.metrics import ServiceMetrics
from repro.service.pool import run_batch
from repro.service.routes import RouteResponse, ServiceCore
from repro.service.server import (
    AssessmentServer,
    make_server,
    run_until_signal,
    serve,
)
from repro.service.supervisor import (
    ReplicaSupervisor,
    RestartPolicy,
    backoff_delay,
)
from repro.service.verify import VerifierReport, Violation, verify_run

__all__ = [
    "AdmissionController",
    "AdmissionTimeout",
    "AssessmentCache",
    "AssessmentEngine",
    "AssessmentOutcome",
    "AssessmentParams",
    "AssessmentServer",
    "BatchResult",
    "BudgetExceeded",
    "CircuitBreaker",
    "CircuitOpenError",
    "ComputeBudget",
    "FaultInjector",
    "FaultRule",
    "InjectedCrash",
    "MAX_DEADLINE_SECONDS",
    "PartialEstimate",
    "QueueFullError",
    "ReplicaSupervisor",
    "RestartPolicy",
    "RouteResponse",
    "ServiceCore",
    "ServiceMetrics",
    "VerifierReport",
    "Violation",
    "backoff_delay",
    "derived_seed",
    "request_budget",
    "fault_point",
    "injected_faults",
    "load_schedule",
    "make_server",
    "profile_fingerprint",
    "request_fingerprint",
    "run_batch",
    "run_until_signal",
    "serve",
    "verify_run",
]

"""A failure-streak circuit breaker for the assessment engine.

When the computation path fails repeatedly (injected I/O faults, a bad
disk, a poisoned dependency), letting every new request run the doomed
computation wastes handler threads and piles latency onto clients that
could have been told to back off immediately.  The breaker implements
the classic three-state automaton:

* **closed** — requests flow; consecutive *unexpected* failures are
  counted (a deterministic :class:`~repro.errors.ReproError` — including
  :class:`~repro.errors.BudgetExceeded` — is the request's own fault and
  never trips the breaker).
* **open** — after ``failure_threshold`` consecutive failures, requests
  fast-fail with :class:`CircuitOpenError` (the HTTP layer maps it to a
  503 with ``Retry-After``) without touching the engine.
* **half-open** — after ``cooldown_seconds`` one probe request is let
  through; success closes the breaker, failure re-opens it for another
  cooldown.

The breaker guards the *serial* compute path (HTTP handlers and serial
batches); pool workers run in separate processes with their own retry
discipline and are deliberately not covered.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, TypeVar

from repro.errors import ReproError
from repro.service.metrics import ServiceMetrics

__all__ = ["CircuitBreaker", "CircuitOpenError"]

_T = TypeVar("_T")

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

_STATE_GAUGE = {STATE_CLOSED: 0, STATE_OPEN: 1, STATE_HALF_OPEN: 2}


class CircuitOpenError(ReproError):
    """Fast-fail: the breaker is open and the computation was not run.

    ``retry_after`` is the suggested client back-off in seconds (the
    remaining cooldown, rounded up to at least one second).
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CircuitBreaker:
    """Thread-safe failure-streak breaker around a callable.

    Parameters
    ----------
    failure_threshold:
        Consecutive unexpected failures that open the breaker.
    cooldown_seconds:
        How long the breaker stays open before letting one probe through.
    clock:
        Injectable monotonic clock for deterministic tests.
    metrics:
        Optional :class:`ServiceMetrics`; maintains the
        ``breaker_state`` gauge (0 closed / 1 open / 2 half-open) and the
        ``breaker_opened`` / ``breaker_fast_fail`` counters.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ReproError(f"cooldown_seconds must be > 0, got {cooldown_seconds}")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._streak = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._set_gauge()

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, refreshing an expired open period to half-open."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _set_gauge(self) -> None:
        if self._metrics is not None:
            self._metrics.set_gauge("breaker_state", _STATE_GAUGE[self._state])

    def _maybe_half_open(self) -> None:
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = STATE_HALF_OPEN
            self._probe_inflight = False
            self._set_gauge()

    # -- the guarded call --------------------------------------------------

    def call(self, func: Callable[[], _T]) -> _T:
        """Run *func* under the breaker.

        Raises :class:`CircuitOpenError` without calling *func* while the
        breaker is open (or while the single half-open probe is already
        running).  A deterministic :class:`~repro.errors.ReproError` from
        *func* propagates without counting as a failure; any other
        exception feeds the failure streak.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == STATE_OPEN:
                remaining = self.cooldown_seconds - (self._clock() - self._opened_at)
                if self._metrics is not None:
                    self._metrics.increment("breaker_fast_fail")
                raise CircuitOpenError(
                    "circuit breaker is open: the compute path failed "
                    f"{self.failure_threshold} consecutive times",
                    retry_after=max(1.0, remaining),
                )
            if self._state == STATE_HALF_OPEN:
                if self._probe_inflight:
                    if self._metrics is not None:
                        self._metrics.increment("breaker_fast_fail")
                    raise CircuitOpenError(
                        "circuit breaker is half-open and its probe is "
                        "already in flight",
                        retry_after=1.0,
                    )
                self._probe_inflight = True
        try:
            result = func()
        except ReproError:
            # Deterministic request-level failure: not the engine's
            # fault, so the streak (and a half-open probe) is unaffected
            # but the breaker does not close either.
            with self._lock:
                if self._state == STATE_HALF_OPEN:
                    self._probe_inflight = False
            raise
        except Exception:
            self._record_failure()
            raise
        self._record_success()
        return result

    def _record_success(self) -> None:
        with self._lock:
            self._streak = 0
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._probe_inflight = False
                self._set_gauge()

    def _record_failure(self) -> None:
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                # The probe failed: straight back to open.
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                self._streak = self.failure_threshold
                if self._metrics is not None:
                    self._metrics.increment("breaker_opened")
                self._set_gauge()
                return
            self._streak += 1
            if self._state == STATE_CLOSED and self._streak >= self.failure_threshold:
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                if self._metrics is not None:
                    self._metrics.increment("breaker_opened")
                self._set_gauge()

"""Transport-agnostic route layer shared by both HTTP front ends.

The threaded server (:mod:`repro.service.server`) and the asyncio
server (:mod:`repro.service.aio`) speak different socket dialects but
answer the same four routes with the same semantics.  Everything that
is *not* socket plumbing lives here, in :class:`ServiceCore`:

* request validation and the ``400/404/422/429/500/503`` error mapping,
* admission control (one :class:`AdmissionController` per core, shared
  by every transport mounted on it),
* the in-flight gauge and graceful-drain accounting,
* per-route request counters and latency histograms (the server-side
  cross-check for ``repro-loadgen``'s client-side percentiles).

A transport parses one request off its socket, calls
:meth:`ServiceCore.dispatch`, and writes the returned
:class:`RouteResponse` back in its own framing.  Keeping dispatch
synchronous is deliberate: the asyncio front end runs it on a bounded
thread executor, the threaded front end runs it on the handler thread,
and both get identical behaviour from one implementation.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

import repro
from repro.errors import BudgetExceeded, ReproError
from repro.io import assessment_to_json, profile_from_json
from repro.service.admission import (
    AdmissionController,
    AdmissionTimeout,
    QueueFullError,
)
from repro.service.breaker import CircuitOpenError
from repro.service.budget import request_budget
from repro.service.crack import CrackSessionStore
from repro.service.engine import AssessmentEngine
from repro.service.fingerprint import AssessmentParams

__all__ = ["RouteResponse", "ServiceCore", "MAX_BODY_BYTES"]

#: Largest accepted ``seed`` (NumPy seeds the generator with unsigned
#: 64-bit state; the fingerprint must match what the engine computes).
_MAX_SEED = 2**64 - 1

MAX_BODY_BYTES = 64 * 1024 * 1024

#: Routes that exist, per method — anything else is a 404.
GET_ROUTES = ("/healthz", "/metrics")
POST_ROUTES = ("/assess", "/crack/step")


class RouteResponse:
    """One answer, transport-agnostic: status, JSON payload, headers."""

    __slots__ = ("status", "payload", "headers")

    def __init__(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        self.status = status
        self.payload = payload
        self.headers = headers or {}

    def body(self) -> bytes:
        return json.dumps(self.payload, sort_keys=True).encode("utf-8")


def _error(
    status: int,
    error_type: str,
    message: str,
    headers: dict[str, str] | None = None,
) -> RouteResponse:
    return RouteResponse(
        status,
        {"error": {"type": error_type, "message": message}, "status": status},
        headers=headers,
    )


class ServiceCore:
    """Shared dispatch for every HTTP front end mounted on one engine."""

    def __init__(
        self,
        engine: AssessmentEngine | None = None,
        admission: AdmissionController | None = None,
        max_inflight: int = 8,
        max_queue: int = 32,
    ) -> None:
        self.engine = engine or AssessmentEngine()
        self.admission = (
            AdmissionController(
                max_inflight=max_inflight,
                max_queue=max_queue,
                metrics=self.engine.metrics,
            )
            if admission is None
            else admission
        )
        self.crack_sessions = CrackSessionStore()
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # -- in-flight accounting (graceful drain) ----------------------------

    @contextmanager
    def tracked_request(self) -> Iterator[None]:
        """Count a request as in-flight for graceful-shutdown draining."""
        with self._inflight_lock:
            self._inflight += 1
            self.engine.metrics.set_gauge("inflight_requests", self._inflight)
        try:
            yield
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                self.engine.metrics.set_gauge("inflight_requests", self._inflight)

    def inflight_requests(self) -> int:
        """How many requests are currently being answered."""
        with self._inflight_lock:
            return self._inflight

    # -- dispatch ---------------------------------------------------------

    def dispatch(
        self, method: str, path: str, body: bytes | None = None
    ) -> RouteResponse:
        """Answer one parsed request; never raises.

        *body* is the raw (fully read) request body for POSTs; the
        transport is responsible only for socket-level framing — JSON
        parsing, validation and every error mapping happen here.  Each
        request is counted under ``route:<METHOD> <path>`` (unknown
        paths under ``route:other``) and its latency lands in the
        matching fixed-bucket histogram.
        """
        route = f"{method} {path}" if self._known(method, path) else "other"
        metrics = self.engine.metrics
        metrics.increment(f"route:{route}")
        start = time.perf_counter()
        try:
            if method == "GET":
                response = self._get(path)
            elif method == "POST":
                response = self._post(path, body)
            else:
                response = _error(404, "NotFound", f"unsupported method {method}")
        finally:
            metrics.observe_latency(f"latency:{route}", time.perf_counter() - start)
        return response

    @staticmethod
    def _known(method: str, path: str) -> bool:
        if method == "GET":
            return path in GET_ROUTES
        if method == "POST":
            return path in POST_ROUTES
        return False

    # -- GET routes -------------------------------------------------------

    def _get(self, path: str) -> RouteResponse:
        if path == "/healthz":
            return RouteResponse(
                200, {"status": "ok", "version": repro.__version__}
            )
        if path == "/metrics":
            return RouteResponse(
                200,
                {
                    "metrics": self.engine.metrics.snapshot(),
                    "cache": self.engine.cache.stats(),
                    "admission": self.admission.snapshot(),
                },
            )
        return _error(404, "NotFound", f"unknown path {path}")

    # -- POST routes ------------------------------------------------------

    def _post(self, path: str, body: bytes | None) -> RouteResponse:
        if path == "/crack/step":
            return self._crack_step(body)
        if path != "/assess":
            return _error(404, "NotFound", f"unknown path {path}")
        return self._assess(body)

    @staticmethod
    def _parse_body(body: bytes | None) -> dict[str, Any]:
        if not body:
            raise ValueError("empty request body")
        if len(body) > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        payload = json.loads(body)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _assess(self, body: bytes | None) -> RouteResponse:
        try:
            payload = self._parse_body(body)
            if "profile" not in payload:
                raise ValueError("missing required key 'profile'")
            if "tolerance" not in payload:
                raise ValueError("missing required key 'tolerance'")
            profile = profile_from_json(payload["profile"])
            interest = payload.get("interest")
            tolerance = float(payload["tolerance"])
            if not tolerance >= 0:
                raise ValueError(f"tolerance must be >= 0, got {tolerance}")
            runs = int(payload.get("runs", 5))
            if runs < 1:
                raise ValueError(f"runs must be >= 1, got {runs}")
            seed = int(payload.get("seed", 0))
            if not 0 <= seed <= _MAX_SEED:
                raise ValueError(f"seed must be in [0, 2**64), got {seed}")
            params = AssessmentParams(
                tolerance=tolerance,
                delta=(
                    None if payload.get("delta") is None else float(payload["delta"])
                ),
                runs=runs,
                seed=seed,
                interest=None if interest is None else frozenset(interest),
            )
            deadline = payload.get("deadline_seconds")
            budget = None if deadline is None else request_budget(float(deadline))
        except (
            ValueError,
            TypeError,
            KeyError,
            json.JSONDecodeError,
            ReproError,
        ) as exc:
            return _error(400, type(exc).__name__, str(exc))
        try:
            timeout = None if budget is None else budget.remaining_seconds()
            with self.admission.admitted(timeout_seconds=timeout):
                outcome = self.engine.assess_request(profile, params, budget=budget)
        except QueueFullError as exc:
            return _error(
                429,
                type(exc).__name__,
                str(exc),
                headers={"Retry-After": str(int(exc.retry_after + 0.5) or 1)},
            )
        except (AdmissionTimeout, CircuitOpenError) as exc:
            return _error(
                503,
                type(exc).__name__,
                str(exc),
                headers={"Retry-After": str(int(exc.retry_after + 0.5) or 1)},
            )
        except BudgetExceeded as exc:
            # The deadline expired before any rung produced even a
            # partial answer; tell the client to come back rather than
            # hanging or dropping the connection.
            return _error(
                503,
                type(exc).__name__,
                f"deadline expired before any result was ready ({exc})",
                headers={"Retry-After": "1"},
            )
        except ReproError as exc:
            return _error(422, type(exc).__name__, str(exc))
        except Exception as exc:
            # An unexpected failure (I/O fault, bug) must surface as a
            # structured 500, never as a dropped connection.
            self.engine.metrics.increment("http_500")
            return _error(500, type(exc).__name__, str(exc))
        return RouteResponse(
            200,
            {
                "fingerprint": outcome.fingerprint,
                "cached": outcome.cached,
                "elapsed_seconds": outcome.elapsed_seconds,
                "partial": outcome.assessment.partial,
                "assessment": assessment_to_json(outcome.assessment),
            },
        )

    def _crack_step(self, body: bytes | None) -> RouteResponse:
        """One ``POST /crack/step`` move against the solver session store."""
        metrics = self.engine.metrics
        try:
            payload = self._parse_body(body)
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            return _error(400, type(exc).__name__, str(exc))
        try:
            with metrics.timer("crack:step"):
                result = self.crack_sessions.step(payload)
        except ReproError as exc:
            return _error(422, type(exc).__name__, str(exc))
        except Exception as exc:
            metrics.increment("http_500")
            return _error(500, type(exc).__name__, str(exc))
        metrics.increment("crack_steps")
        return RouteResponse(200, result)

"""Deterministic fault injection for the service layer.

Crash-safety claims are only as good as the failures they were tested
against.  This module lets tests (and the ``repro-batch`` CLI, via
``--faults``) inject failures at named *sites* inside the service layer
on a deterministic schedule:

* ``error`` — raise a configurable exception (``OSError`` by default),
  modelling transient I/O failures;
* ``crash`` — raise :class:`InjectedCrash`, a :class:`BaseException`
  subclass that sails past ``except Exception`` handlers the way a
  ``kill -9`` sails past ``finally``-less cleanup, so tests can observe
  exactly what a died-mid-write process leaves on disk;
* ``delay`` — sleep for a fixed duration, for timeout and race testing;
* ``enospc`` — raise ``OSError(ENOSPC)``, modelling a full disk at a
  write site (the cache treats it as a survivable write error: the
  result is still answered, just not cached);
* ``fsync_error`` — raise ``OSError(EIO)``, modelling an fsync that
  reports the data never reached stable storage (fires naturally at
  ``cache.write.replace``, after the payload was written);
* ``torn_write`` — truncate the in-progress file at ``truncate_at``
  bytes and then crash, leaving exactly the half-written debris a
  power cut leaves (only path-aware sites — ``cache.write.*`` — can
  tear; elsewhere it degrades to a plain crash);
* ``clock_skew`` — no exception at all: firing adds ``skew_seconds``
  to the injector's clock skew, which :func:`clock_skew` exposes and
  the lease staleness judgement adds to every lease age, so tests can
  age a healthy owner's heartbeats into apparent staleness.

Instrumented sites
------------------

========================  ====================================================
site                      fired
========================  ====================================================
``cache.read``            before a disk-tier read in ``AssessmentCache``
``cache.write.tmp``       inside the temp file, before the JSON is written
``cache.write.replace``   after the temp file is durable, before ``os.replace``
``cache.lease``           before every ``*.lease`` acquisition attempt in the
                          shared cache tier (crash here ≈ a replica dying at
                          the moment it wins the cross-process race)
``cache.lease.state``     before every lease classification (``lease_state``);
                          an injected ``OSError`` exercises the
                          vanished-mid-stat fallback
``cache.lease.sweep``     between the staleness check and the unlink of each
                          stale lease in ``sweep_stale_leases`` (the TOCTOU
                          window against a releasing owner)
``cache.lease.takeover``  between the re-check and the unlink in
                          ``take_over``
``engine.compute``        at the top of every (serial or worker) computation
``pool.job``              at the start of every pool-worker job
``budget.poll``           every slow-path deadline check of a request
                          :class:`~repro.budget.ComputeBudget` (a ``delay``
                          rule here burns wall-clock deterministically, so
                          the *next* poll observes an expired deadline)
``checkpoint.write``      before each atomic batch-checkpoint write in
                          ``repro-batch --checkpoint``
``server.admission``      on every admission attempt at ``POST /assess``,
                          before queueing/shedding decisions
========================  ====================================================

A schedule is a list of :class:`FaultRule` objects.  Rules are matched
in order by :func:`fnmatch.fnmatch` pattern (``"cache.*"`` targets every
cache site); each rule keeps its own deterministic counters, so "fail
the first two writes, then succeed" is expressed as
``FaultRule(site="cache.write.*", action="error", times=2)``.

Usage::

    with injected_faults([FaultRule(site="engine.compute", action="error")]) as injector:
        ...                      # first compute raises OSError, rest succeed
    assert injector.events       # what actually fired, in order

Worker processes created by a *fork* start method inherit the installed
injector (with counter values as of the fork), which is how
``repro-batch --faults`` exercises the pool's retry path.
"""

from __future__ import annotations

import errno
import fnmatch
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Union

from repro.errors import FormatError, RecipeError, ReproError

__all__ = [
    "InjectedCrash",
    "FaultRule",
    "FaultEvent",
    "FaultInjector",
    "fault_point",
    "clock_skew",
    "install",
    "uninstall",
    "current",
    "injected_faults",
    "load_schedule",
]

PathLike = Union[str, Path]

ACTIONS = ("error", "crash", "delay", "enospc", "fsync_error", "torn_write", "clock_skew")

#: Exception types a rule may raise by name.  Deliberately small: the
#: service layer's retry logic classifies anything outside ReproError as
#: transient, and these cover both sides of that line.
#: ``FileNotFoundError`` is here for the lease sweep's TOCTOU window —
#: the file vanishing under the unlink is a failure mode, not a bug.
EXCEPTIONS = {
    "OSError": OSError,
    "FileNotFoundError": FileNotFoundError,
    "TimeoutError": TimeoutError,
    "ConnectionError": ConnectionError,
    "ValueError": ValueError,
    "FormatError": FormatError,
    "ReproError": ReproError,
    "RecipeError": RecipeError,
}


class InjectedCrash(BaseException):
    """A simulated hard crash (process death) at a fault point.

    Subclasses :class:`BaseException` on purpose: production code that
    catches ``Exception`` must not be able to "handle" a crash, because
    a real ``SIGKILL`` would not have given it the chance.  Whatever the
    crash leaves behind (orphan temp files, missing entries) is exactly
    what a post-crash process would find.
    """


@dataclass(frozen=True)
class FaultRule:
    """One deterministic entry of a failure schedule.

    Parameters
    ----------
    site:
        :func:`fnmatch.fnmatch` pattern matched against fault-point
        names (``"cache.write.replace"``, ``"cache.*"``, ``"*"``).
    action:
        ``"error"``, ``"crash"`` or ``"delay"``.
    times:
        Fire at most this many times (``None`` = every matching call).
    after:
        Let this many matching calls pass before the first firing.
    delay_seconds:
        Sleep duration for ``action="delay"``.
    exception:
        Exception type name (a key of :data:`EXCEPTIONS`) raised by
        ``action="error"``.
    message:
        Message of the raised exception.
    truncate_at:
        Byte offset for ``action="torn_write"``: the in-progress file is
        truncated here (clamped to its size) before the crash.
    skew_seconds:
        Clock skew added by each firing of ``action="clock_skew"``.
    """

    site: str
    action: str = "error"
    times: int | None = 1
    after: int = 0
    delay_seconds: float = 0.0
    exception: str = "OSError"
    message: str = "injected fault"
    truncate_at: int = 0
    skew_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )
        if self.exception not in EXCEPTIONS:
            raise ReproError(
                f"unknown fault exception {self.exception!r}; "
                f"expected one of {sorted(EXCEPTIONS)}"
            )
        if self.times is not None and self.times < 1:
            raise ReproError(f"fault 'times' must be >= 1 or null, got {self.times}")
        if self.after < 0:
            raise ReproError(f"fault 'after' must be >= 0, got {self.after}")
        if self.delay_seconds < 0:
            raise ReproError(
                f"fault 'delay_seconds' must be >= 0, got {self.delay_seconds}"
            )
        if self.truncate_at < 0:
            raise ReproError(
                f"fault 'truncate_at' must be >= 0, got {self.truncate_at}"
            )

    def matches(self, site: str) -> bool:
        return fnmatch.fnmatch(site, self.site)

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "FaultRule":
        if not isinstance(payload, dict) or "site" not in payload:
            raise FormatError(f"fault rule needs at least a 'site' key: {payload!r}")
        unknown = set(payload) - {
            "site", "action", "times", "after", "delay_seconds", "exception", "message",
            "truncate_at", "skew_seconds",
        }
        if unknown:
            raise FormatError(f"unknown fault rule key(s): {sorted(unknown)}")
        return cls(
            site=str(payload["site"]),
            action=str(payload.get("action", "error")),
            times=None if payload.get("times", 1) is None else int(payload.get("times", 1)),
            after=int(payload.get("after", 0)),
            delay_seconds=float(payload.get("delay_seconds", 0.0)),
            exception=str(payload.get("exception", "OSError")),
            message=str(payload.get("message", "injected fault")),
            truncate_at=int(payload.get("truncate_at", 0)),
            skew_seconds=float(payload.get("skew_seconds", 0.0)),
        )

    def to_json(self) -> dict[str, Any]:
        """The ``from_json``-shaped payload (for generated schedules)."""
        return {
            "site": self.site,
            "action": self.action,
            "times": self.times,
            "after": self.after,
            "delay_seconds": self.delay_seconds,
            "exception": self.exception,
            "message": self.message,
            "truncate_at": self.truncate_at,
            "skew_seconds": self.skew_seconds,
        }


@dataclass(frozen=True)
class FaultEvent:
    """One firing of a rule, recorded for post-hoc assertions."""

    site: str
    action: str
    rule_index: int


class FaultInjector:
    """A thread-safe, deterministic fault schedule.

    Every :meth:`fire` walks the rules in order; delays accumulate, the
    first firing ``error``/``crash`` rule raises.  Counters are per rule
    (not per site), so two rules with overlapping patterns schedule
    independently.
    """

    def __init__(self, rules: list[FaultRule] | None = None) -> None:
        self.rules = list(rules or [])
        self._lock = threading.Lock()
        self._seen = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        self._skew = 0.0
        self.events: list[FaultEvent] = []

    def fire(self, site: str, path: PathLike | None = None) -> None:
        """Apply the schedule at *site*; raises when a rule says so.

        *path*, passed by path-aware sites (``cache.write.*``,
        ``cache.lease.*``), is the file a ``torn_write`` rule mutilates.
        """
        raising: FaultRule | None = None
        delays: list[float] = []
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not rule.matches(site):
                    continue
                seen = self._seen[index]
                self._seen[index] += 1
                if seen < rule.after:
                    continue
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                self._fired[index] += 1
                self.events.append(
                    FaultEvent(site=site, action=rule.action, rule_index=index)
                )
                if rule.action == "delay":
                    delays.append(rule.delay_seconds)
                    continue
                if rule.action == "clock_skew":
                    self._skew += rule.skew_seconds
                    continue
                raising = rule
                break
        for delay in delays:
            time.sleep(delay)
        if raising is not None:
            if raising.action == "crash":
                raise InjectedCrash(f"injected crash at {site}")
            if raising.action == "torn_write":
                if path is not None:
                    _tear_file(path, raising.truncate_at)
                raise InjectedCrash(f"injected torn write at {site}")
            if raising.action == "enospc":
                raise OSError(
                    errno.ENOSPC, f"{raising.message} (injected at {site})"
                )
            if raising.action == "fsync_error":
                raise OSError(
                    errno.EIO, f"{raising.message} (injected at {site})"
                )
            raise EXCEPTIONS[raising.exception](
                f"{raising.message} (injected at {site})"
            )

    def skew_seconds(self) -> float:
        """Accumulated clock skew from every ``clock_skew`` firing so far."""
        with self._lock:
            return self._skew

    def fired(self, site_pattern: str = "*") -> int:
        """How many events matching *site_pattern* have fired so far."""
        with self._lock:
            return sum(
                1 for event in self.events if fnmatch.fnmatch(event.site, site_pattern)
            )

    def reset(self) -> None:
        """Rewind every counter and drop the event log."""
        with self._lock:
            self._seen = [0] * len(self.rules)
            self._fired = [0] * len(self.rules)
            self._skew = 0.0
            self.events.clear()


def _tear_file(path: PathLike, truncate_at: int) -> None:
    """Truncate *path* at *truncate_at* bytes (clamped; missing file is a no-op)."""
    target = Path(path)
    try:
        size = target.stat().st_size
        with open(target, "r+b") as handle:
            handle.truncate(min(truncate_at, size))
    except OSError:
        return  # nothing written yet, or the file vanished — plain crash


#: The process-wide active injector (inherited by forked pool workers).
_ACTIVE: FaultInjector | None = None
_INSTALL_LOCK = threading.Lock()


def install(injector: FaultInjector) -> FaultInjector:
    """Make *injector* the process-wide active schedule."""
    global _ACTIVE
    with _INSTALL_LOCK:
        if _ACTIVE is not None:
            raise ReproError("a fault injector is already installed")
        _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the active schedule (a no-op when none is installed)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = None


def current() -> FaultInjector | None:
    """The active injector, or ``None``."""
    return _ACTIVE


@contextmanager
def injected_faults(schedule: "PathLike | dict[str, Any] | list[dict[str, Any]]") -> Iterator[FaultInjector]:
    """Install a schedule for the duration of a ``with`` block.

    *schedule* is a :class:`FaultInjector`, a list of
    :class:`FaultRule`, or a ``{"rules": [...]}`` mapping.
    """
    if isinstance(schedule, FaultInjector):
        injector = schedule
    elif isinstance(schedule, dict):
        injector = load_schedule(schedule)
    else:
        injector = FaultInjector(list(schedule))
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


def fault_point(site: str, path: PathLike | None = None) -> None:
    """Declare an injectable site; free when no injector is installed.

    Path-aware sites pass the file being written so ``torn_write`` rules
    have something to tear.
    """
    injector = _ACTIVE
    if injector is not None:
        injector.fire(site, path=path)


def clock_skew() -> float:
    """Active injected clock skew in seconds (``0.0`` with no injector).

    Consumed by :func:`repro.service.lease.lease_state`: the skew is
    added to every lease age, so a schedule can make a healthy owner's
    heartbeats look stale without sleeping through the real window.
    """
    injector = _ACTIVE
    return injector.skew_seconds() if injector is not None else 0.0


def load_schedule(source: "PathLike | dict[str, Any] | list[dict[str, Any]]") -> FaultInjector:
    """Build an injector from ``{"rules": [...]}`` (a mapping or a JSON file)."""
    if isinstance(source, dict):
        payload = source
    else:
        from repro.io import load_json

        payload = load_json(source)
    rules = payload.get("rules")
    if not isinstance(rules, list):
        raise FormatError("fault schedule must be an object with a 'rules' list")
    return FaultInjector([FaultRule.from_json(rule) for rule in rules])

"""Deterministic fault injection for the service layer.

Crash-safety claims are only as good as the failures they were tested
against.  This module lets tests (and the ``repro-batch`` CLI, via
``--faults``) inject failures at named *sites* inside the service layer
on a deterministic schedule:

* ``error`` — raise a configurable exception (``OSError`` by default),
  modelling transient I/O failures;
* ``crash`` — raise :class:`InjectedCrash`, a :class:`BaseException`
  subclass that sails past ``except Exception`` handlers the way a
  ``kill -9`` sails past ``finally``-less cleanup, so tests can observe
  exactly what a died-mid-write process leaves on disk;
* ``delay`` — sleep for a fixed duration, for timeout and race testing.

Instrumented sites
------------------

========================  ====================================================
site                      fired
========================  ====================================================
``cache.read``            before a disk-tier read in ``AssessmentCache``
``cache.write.tmp``       inside the temp file, before the JSON is written
``cache.write.replace``   after the temp file is durable, before ``os.replace``
``cache.lease``           before every ``*.lease`` acquisition attempt in the
                          shared cache tier (crash here ≈ a replica dying at
                          the moment it wins the cross-process race)
``engine.compute``        at the top of every (serial or worker) computation
``pool.job``              at the start of every pool-worker job
``budget.poll``           every slow-path deadline check of a request
                          :class:`~repro.budget.ComputeBudget` (a ``delay``
                          rule here burns wall-clock deterministically, so
                          the *next* poll observes an expired deadline)
``checkpoint.write``      before each atomic batch-checkpoint write in
                          ``repro-batch --checkpoint``
``server.admission``      on every admission attempt at ``POST /assess``,
                          before queueing/shedding decisions
========================  ====================================================

A schedule is a list of :class:`FaultRule` objects.  Rules are matched
in order by :func:`fnmatch.fnmatch` pattern (``"cache.*"`` targets every
cache site); each rule keeps its own deterministic counters, so "fail
the first two writes, then succeed" is expressed as
``FaultRule(site="cache.write.*", action="error", times=2)``.

Usage::

    with injected_faults([FaultRule(site="engine.compute", action="error")]) as injector:
        ...                      # first compute raises OSError, rest succeed
    assert injector.events       # what actually fired, in order

Worker processes created by a *fork* start method inherit the installed
injector (with counter values as of the fork), which is how
``repro-batch --faults`` exercises the pool's retry path.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Union

from repro.errors import FormatError, RecipeError, ReproError

__all__ = [
    "InjectedCrash",
    "FaultRule",
    "FaultEvent",
    "FaultInjector",
    "fault_point",
    "install",
    "uninstall",
    "current",
    "injected_faults",
    "load_schedule",
]

PathLike = Union[str, Path]

ACTIONS = ("error", "crash", "delay")

#: Exception types a rule may raise by name.  Deliberately small: the
#: service layer's retry logic classifies anything outside ReproError as
#: transient, and these cover both sides of that line.
EXCEPTIONS = {
    "OSError": OSError,
    "TimeoutError": TimeoutError,
    "ConnectionError": ConnectionError,
    "ValueError": ValueError,
    "FormatError": FormatError,
    "ReproError": ReproError,
    "RecipeError": RecipeError,
}


class InjectedCrash(BaseException):
    """A simulated hard crash (process death) at a fault point.

    Subclasses :class:`BaseException` on purpose: production code that
    catches ``Exception`` must not be able to "handle" a crash, because
    a real ``SIGKILL`` would not have given it the chance.  Whatever the
    crash leaves behind (orphan temp files, missing entries) is exactly
    what a post-crash process would find.
    """


@dataclass(frozen=True)
class FaultRule:
    """One deterministic entry of a failure schedule.

    Parameters
    ----------
    site:
        :func:`fnmatch.fnmatch` pattern matched against fault-point
        names (``"cache.write.replace"``, ``"cache.*"``, ``"*"``).
    action:
        ``"error"``, ``"crash"`` or ``"delay"``.
    times:
        Fire at most this many times (``None`` = every matching call).
    after:
        Let this many matching calls pass before the first firing.
    delay_seconds:
        Sleep duration for ``action="delay"``.
    exception:
        Exception type name (a key of :data:`EXCEPTIONS`) raised by
        ``action="error"``.
    message:
        Message of the raised exception.
    """

    site: str
    action: str = "error"
    times: int | None = 1
    after: int = 0
    delay_seconds: float = 0.0
    exception: str = "OSError"
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )
        if self.exception not in EXCEPTIONS:
            raise ReproError(
                f"unknown fault exception {self.exception!r}; "
                f"expected one of {sorted(EXCEPTIONS)}"
            )
        if self.times is not None and self.times < 1:
            raise ReproError(f"fault 'times' must be >= 1 or null, got {self.times}")
        if self.after < 0:
            raise ReproError(f"fault 'after' must be >= 0, got {self.after}")
        if self.delay_seconds < 0:
            raise ReproError(
                f"fault 'delay_seconds' must be >= 0, got {self.delay_seconds}"
            )

    def matches(self, site: str) -> bool:
        return fnmatch.fnmatch(site, self.site)

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "FaultRule":
        if not isinstance(payload, dict) or "site" not in payload:
            raise FormatError(f"fault rule needs at least a 'site' key: {payload!r}")
        unknown = set(payload) - {
            "site", "action", "times", "after", "delay_seconds", "exception", "message",
        }
        if unknown:
            raise FormatError(f"unknown fault rule key(s): {sorted(unknown)}")
        return cls(
            site=str(payload["site"]),
            action=str(payload.get("action", "error")),
            times=None if payload.get("times", 1) is None else int(payload.get("times", 1)),
            after=int(payload.get("after", 0)),
            delay_seconds=float(payload.get("delay_seconds", 0.0)),
            exception=str(payload.get("exception", "OSError")),
            message=str(payload.get("message", "injected fault")),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One firing of a rule, recorded for post-hoc assertions."""

    site: str
    action: str
    rule_index: int


class FaultInjector:
    """A thread-safe, deterministic fault schedule.

    Every :meth:`fire` walks the rules in order; delays accumulate, the
    first firing ``error``/``crash`` rule raises.  Counters are per rule
    (not per site), so two rules with overlapping patterns schedule
    independently.
    """

    def __init__(self, rules: list[FaultRule] | None = None) -> None:
        self.rules = list(rules or [])
        self._lock = threading.Lock()
        self._seen = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        self.events: list[FaultEvent] = []

    def fire(self, site: str) -> None:
        """Apply the schedule at *site*; raises when a rule says so."""
        raising: FaultRule | None = None
        delays: list[float] = []
        with self._lock:
            for index, rule in enumerate(self.rules):
                if not rule.matches(site):
                    continue
                seen = self._seen[index]
                self._seen[index] += 1
                if seen < rule.after:
                    continue
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                self._fired[index] += 1
                self.events.append(
                    FaultEvent(site=site, action=rule.action, rule_index=index)
                )
                if rule.action == "delay":
                    delays.append(rule.delay_seconds)
                    continue
                raising = rule
                break
        for delay in delays:
            time.sleep(delay)
        if raising is not None:
            if raising.action == "crash":
                raise InjectedCrash(f"injected crash at {site}")
            raise EXCEPTIONS[raising.exception](
                f"{raising.message} (injected at {site})"
            )

    def fired(self, site_pattern: str = "*") -> int:
        """How many events matching *site_pattern* have fired so far."""
        with self._lock:
            return sum(
                1 for event in self.events if fnmatch.fnmatch(event.site, site_pattern)
            )

    def reset(self) -> None:
        """Rewind every counter and drop the event log."""
        with self._lock:
            self._seen = [0] * len(self.rules)
            self._fired = [0] * len(self.rules)
            self.events.clear()


#: The process-wide active injector (inherited by forked pool workers).
_ACTIVE: FaultInjector | None = None
_INSTALL_LOCK = threading.Lock()


def install(injector: FaultInjector) -> FaultInjector:
    """Make *injector* the process-wide active schedule."""
    global _ACTIVE
    with _INSTALL_LOCK:
        if _ACTIVE is not None:
            raise ReproError("a fault injector is already installed")
        _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the active schedule (a no-op when none is installed)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = None


def current() -> FaultInjector | None:
    """The active injector, or ``None``."""
    return _ACTIVE


@contextmanager
def injected_faults(schedule: "PathLike | dict[str, Any] | list[dict[str, Any]]") -> Iterator[FaultInjector]:
    """Install a schedule for the duration of a ``with`` block.

    *schedule* is a :class:`FaultInjector`, a list of
    :class:`FaultRule`, or a ``{"rules": [...]}`` mapping.
    """
    if isinstance(schedule, FaultInjector):
        injector = schedule
    elif isinstance(schedule, dict):
        injector = load_schedule(schedule)
    else:
        injector = FaultInjector(list(schedule))
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


def fault_point(site: str) -> None:
    """Declare an injectable site; free when no injector is installed."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire(site)


def load_schedule(source: "PathLike | dict[str, Any] | list[dict[str, Any]]") -> FaultInjector:
    """Build an injector from ``{"rules": [...]}`` (a mapping or a JSON file)."""
    if isinstance(source, dict):
        payload = source
    else:
        from repro.io import load_json

        payload = load_json(source)
    rules = payload.get("rules")
    if not isinstance(rules, list):
        raise FormatError("fault schedule must be an object with a 'rules' list")
    return FaultInjector([FaultRule.from_json(rule) for rule in rules])

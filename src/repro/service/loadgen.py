"""Replayable load harness for the serving stack (``repro-loadgen``).

Answers the question the engine benchmarks cannot: how many requests
per second does the *system* sustain, at what latency, under which
server flavor and replica topology?  The harness:

* generates fingerprint-skewed traffic — a seeded mix of small
  synthetic profiles sampled from a Zipf distribution, so a few
  fingerprints are hot (cache-friendly) and a long tail is cold, the
  shape real content-addressed caches see;
* launches real ``repro-serve`` subprocesses (threaded or ``--async``,
  1..N replicas, optionally sharing one ``--cache-dir`` in
  ``--shared-cache`` mode) and parses their startup banner for the
  bound port;
* drives them over real sockets with K concurrent keep-alive
  connections from a single-threaded asyncio client (one thread, so on
  a small host the measured difference between server flavors is the
  servers', not the client's);
* cross-checks its client-side percentiles against the server's own
  ``/metrics`` latency histograms and cache counters;
* appends one run record per (flavor × replicas × connections) cell to
  the tracked ``BENCH_service.json`` trajectory.

The same seed replays the same request sequence — per-connection
streams are seeded independently from ``(seed, connection index)``, so
a run is reproducible for any concurrency level.  ``--faults PATH`` is
forwarded to the servers, composing load with failure schedules.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import subprocess
import sys
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import repro
from repro.errors import ReproError
from repro.io import load_json, profile_to_json, save_json_atomic
from repro.data.database import FrequencyProfile
from repro.service.supervisor import ReplicaSupervisor, RestartPolicy

__all__ = [
    "WorkloadSpec",
    "CellResult",
    "ReplicaPool",
    "build_payloads",
    "run_cell",
    "run_shared_cache_trial",
    "append_trajectory",
]

_BANNER_MARKER = "listening on http://"


# -- workload ---------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """A replayable traffic description.

    ``profiles`` distinct fingerprints are ranked 1..M and sampled with
    probability proportional to ``rank ** -zipf_s`` — rank 1 is the hot
    head, the tail is cold.  ``runs=1`` and a generous tolerance keep a
    single cold compute in the low-millisecond range, so cells measure
    serving overhead rather than recipe depth.
    """

    profiles: int = 50
    items: int = 10
    zipf_s: float = 1.1
    tolerance: float = 0.8
    seed: int = 0


def synthetic_profile(index: int, items: int) -> FrequencyProfile:
    """A small deterministic profile, distinct per *index*.

    Counts are index-shifted so every profile hashes to a different
    fingerprint while staying structurally similar (same item count,
    similar group structure).
    """
    n_transactions = 1000
    counts = {
        item: 100 + 37 * ((item + index) % items) + (index % 7)
        for item in range(items)
    }
    return FrequencyProfile(counts, n_transactions)


def build_payloads(spec: WorkloadSpec) -> list[bytes]:
    """The pre-serialized ``POST /assess`` body for every fingerprint."""
    payloads = []
    for index in range(spec.profiles):
        body = {
            "profile": profile_to_json(synthetic_profile(index, spec.items)),
            "tolerance": spec.tolerance,
            "runs": 1,
            "seed": 0,
        }
        payloads.append(json.dumps(body, sort_keys=True).encode("utf-8"))
    return payloads


def _zipf_cumulative(count: int, s: float) -> list[float]:
    weights = [(rank + 1) ** -s for rank in range(count)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    return cumulative


def request_stream(
    spec: WorkloadSpec, connection_index: int
) -> Iterable[int]:
    """An endless, replayable stream of payload indices for one connection."""
    import bisect

    rng = random.Random(f"{spec.seed}:{connection_index}")
    cumulative = _zipf_cumulative(spec.profiles, spec.zipf_s)
    while True:
        yield bisect.bisect_left(cumulative, rng.random())


# -- server orchestration ---------------------------------------------------


class ReplicaPool:
    """N real ``repro-serve`` subprocesses behind a replica supervisor.

    The pool owns topology (flavor, cache flags, fault schedules) and
    delegates lifecycle to :class:`~repro.service.supervisor.
    ReplicaSupervisor`: ports are banner-parsed on first launch and
    pinned across restarts, shutdown escalates SIGTERM→SIGKILL.  Plain
    load runs never start the monitor (a dead replica stays dead, as
    before); chaos runs pass ``supervise=True`` and get automatic
    restart-with-backoff plus per-incarnation metric scraping.
    """

    def __init__(
        self,
        count: int = 1,
        flavor: str = "threaded",
        cache_dir: Path | None = None,
        shared: bool = False,
        max_inflight: int = 8,
        max_queue: int = 128,
        faults: str | None = None,
        startup_timeout: float = 20.0,
        lease_stale_seconds: float | None = None,
        supervise: bool = False,
        policy: RestartPolicy | None = None,
        seed: int = 0,
    ) -> None:
        if flavor not in ("threaded", "async"):
            raise ReproError(f"unknown server flavor {flavor!r}")
        self.flavor = flavor
        self.count = count
        self.cache_dir = cache_dir
        self.shared = shared
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.faults = faults
        self.startup_timeout = startup_timeout
        self.lease_stale_seconds = lease_stale_seconds
        self.supervise = supervise
        #: Per-replica fault-schedule overrides (chaos fault bursts);
        #: picked up by the replica's *next* incarnation.
        self._fault_overrides: dict[int, str] = {}
        self.supervisor = ReplicaSupervisor(
            self._launch_replica, count=count, policy=policy, seed=seed
        )

    @property
    def ports(self) -> list[int]:
        return self.supervisor.ports

    @property
    def processes(self) -> list[Any]:
        return list(self.supervisor.processes)

    def set_fault_override(self, index: int, schedule_path: str) -> None:
        """Arm replica *index*'s next incarnation with a fault schedule."""
        self._fault_overrides[index] = schedule_path

    def _serve_args(self, index: int, port: int) -> list[str]:
        args = [
            "--port", str(port),
            "--grace", "2",
            "--max-inflight", str(self.max_inflight),
            "--max-queue", str(self.max_queue),
        ]
        if self.flavor == "async":
            args.append("--async")
        if self.cache_dir is not None:
            args += ["--cache-dir", str(self.cache_dir)]
        if self.shared:
            args.append("--shared-cache")
        if self.lease_stale_seconds is not None:
            args += ["--lease-stale", str(self.lease_stale_seconds)]
        faults = self._fault_overrides.get(index, self.faults)
        if faults is not None:
            args += ["--faults", faults]
        return args

    def _launch_replica(
        self, index: int, incarnation: int, port_hint: int
    ) -> tuple[subprocess.Popen[str], int]:
        """Spawn one ``repro-serve`` and banner-parse its bound port.

        The first incarnation binds port 0 (ephemeral); restarts re-bind
        the replica's original port (``SO_REUSEADDR`` on both flavors),
        so clients keep one stable address per replica.
        """
        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        code = (
            "from repro.cli import serve_main; "
            f"raise SystemExit(serve_main({self._serve_args(index, port_hint)!r}))"
        )
        process = subprocess.Popen(
            [sys.executable, "-c", code],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        try:
            port = self._await_banner(process)
        except BaseException:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=5.0)
            if process.stdout is not None:
                process.stdout.close()
            raise
        return process, port

    def __enter__(self) -> "ReplicaPool":
        self.supervisor.start()
        if self.supervise:
            self.supervisor.start_monitor()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _await_banner(self, process: subprocess.Popen[str]) -> int:
        assert process.stdout is not None
        deadline = time.monotonic() + self.startup_timeout
        while True:
            if process.poll() is not None:
                raise ReproError(
                    f"server replica exited with {process.returncode} "
                    "before printing its banner"
                )
            line = process.stdout.readline()
            if _BANNER_MARKER in line:
                return int(line.rsplit(":", 1)[1].strip().rstrip("/"))
            if time.monotonic() > deadline:
                raise ReproError("timed out waiting for the server banner")

    def shutdown(self) -> None:
        self.supervisor.stop(grace_seconds=10.0)

    def metrics(self) -> list[dict[str, Any]]:
        """One ``GET /metrics`` snapshot per replica (blocking)."""
        snapshots = []
        for port in self.ports:
            connection = HTTPConnection("127.0.0.1", port, timeout=10.0)
            try:
                connection.request("GET", "/metrics")
                response = connection.getresponse()
                snapshots.append(json.loads(response.read()))
            finally:
                connection.close()
        return snapshots


# -- the asyncio client -----------------------------------------------------


@dataclass
class _ClientStats:
    latencies: list[float] = field(default_factory=list)
    statuses: dict[int, int] = field(default_factory=dict)
    errors: int = 0
    reconnects: int = 0


async def _close_quietly(writer: asyncio.StreamWriter) -> None:
    writer.close()
    try:
        await writer.wait_closed()
    except (OSError, ConnectionError):
        pass


async def _drive_connection(
    host: str,
    port: int,
    payloads: Sequence[bytes],
    indices: Iterable[int],
    stop_at: float,
    max_requests: int,
    stats: _ClientStats,
    record: Callable[[int, int, bytes], None] | None = None,
) -> None:
    """One keep-alive connection's closed loop: send, await, record.

    A replica dying mid-request — ``ConnectionResetError`` /
    ``BrokenPipeError`` on the write, a truncated or garbled response on
    the read, connection refused while it restarts — is an *event*, not
    the end of the run: the failure is counted in ``stats.errors``, the
    connection is re-opened (with a short capped backoff, counted in
    ``stats.reconnects``), and the unanswered request is re-sent.
    Assessments are deterministic and cached, so the retry is
    idempotent.  *record*, when given, sees ``(payload_index, status,
    body)`` for every completed response — the chaos verifier compares
    these against a fault-free oracle replay.
    """
    reader: asyncio.StreamReader | None = None
    writer: asyncio.StreamWriter | None = None
    sent = 0
    backoff = 0.02
    iterator = iter(indices)
    index: int | None = None
    try:
        while sent < max_requests and time.monotonic() < stop_at:
            if writer is None or reader is None:
                try:
                    reader, writer = await asyncio.open_connection(host, port)
                    backoff = 0.02
                except OSError:
                    # The replica is down (or restarting): back off a
                    # little, but never past the cell's own deadline.
                    stats.errors += 1
                    remaining = stop_at - time.monotonic()
                    if remaining <= 0:
                        return
                    await asyncio.sleep(min(backoff, remaining))
                    backoff = min(0.25, backoff * 2.0)
                    continue
            if index is None:
                try:
                    index = next(iterator)
                except StopIteration:
                    return
            body = payloads[index]
            head = (
                "POST /assess HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "\r\n"
            ).encode("latin-1")
            start = time.perf_counter()
            try:
                writer.write(head + body)
                await writer.drain()
                status, response_body = await _read_response(reader)
            except (OSError, asyncio.IncompleteReadError, ValueError):
                # Killed mid-request; re-send this index on a fresh
                # connection (the next loop iteration reconnects).
                stats.errors += 1
                stats.reconnects += 1
                await _close_quietly(writer)
                reader = writer = None
                continue
            stats.latencies.append(time.perf_counter() - start)
            stats.statuses[status] = stats.statuses.get(status, 0) + 1
            if record is not None:
                record(index, status, response_body)
            sent += 1
            index = None
    finally:
        if writer is not None:
            await _close_quietly(writer)


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
            break
    body = await reader.readexactly(length) if length else b""
    return status, body


# -- cells ------------------------------------------------------------------


@dataclass(frozen=True)
class CellResult:
    """One measured (flavor × replicas × connections) cell."""

    flavor: str
    replicas: int
    connections: int
    requests: int
    duration_seconds: float
    rps: float
    p50_ms: float
    p99_ms: float
    shed_rate: float
    cache_hit_ratio: float
    coalesce_count: int
    client_errors: int
    statuses: dict[int, int]
    reconnects: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "flavor": self.flavor,
            "replicas": self.replicas,
            "connections": self.connections,
            "requests": self.requests,
            "duration_seconds": round(self.duration_seconds, 4),
            "rps": round(self.rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "shed_rate": round(self.shed_rate, 5),
            "cache_hit_ratio": round(self.cache_hit_ratio, 5),
            "coalesce_count": self.coalesce_count,
            "client_errors": self.client_errors,
            "reconnects": self.reconnects,
            "statuses": {str(code): count for code, count in sorted(self.statuses.items())},
        }


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


async def _run_clients(
    ports: Sequence[int],
    payloads: Sequence[bytes],
    spec: WorkloadSpec,
    connections: int,
    duration_seconds: float,
    max_requests_per_connection: int,
) -> tuple[_ClientStats, float]:
    stats = _ClientStats()
    stop_at = time.monotonic() + duration_seconds
    start = time.perf_counter()
    await asyncio.gather(
        *(
            _drive_connection(
                "127.0.0.1",
                ports[worker % len(ports)],
                payloads,
                request_stream(spec, worker),
                stop_at,
                max_requests_per_connection,
                stats,
            )
            for worker in range(connections)
        )
    )
    return stats, time.perf_counter() - start


def _warm_cache(ports: Sequence[int], payloads: Sequence[bytes]) -> None:
    """One synchronous pass over every fingerprint against every replica."""
    for port in ports:
        connection = HTTPConnection("127.0.0.1", port, timeout=30.0)
        try:
            for body in payloads:
                connection.request(
                    "POST",
                    "/assess",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                connection.getresponse().read()
        finally:
            connection.close()


def run_cell(
    pool: ReplicaPool,
    spec: WorkloadSpec,
    connections: int,
    duration_seconds: float,
    max_requests_per_connection: int = 1_000_000,
    warm: bool = True,
) -> CellResult:
    """Drive one started pool at one concurrency level and measure it.

    With *warm* (the default for throughput cells) every fingerprint is
    assessed once per replica first, so the measured window is cache-hot
    and the number is serving overhead, not recipe compute.
    """
    payloads = build_payloads(spec)
    if warm:
        _warm_cache(pool.ports, payloads)
    stats, elapsed = asyncio.run(
        _run_clients(
            pool.ports,
            payloads,
            spec,
            connections,
            duration_seconds,
            max_requests_per_connection,
        )
    )
    requests = sum(stats.statuses.values())
    latencies = sorted(stats.latencies)
    shed = stats.statuses.get(429, 0)
    snapshots = pool.metrics()
    hits = sum(int(s["cache"]["hits"]) for s in snapshots)
    misses = sum(int(s["cache"]["misses"]) for s in snapshots)
    coalesced = sum(int(s["cache"]["coalesced"]) for s in snapshots)
    total_lookups = hits + misses
    return CellResult(
        flavor=pool.flavor,
        replicas=len(pool.ports),
        connections=connections,
        requests=requests,
        duration_seconds=elapsed,
        rps=requests / elapsed if elapsed > 0 else 0.0,
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p99_ms=_percentile(latencies, 0.99) * 1000.0,
        shed_rate=shed / requests if requests else 0.0,
        cache_hit_ratio=hits / total_lookups if total_lookups else 0.0,
        coalesce_count=coalesced,
        client_errors=stats.errors,
        statuses=dict(stats.statuses),
        reconnects=stats.reconnects,
    )


def run_shared_cache_trial(
    cache_dir: Path,
    spec: WorkloadSpec,
    replicas: int = 2,
    connections: int = 8,
    flavor: str = "threaded",
    duration_seconds: float = 5.0,
) -> dict[str, Any]:
    """Cold-start *replicas* processes on one cache directory and race them.

    Every fingerprint must be computed exactly once across the fleet —
    the lease protocol's acceptance gate.  Returns the trial record,
    including per-replica compute counts and the summed coalesce
    counters.
    """
    payloads = build_payloads(spec)
    with ReplicaPool(
        count=replicas, flavor=flavor, cache_dir=cache_dir, shared=True
    ) as pool:
        stats, elapsed = asyncio.run(
            _run_clients(
                pool.ports, payloads, spec, connections, duration_seconds,
                max_requests_per_connection=1_000_000,
            )
        )
        snapshots = pool.metrics()
    computed = [int(s["metrics"]["counters"].get("computed", 0)) for s in snapshots]
    lease_coalesced = sum(
        int(s["cache"].get("lease_coalesced", 0)) for s in snapshots
    )
    lease_acquired = sum(int(s["cache"].get("lease_acquired", 0)) for s in snapshots)
    artifacts = sorted(p.name for p in Path(cache_dir).glob("*.json"))
    requests = sum(stats.statuses.values())
    return {
        "flavor": flavor,
        "replicas": replicas,
        "connections": connections,
        "requests": requests,
        "rps": round(requests / elapsed, 2) if elapsed > 0 else 0.0,
        "fingerprints": spec.profiles,
        "computed_per_replica": computed,
        "computed_total": sum(computed),
        "lease_acquired": lease_acquired,
        "lease_coalesced": lease_coalesced,
        "artifacts": len(artifacts),
        "client_errors": stats.errors,
        "reconnects": stats.reconnects,
    }


# -- the tracked trajectory -------------------------------------------------


def append_trajectory(
    path: Path,
    cells: Sequence[CellResult],
    shared_cache: dict[str, Any] | None,
    label: str,
) -> dict[str, Any]:
    """Append one run record to ``BENCH_service.json`` (created if absent)."""
    try:
        report = load_json(path)
        if not isinstance(report, dict) or report.get("benchmark") != "bench_service":
            report = {"benchmark": "bench_service", "schema": 1, "trajectory": []}
    except (OSError, ReproError):
        report = {"benchmark": "bench_service", "schema": 1, "trajectory": []}
    record: dict[str, Any] = {
        "label": label,
        "version": repro.__version__,
        "cells": [cell.to_json() for cell in cells],
    }
    if shared_cache is not None:
        record["shared_cache"] = shared_cache
    trajectory = report.setdefault("trajectory", [])
    assert isinstance(trajectory, list)
    trajectory.append(record)
    save_json_atomic(report, path)
    return report

"""Process-pool fan-out for batched assessments.

Jobs travel to workers as plain JSON payloads (the :mod:`repro.io`
round-trip), so nothing non-picklable crosses the process boundary.
Each worker process keeps one module-level :class:`AssessmentEngine`, so
several jobs against the same release share its memoized intermediates
just like in the parent.

Determinism does not depend on scheduling: every job's RNG seed derives
from its request fingerprint, so a batch returns byte-identical JSON
with 1 worker or 4.  Exceptions are captured per job — a bad dataset
yields an errored :class:`BatchResult`, not a dead batch.

Fault tolerance: a job that fails with anything but a deterministic
:class:`~repro.errors.ReproError` is retried with exponential backoff
(``retries`` attempts beyond the first); retried jobs still produce
byte-identical results because their seeds are content-derived.  A
per-job wall-clock timeout (measured from submission) turns a hung job
into an errored result instead of a hung batch — the worker process is
left to finish in the background and the pool drains it on close.
Workers inherit any installed fault injector through the *fork* start
method, which is how crash/latency schedules reach the pool in tests
and ``repro-batch --faults``.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:
    from repro.service.engine import AssessmentEngine, BatchResult

from repro.data.database import FrequencyProfile
from repro.errors import ReproError
from repro.io import (
    assessment_from_json,
    assessment_to_json,
    profile_from_json,
    profile_to_json,
)
from repro.service.faults import fault_point
from repro.service.fingerprint import AssessmentParams

__all__ = ["run_batch", "preferred_context"]

#: Each pool worker reuses one engine (and its memoized intermediates)
#: across all jobs it is handed.
_WORKER_ENGINE: "AssessmentEngine | None" = None


def preferred_context() -> multiprocessing.context.BaseContext:
    """The cheapest available start method (fork where the OS allows)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


_JobPayload = tuple[int, str, dict[str, Any], dict[str, Any]]
_JobOutcome = tuple[int, str, "dict[str, Any] | None", "str | None", float, bool]


def _worker_assess(payload: _JobPayload) -> _JobOutcome:
    """Run one job inside a worker; never raises (except injected crashes).

    Returns ``(index, fingerprint, assessment_payload, error, elapsed,
    retryable)``; *retryable* distinguishes transient failures (worth a
    resubmission) from deterministic :class:`ReproError` rejections.
    """
    index, fingerprint, profile_payload, params_payload = payload
    start = time.perf_counter()
    try:
        fault_point("pool.job")
        global _WORKER_ENGINE
        if _WORKER_ENGINE is None:
            from repro.service.engine import AssessmentEngine

            _WORKER_ENGINE = AssessmentEngine()
        profile = profile_from_json(profile_payload)
        params = AssessmentParams.from_json(params_payload)
        outcome = _WORKER_ENGINE.assess_request(profile, params)
        return (
            index,
            outcome.fingerprint,
            assessment_to_json(outcome.assessment),
            None,
            time.perf_counter() - start,
            False,
        )
    except ReproError as exc:
        # Deterministic: the same inputs will fail the same way.
        return (
            index,
            fingerprint,
            None,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - start,
            False,
        )
    except Exception as exc:
        return (
            index,
            fingerprint,
            None,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - start,
            True,
        )


def run_batch(
    jobs: Sequence[tuple[int, FrequencyProfile, AssessmentParams, str]],
    workers: int,
    *,
    retries: int = 2,
    backoff_seconds: float = 0.05,
    timeout_seconds: float | None = None,
) -> "list[BatchResult]":
    """Execute ``(index, profile, params, fingerprint)`` jobs in a pool.

    Returns :class:`~repro.service.engine.BatchResult` objects in job
    order.  ``workers`` is clamped to the number of jobs.  Transient
    job failures are resubmitted up to *retries* times (backoff doubles
    per attempt); a job exceeding *timeout_seconds* from submission is
    reported as a ``TimeoutError`` result and abandoned (timeouts are
    not retried — the stuck attempt may still be holding its worker).
    """
    from repro.service.engine import BatchResult

    if workers < 1:
        raise ReproError(f"need at least one worker, got {workers}")
    if retries < 0:
        raise ReproError(f"retries must be >= 0, got {retries}")
    if not jobs:
        return []

    payloads = {
        index: (index, fingerprint, profile_to_json(profile), params.to_json())
        for index, profile, params, fingerprint in jobs
    }
    fingerprints = {index: fingerprint for index, _, _, fingerprint in jobs}
    job_order = [index for index, _, _, _ in jobs]
    attempts = {index: 0 for index in payloads}
    results: dict[int, BatchResult] = {}

    with ProcessPoolExecutor(
        max_workers=min(workers, len(payloads)), mp_context=preferred_context()
    ) as executor:
        pending: dict[Future[_JobOutcome], tuple[int, float | None]] = {}

        def submit(index: int) -> None:
            attempts[index] += 1
            deadline = (
                None
                if timeout_seconds is None
                else time.monotonic() + timeout_seconds
            )
            pending[executor.submit(_worker_assess, payloads[index])] = (
                index,
                deadline,
            )

        for index in job_order:
            submit(index)

        # repro-lint: disable-next-line=FS005 -- dispatcher loop is bounded by pending futures and enforces its own per-job deadline via wait(timeout)
        while pending:
            wait_timeout = None
            if timeout_seconds is not None:
                now = time.monotonic()
                nearest = min(
                    deadline for _, deadline in pending.values()
                    if deadline is not None
                )
                wait_timeout = max(0.0, nearest - now)
            done, _ = wait(set(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED)

            if not done:
                # Deadline expired for at least one job: fail it, leave
                # the worker to finish (or not) in the background.
                now = time.monotonic()
                for future, (index, deadline) in list(pending.items()):
                    if deadline is not None and deadline <= now:
                        del pending[future]
                        future.cancel()
                        results[index] = BatchResult(
                            index=index,
                            fingerprint=fingerprints[index],
                            assessment=None,
                            error=(
                                f"TimeoutError: job exceeded "
                                f"{timeout_seconds:g}s (attempt {attempts[index]})"
                            ),
                            cached=False,
                            elapsed_seconds=timeout_seconds,
                            attempts=attempts[index],
                        )
                continue

            for future in done:
                index, _ = pending.pop(future)
                try:
                    (
                        _,
                        fingerprint,
                        assessment_payload,
                        error,
                        elapsed,
                        retryable,
                    ) = future.result()
                except BaseException as exc:  # repro-lint: disable=FS002 -- the crash already killed the worker process; converting it to a failed slot IS the containment
                    # The worker died mid-job (e.g. an injected crash):
                    # surface it as a failed slot, never a dead batch.
                    results[index] = BatchResult(
                        index=index,
                        fingerprint=fingerprints[index],
                        assessment=None,
                        error=f"{type(exc).__name__}: {exc}",
                        cached=False,
                        elapsed_seconds=0.0,
                        attempts=attempts[index],
                    )
                    continue
                if error is not None and retryable and attempts[index] <= retries:
                    time.sleep(backoff_seconds * (2 ** (attempts[index] - 1)))
                    submit(index)
                    continue
                results[index] = BatchResult(
                    index=index,
                    fingerprint=fingerprint,
                    assessment=None
                    if assessment_payload is None
                    else assessment_from_json(assessment_payload),
                    error=error,
                    cached=False,
                    elapsed_seconds=elapsed,
                    attempts=attempts[index],
                )

    return [results[index] for index in job_order]

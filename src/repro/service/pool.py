"""Process-pool fan-out for batched assessments.

Jobs travel to workers as plain JSON payloads (the :mod:`repro.io`
round-trip), so nothing non-picklable crosses the process boundary.
Each worker process keeps one module-level :class:`AssessmentEngine`, so
several jobs against the same release share its memoized intermediates
just like in the parent.

Determinism does not depend on scheduling: every job's RNG seed derives
from its request fingerprint, so a batch returns byte-identical JSON
with 1 worker or 4.  Exceptions are captured per job — a bad dataset
yields an errored :class:`BatchResult`, not a dead batch.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.data.database import FrequencyProfile
from repro.errors import ReproError
from repro.io import (
    assessment_from_json,
    assessment_to_json,
    profile_from_json,
    profile_to_json,
)
from repro.service.fingerprint import AssessmentParams

__all__ = ["run_batch", "preferred_context"]

#: Each pool worker reuses one engine (and its memoized intermediates)
#: across all jobs it is handed.
_WORKER_ENGINE = None


def preferred_context() -> multiprocessing.context.BaseContext:
    """The cheapest available start method (fork where the OS allows)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _worker_assess(payload: tuple) -> tuple:
    """Run one job inside a worker; never raises."""
    index, fingerprint, profile_payload, params_payload = payload
    start = time.perf_counter()
    try:
        global _WORKER_ENGINE
        if _WORKER_ENGINE is None:
            from repro.service.engine import AssessmentEngine

            _WORKER_ENGINE = AssessmentEngine()
        profile = profile_from_json(profile_payload)
        params = AssessmentParams.from_json(params_payload)
        outcome = _WORKER_ENGINE.assess_request(profile, params)
        return (
            index,
            outcome.fingerprint,
            assessment_to_json(outcome.assessment),
            None,
            time.perf_counter() - start,
        )
    except Exception as exc:
        return (
            index,
            fingerprint,
            None,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - start,
        )


def run_batch(
    jobs: Sequence[tuple[int, FrequencyProfile, AssessmentParams, str]],
    workers: int,
) -> list:
    """Execute ``(index, profile, params, fingerprint)`` jobs in a pool.

    Returns :class:`~repro.service.engine.BatchResult` objects in job
    order.  ``workers`` is clamped to the number of jobs.
    """
    from repro.service.engine import BatchResult

    if workers < 1:
        raise ReproError(f"need at least one worker, got {workers}")
    payloads = [
        (index, fingerprint, profile_to_json(profile), params.to_json())
        for index, profile, params, fingerprint in jobs
    ]
    results: list[BatchResult] = []
    with ProcessPoolExecutor(
        max_workers=min(workers, len(payloads)), mp_context=preferred_context()
    ) as executor:
        for index, fingerprint, assessment_payload, error, elapsed in executor.map(
            _worker_assess, payloads
        ):
            results.append(
                BatchResult(
                    index=index,
                    fingerprint=fingerprint,
                    assessment=None
                    if assessment_payload is None
                    else assessment_from_json(assessment_payload),
                    error=error,
                    cached=False,
                    elapsed_seconds=elapsed,
                )
            )
    return results

"""Two-tier result cache keyed by request fingerprint.

Tier 1 is an in-memory LRU of :class:`RiskAssessment` objects; tier 2 is
an optional on-disk store of one JSON file per fingerprint, written with
the :mod:`repro.io` round-trip so cached decisions double as auditable
artifacts.  Disk entries carry :data:`repro.io.SCHEMA_VERSION`; a file
written by an older (or newer) format is discarded on read instead of
being deserialized into the wrong shape.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Union

from repro.errors import FormatError, ReproError
from repro.io import (
    SCHEMA_VERSION,
    assessment_from_json,
    assessment_to_json,
    load_json,
    save_json,
)
from repro.recipe.assess import RiskAssessment

__all__ = ["AssessmentCache"]

PathLike = Union[str, Path]


class AssessmentCache:
    """LRU memory cache with optional JSON disk persistence.

    Parameters
    ----------
    capacity:
        Maximum number of assessments held in memory; the least recently
        used entry is evicted first.
    directory:
        When given, every ``put`` also writes ``<fingerprint>.json``
        under it, and a memory miss falls through to disk — so a fresh
        process (or a pool worker) warm-starts from earlier runs.
    """

    def __init__(self, capacity: int = 256, directory: PathLike | None = None):
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.directory = None if directory is None else Path(directory)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, RiskAssessment] = OrderedDict()
        self._stats = {
            "hits": 0,
            "misses": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "evictions": 0,
            "invalidated": 0,
        }

    # -- lookup -----------------------------------------------------------

    def get(self, fingerprint: str) -> RiskAssessment | None:
        """The cached assessment for *fingerprint*, or ``None`` on a miss."""
        with self._lock:
            cached = self._memory.get(fingerprint)
            if cached is not None:
                self._memory.move_to_end(fingerprint)
                self._stats["hits"] += 1
                self._stats["memory_hits"] += 1
                return cached
        assessment = self._read_disk(fingerprint)
        with self._lock:
            if assessment is None:
                self._stats["misses"] += 1
                return None
            self._stats["hits"] += 1
            self._stats["disk_hits"] += 1
            self._store_memory(fingerprint, assessment)
            return assessment

    def put(self, fingerprint: str, assessment: RiskAssessment) -> None:
        """Insert (or refresh) an assessment under *fingerprint*."""
        with self._lock:
            self._store_memory(fingerprint, assessment)
        if self.directory is not None:
            save_json(
                {
                    "type": "cached_assessment",
                    "schema_version": SCHEMA_VERSION,
                    "fingerprint": fingerprint,
                    "assessment": assessment_to_json(assessment),
                },
                self._path(fingerprint),
            )

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._memory

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # -- management -------------------------------------------------------

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus current size and capacity."""
        with self._lock:
            return dict(
                self._stats,
                size=len(self._memory),
                capacity=self.capacity,
                persistent=self.directory is not None,
            )

    def clear(self, disk: bool = False) -> None:
        """Empty the memory tier (and, with ``disk=True``, the disk tier)."""
        with self._lock:
            self._memory.clear()
        if disk and self.directory is not None:
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)

    # -- internals --------------------------------------------------------

    def _store_memory(self, fingerprint: str, assessment: RiskAssessment) -> None:
        self._memory[fingerprint] = assessment
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self._stats["evictions"] += 1

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def _read_disk(self, fingerprint: str) -> RiskAssessment | None:
        if self.directory is None:
            return None
        path = self._path(fingerprint)
        if not path.exists():
            return None
        try:
            payload = load_json(path)
            if payload.get("type") != "cached_assessment":
                raise FormatError("not a cached assessment")
            version = payload.get("schema_version")
            if version != SCHEMA_VERSION:
                raise FormatError(f"schema version {version} != {SCHEMA_VERSION}")
            if payload.get("fingerprint") != fingerprint:
                raise FormatError("fingerprint mismatch")
            return assessment_from_json(payload["assessment"])
        except (ReproError, KeyError, TypeError, OSError):
            # A stale or corrupt artifact: invalidate rather than serve it.
            with self._lock:
                self._stats["invalidated"] += 1
            path.unlink(missing_ok=True)
            return None

"""Two-tier result cache keyed by request fingerprint.

Tier 1 is an in-memory LRU of :class:`RiskAssessment` objects; tier 2 is
an optional on-disk store of one JSON file per fingerprint, written with
the :mod:`repro.io` round-trip so cached decisions double as auditable
artifacts.  Disk entries carry :data:`repro.io.SCHEMA_VERSION`; a file
written by an older (or newer) format is discarded on read instead of
being deserialized into the wrong shape.

Durability and concurrency guarantees (see ``docs/service.md``,
"Failure semantics"):

* **Atomic disk writes** — entries are written to a same-directory temp
  file and moved into place with ``os.replace``; a reader (or a process
  restarted after a crash) can never observe a truncated artifact.
  Orphan ``*.tmp`` files left by a crash are swept — and counted as
  ``invalidated`` — the next time a cache opens the directory.
* **Single-flight lookups** — :meth:`get_or_compute` deduplicates
  concurrent requests for the same fingerprint: one thread computes (or
  reads disk), the rest wait on the in-flight result instead of racing
  through the memory-miss / disk-read gap.
* **Transient-read tolerance** — an ``OSError`` while reading the disk
  tier is a miss (counted in ``read_errors``), not a reason to delete
  the artifact; only structurally invalid entries are invalidated.
* **Cross-process single-flight** — with ``shared=True`` several replica
  processes can mount one directory: a cold fingerprint is computed by
  exactly one of them (whoever wins the ``<fingerprint>.lease`` file,
  see :mod:`repro.service.lease`), the rest poll the artifact path with
  backoff bounded by their own request deadline and count the artifact
  as ``coalesced`` when it lands.  A replica that dies mid-compute
  leaves a lease whose heartbeat goes quiet; waiters take it over once
  it is stale.
* **Commit log** — in shared mode every durably written artifact also
  appends one line (``<fingerprint> <pid>``) to ``commits.log`` in the
  cache directory, strictly *after* the atomic rename.  The chaos
  verifier proves "exactly one cold compute per fingerprint" from this
  log: a duplicate fingerprint is always a real single-flight violation,
  while a kill between rename and append merely leaves an artifact
  without a log line (benign).
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import FormatError, ReproError
from repro.io import (
    SCHEMA_VERSION,
    assessment_from_json,
    assessment_to_json,
    load_json,
    save_json_atomic,
)
from repro.recipe.assess import RiskAssessment
from repro.service.faults import fault_point
from repro.service.lease import (
    DEFAULT_STALE_AFTER,
    Lease,
    LeaseState,
    acquire_lease,
    lease_state,
    sweep_stale_leases,
    take_over,
)

__all__ = ["AssessmentCache", "COMMIT_LOG_NAME"]

PathLike = Union[str, Path]

#: Name of the shared tier's append-only compute commit log.
COMMIT_LOG_NAME = "commits.log"

#: A ``store`` predicate: return False to keep a result out of the cache
#: (deadline-degraded partials must never be served to later requests).
StorePredicate = Optional[Callable[[RiskAssessment], bool]]


class _Flight:
    """One in-flight lookup/computation other threads can wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: RiskAssessment | None = None
        self.error: BaseException | None = None


class AssessmentCache:
    """LRU memory cache with optional JSON disk persistence.

    Parameters
    ----------
    capacity:
        Maximum number of assessments held in memory; the least recently
        used entry is evicted first.
    directory:
        When given, every ``put`` also writes ``<fingerprint>.json``
        under it, and a memory miss falls through to disk — so a fresh
        process (or a pool worker) warm-starts from earlier runs.
    shared:
        Treat *directory* as a shared tier mounted by several replica
        processes: cold computations are single-flighted **across
        processes** through ``<fingerprint>.lease`` files (requires
        *directory*).
    lease_stale_seconds:
        How long a lease may go without a heartbeat before waiters
        consider its owner dead and take over (shared mode only).
    """

    def __init__(
        self,
        capacity: int = 256,
        directory: PathLike | None = None,
        shared: bool = False,
        lease_stale_seconds: float = DEFAULT_STALE_AFTER,
    ) -> None:
        if capacity < 1:
            raise ReproError(f"cache capacity must be >= 1, got {capacity}")
        if shared and directory is None:
            raise ReproError("a shared cache tier needs a directory to share")
        if lease_stale_seconds <= 0:
            raise ReproError(
                f"lease_stale_seconds must be > 0, got {lease_stale_seconds}"
            )
        self.capacity = int(capacity)
        self.directory = None if directory is None else Path(directory)
        self.shared = bool(shared)
        self.lease_stale_seconds = float(lease_stale_seconds)
        self._lock = threading.Lock()
        # Serializes disk mutations (atomic writes vs. clear's unlinks),
        # separate from _lock so slow I/O never blocks memory lookups.
        self._disk_lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self._memory: OrderedDict[str, RiskAssessment] = OrderedDict()
        self._stats = {
            "hits": 0,
            "misses": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "coalesced": 0,
            "evictions": 0,
            "invalidated": 0,
            "read_errors": 0,
            "write_errors": 0,
            "lease_acquired": 0,
            "lease_coalesced": 0,
            "lease_takeovers": 0,
            "lease_timeouts": 0,
            "stale_leases_swept": 0,
            "disk_commits": 0,
        }
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.recover_orphans()

    # -- lookup -----------------------------------------------------------

    def get(self, fingerprint: str) -> RiskAssessment | None:
        """The cached assessment for *fingerprint*, or ``None`` on a miss.

        Concurrent ``get`` calls for the same fingerprint share one disk
        read (single flight); a ``get`` arriving while another thread is
        computing the same fingerprint through :meth:`get_or_compute`
        waits for — and shares — that thread's result.
        """
        assessment, _ = self._lookup(fingerprint, compute=None)
        return assessment

    def get_or_compute(
        self, fingerprint: str, compute: Callable[[], RiskAssessment]
    ) -> tuple[RiskAssessment, str]:
        """Return the cached value or compute-and-insert it, single-flight.

        Exactly one thread runs *compute* per in-flight fingerprint;
        concurrent callers block and share the leader's result (or its
        exception — the request is deterministic, so theirs would have
        failed identically).  With ``shared=True`` the same guarantee
        extends across replica processes through the lease protocol.
        Returns ``(assessment, origin)`` with *origin* one of
        ``"memory"``, ``"disk"``, ``"coalesced"`` or ``"computed"``.
        """
        assessment, origin = self._lookup(fingerprint, compute=compute)
        return assessment, origin

    def compute_shared(
        self,
        fingerprint: str,
        compute: Callable[[], RiskAssessment],
        timeout_seconds: float | None = None,
        store: StorePredicate = None,
    ) -> tuple[RiskAssessment, str]:
        """Cross-process-coordinated compute for deadline-bearing requests.

        Deadline-bearing misses deliberately skip the in-process flight
        rendezvous (sharing another request's computation would mean
        inheriting someone else's deadline) — but they can still share
        the *artifact* another replica is producing: poll the disk path
        while a live lease exists, for at most *timeout_seconds*, then
        compute locally.  *store* decides whether the result enters the
        cache (partial results must stay out); waiters poll the artifact
        path, so a withheld partial simply lets the next waiter take the
        lease and try with its own budget.
        """
        with self._lock:
            cached = self._memory.get(fingerprint)
            if cached is not None:
                self._memory.move_to_end(fingerprint)
                self._stats["hits"] += 1
                self._stats["memory_hits"] += 1
                return cached, "memory"
        assessment = self._read_disk(fingerprint)
        if assessment is not None:
            with self._lock:
                self._stats["hits"] += 1
                self._stats["disk_hits"] += 1
                self._store_memory(fingerprint, assessment)
            return assessment, "disk"
        if not self.shared:
            with self._lock:
                self._stats["misses"] += 1
            assessment = compute()
            self._maybe_store(fingerprint, assessment, store)
            return assessment, "computed"
        deadline = (
            None if timeout_seconds is None else time.monotonic() + timeout_seconds
        )
        return self._shared_compute(fingerprint, compute, deadline, store)

    def put(self, fingerprint: str, assessment: RiskAssessment) -> None:
        """Insert (or refresh) an assessment under *fingerprint*.

        The disk write is atomic (temp file + ``os.replace``); an
        ``OSError`` there is tolerated — the entry stays served from
        memory and ``write_errors`` is incremented.
        """
        with self._lock:
            self._store_memory(fingerprint, assessment)
        self._write_disk(fingerprint, assessment)

    def __contains__(self, fingerprint: str) -> bool:
        """True when either tier holds *fingerprint*.

        Consults the disk tier too (a plain existence probe — a corrupt
        entry may report ``True`` until a ``get`` invalidates it), so
        callers never re-run an assessment that is already persisted.
        """
        with self._lock:
            if fingerprint in self._memory:
                return True
        if self.directory is None:
            return False
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # -- management -------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Hit/miss/eviction counters plus current size and capacity."""
        with self._lock:
            return dict(
                self._stats,
                size=len(self._memory),
                in_flight=len(self._flights),
                capacity=self.capacity,
                persistent=self.directory is not None,
            )

    def clear(self, disk: bool = False) -> None:
        """Empty the memory tier (and, with ``disk=True``, the disk tier).

        Also resets the hit/miss counters, so ``/metrics`` ratios after a
        clear describe the cleared cache rather than its previous life.
        Disk unlinks hold the same lock as writers, so a concurrent
        ``put`` either completes before the sweep (and is removed) or
        lands intact after it — never a torn state or an orphan temp
        file.
        """
        with self._lock:
            self._memory.clear()
            for key in self._stats:
                self._stats[key] = 0
        if disk and self.directory is not None:
            with self._disk_lock:
                for pattern in ("*.json", "*.tmp", "*.lease"):
                    for path in self.directory.glob(pattern):
                        path.unlink(missing_ok=True)
                self._commit_log_path().unlink(missing_ok=True)

    def recover_orphans(self) -> int:
        """Sweep crash leftovers in the directory; returns the count.

        Runs automatically when a cache opens its directory.  Two kinds
        of debris are removed: ``*.tmp`` files (writes that never
        committed — counted as ``invalidated``) and stale ``*.lease``
        files (crashed replicas — counted as ``stale_leases_swept``), so
        the first cold miss of a fresh process never waits out a dead
        owner's staleness window.
        """
        if self.directory is None:
            return 0
        removed = 0
        with self._disk_lock:
            for path in self.directory.glob("*.tmp"):
                path.unlink(missing_ok=True)
                removed += 1
            swept = sweep_stale_leases(self.directory, self.lease_stale_seconds)
        with self._lock:
            if removed:
                self._stats["invalidated"] += removed
            if swept:
                self._stats["stale_leases_swept"] += swept
        return removed + swept

    # -- internals --------------------------------------------------------

    def _lookup(
        self, fingerprint: str, compute: Callable[[], RiskAssessment] | None
    ) -> tuple[RiskAssessment | None, str]:
        while True:
            with self._lock:
                cached = self._memory.get(fingerprint)
                if cached is not None:
                    self._memory.move_to_end(fingerprint)
                    self._stats["hits"] += 1
                    self._stats["memory_hits"] += 1
                    return cached, "memory"
                flight = self._flights.get(fingerprint)
                if flight is None:
                    flight = _Flight()
                    self._flights[fingerprint] = flight
                    break  # this thread leads the flight
            # Follower: wait for the leader's result.
            flight.event.wait()
            if flight.error is not None:
                if compute is None:
                    # A plain probe doesn't inherit the leader's failure.
                    with self._lock:
                        self._stats["misses"] += 1
                    return None, "miss"
                raise flight.error
            if flight.value is not None:
                with self._lock:
                    self._stats["hits"] += 1
                    self._stats["coalesced"] += 1
                return flight.value, "coalesced"
            if compute is None:
                with self._lock:
                    self._stats["misses"] += 1
                return None, "miss"
            # The leader was a plain get() that missed; loop around and
            # lead a new flight to compute.
            continue

        try:
            assessment = self._read_disk(fingerprint)
            if assessment is not None:
                with self._lock:
                    self._stats["hits"] += 1
                    self._stats["disk_hits"] += 1
                    self._store_memory(fingerprint, assessment)
                origin = "disk"
            elif compute is None:
                with self._lock:
                    self._stats["misses"] += 1
                origin = "miss"
            elif self.shared:
                assessment, origin = self._shared_compute(
                    fingerprint, compute, deadline=None, store=None
                )
            else:
                with self._lock:
                    self._stats["misses"] += 1
                assessment = compute()
                self._maybe_store(fingerprint, assessment, store=None)
                origin = "computed"
            flight.value = assessment
            return assessment, origin
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(fingerprint, None)
            flight.event.set()

    def _store_memory(self, fingerprint: str, assessment: RiskAssessment) -> None:
        self._memory[fingerprint] = assessment
        self._memory.move_to_end(fingerprint)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self._stats["evictions"] += 1

    def _maybe_store(
        self, fingerprint: str, assessment: RiskAssessment, store: StorePredicate
    ) -> None:
        """Insert a computed result into both tiers unless *store* vetoes."""
        if store is not None and not store(assessment):
            return
        with self._lock:
            self._store_memory(fingerprint, assessment)
        self._write_disk(fingerprint, assessment)

    # -- cross-process single-flight (shared tier) ------------------------

    def _shared_compute(
        self,
        fingerprint: str,
        compute: Callable[[], RiskAssessment],
        deadline: float | None,
        store: StorePredicate,
    ) -> tuple[RiskAssessment, str]:
        """Lease-coordinated cold-path compute against the shared tier.

        Loop: poll the artifact (another replica may have finished),
        race for the lease, classify a held lease (live waiters back
        off; stale leases are taken over).  *deadline* — a
        ``time.monotonic`` instant — bounds how long a waiter backs off;
        past it the request computes locally, because answering late is
        worse than occasionally answering twice.
        """
        lease_path = self._lease_path(fingerprint)
        delay = 0.004
        first = True
        while True:
            if not first:
                assessment = self._read_disk(fingerprint)
                if assessment is not None:
                    with self._lock:
                        self._stats["hits"] += 1
                        self._stats["coalesced"] += 1
                        self._stats["lease_coalesced"] += 1
                        self._store_memory(fingerprint, assessment)
                    return assessment, "coalesced"
            first = False
            lease = acquire_lease(lease_path)
            if lease is None:
                state = lease_state(lease_path, self.lease_stale_seconds)
                if state.kind == LeaseState.STALE:
                    lease = take_over(lease_path, self.lease_stale_seconds)
                    if lease is not None:
                        with self._lock:
                            self._stats["lease_takeovers"] += 1
                elif state.kind == LeaseState.HELD:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        with self._lock:
                            self._stats["lease_timeouts"] += 1
                            self._stats["misses"] += 1
                        assessment = compute()
                        self._maybe_store(fingerprint, assessment, store)
                        return assessment, "computed"
                    time.sleep(delay if remaining is None else min(delay, remaining))
                    delay = min(delay * 2, 0.05)
                    continue
                # MISSING (owner released between our acquire attempt and
                # the stat) — loop around: the artifact is probably there.
            if lease is not None:
                with self._lock:
                    self._stats["lease_acquired"] += 1
                    self._stats["misses"] += 1
                return self._compute_with_lease(fingerprint, compute, lease, store)

    def _compute_with_lease(
        self,
        fingerprint: str,
        compute: Callable[[], RiskAssessment],
        lease: Lease,
        store: StorePredicate,
    ) -> tuple[RiskAssessment, str]:
        """Run *compute* while heartbeating the held *lease*.

        The artifact is durably written **before** the lease is
        released, so a waiter that observes a missing lease finds the
        artifact on its next poll.  An ordinary exception releases the
        lease (the computation is deterministic — a waiter retrying it
        will fail identically, but it must be free to try); an injected
        crash or any other ``BaseException`` leaves the lease behind,
        heartbeat silenced, exactly like a killed process, and recovery
        happens through stale takeover.
        """
        lease.start_heartbeat(max(0.05, self.lease_stale_seconds / 4.0))
        try:
            assessment = compute()
        except BaseException as exc:
            lease.stop_heartbeat()
            if isinstance(exc, Exception):
                lease.release()
            raise
        self._maybe_store(fingerprint, assessment, store)
        lease.release()
        return assessment, "computed"

    def _lease_path(self, fingerprint: str) -> Path:
        assert self.directory is not None  # shared mode requires a directory
        return self.directory / f"{fingerprint}.lease"

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def _write_disk(self, fingerprint: str, assessment: RiskAssessment) -> bool:
        if self.directory is None:
            return False
        payload = {
            "type": "cached_assessment",
            "schema_version": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "assessment": assessment_to_json(assessment),
        }
        try:
            with self._disk_lock:
                save_json_atomic(
                    payload,
                    self._path(fingerprint),
                    fault_point=lambda stage, tmp: fault_point(
                        f"cache.write.{stage}", path=tmp
                    ),
                )
        except OSError:
            # The memory tier still serves this entry; a flaky disk must
            # not take the request down.
            with self._lock:
                self._stats["write_errors"] += 1
            return False
        if self.shared:
            self._log_commit(fingerprint)
        return True

    def _commit_log_path(self) -> Path:
        assert self.directory is not None  # shared mode requires a directory
        return self.directory / COMMIT_LOG_NAME

    def _log_commit(self, fingerprint: str) -> None:
        """Durably record that this process committed *fingerprint*.

        One ``O_APPEND`` line (``<fingerprint> <pid>``, well under
        ``PIPE_BUF`` so the append is atomic) written only **after**
        :func:`save_json_atomic` returned.  The ordering is the whole
        point: a log entry implies the artifact was already on disk, so
        any later cold path would have found it — a fingerprint
        appearing twice therefore means two processes both computed and
        both committed, a genuine single-flight violation.  The converse
        crash window (artifact written, process killed before the
        append) leaves an artifact without a log line, which is benign.
        The chaos verifier (:mod:`repro.service.verify`) reads this log
        post-mortem.
        """
        line = f"{fingerprint} {os.getpid()}\n".encode("ascii")
        try:
            fd = os.open(
                self._commit_log_path(),
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError:
            with self._lock:
                self._stats["write_errors"] += 1
            return
        with self._lock:
            self._stats["disk_commits"] += 1

    def _read_disk(self, fingerprint: str) -> RiskAssessment | None:
        if self.directory is None:
            return None
        path = self._path(fingerprint)
        try:
            fault_point("cache.read")
            payload = load_json(path)
        except FileNotFoundError:
            return None
        except OSError:
            # Transient I/O failure: a miss, but never grounds to delete
            # a (possibly fine) persisted decision.
            with self._lock:
                self._stats["read_errors"] += 1
            return None
        except FormatError:
            return self._invalidate(path)
        try:
            if payload.get("type") != "cached_assessment":
                raise FormatError("not a cached assessment")
            version = payload.get("schema_version")
            if version != SCHEMA_VERSION:
                raise FormatError(f"schema version {version} != {SCHEMA_VERSION}")
            if payload.get("fingerprint") != fingerprint:
                raise FormatError("fingerprint mismatch")
            return assessment_from_json(payload["assessment"])
        except (ReproError, KeyError, TypeError, ValueError):
            # A stale or corrupt artifact: invalidate rather than serve it.
            return self._invalidate(path)

    def _invalidate(self, path: Path) -> None:
        with self._lock:
            self._stats["invalidated"] += 1
        with self._disk_lock:
            path.unlink(missing_ok=True)
        return None

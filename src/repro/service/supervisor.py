"""Replica lifecycle management: restart what dies, report what loops.

The load harness (:mod:`repro.service.loadgen`) launches N real
``repro-serve`` subprocesses; the chaos harness
(:mod:`repro.service.chaos`) additionally kills them mid-run and
expects the fleet to heal.  This module owns that lifecycle:

* :class:`ReplicaSupervisor` polls every replica (``tick``), restarts a
  dead one after an exponential backoff with deterministic jitter, and
  re-binds the replica's *original* port (both server flavors set
  ``SO_REUSEADDR``), so clients keep a fixed address per replica and
  simply reconnect.
* A replica that dies ``crash_loop_threshold`` times within
  ``crash_loop_window_seconds`` is declared a **crash loop**: the
  supervisor gives up on it and records a structured report instead of
  burning restarts forever.
* :meth:`ReplicaSupervisor.stop` escalates: ``SIGTERM`` to every live
  replica, a bounded grace wait, then ``SIGKILL`` for stragglers
  (counted in the ``sigkill_escalations`` metric).
* Liveness is also probed over HTTP (``GET /healthz``) and ``/metrics``
  snapshots are scraped per *(replica, incarnation)* — the last-known
  snapshot of a killed incarnation is exactly what the chaos verifier
  reconciles against, since a ``kill -9`` takes the live counters with
  it.

Time is injected (``clock`` + ``sleep``) so backoff and crash-loop
windows unit-test against a fake clock; the background monitor thread
(:meth:`start_monitor`) is only used for real wall-clock runs.

Supervisor state is observable three ways: :meth:`status` (a JSON-able
report), the ``restarts`` / ``crash_loops`` / ``replica_deaths`` /
``sigkill_escalations`` counters and per-replica uptime gauges on
:attr:`metrics`, and — for external tooling — a tiny HTTP endpoint
(:meth:`start_metrics_server`) serving both under ``GET /metrics``.
"""

from __future__ import annotations

import json
import random
import subprocess
import threading
import time
from dataclasses import dataclass, field
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Protocol

from repro.errors import ReproError
from repro.service.metrics import ServiceMetrics

__all__ = [
    "RestartPolicy",
    "ReplicaSupervisor",
    "SupervisedProcess",
    "backoff_delay",
]


class SupervisedProcess(Protocol):
    """What the supervisor needs from a replica process handle.

    ``subprocess.Popen`` satisfies this; unit tests substitute fakes.
    """

    def poll(self) -> int | None: ...

    def wait(self, timeout: float | None = None) -> int: ...

    def send_signal(self, sig: int) -> None: ...

    def kill(self) -> None: ...


#: (replica_index, incarnation, port_hint) -> (process, bound_port).
#: ``port_hint`` is 0 for the first incarnation (bind an ephemeral
#: port) and the previously bound port on restarts.
Launcher = Callable[[int, int, int], "tuple[SupervisedProcess, int]"]


@dataclass(frozen=True)
class RestartPolicy:
    """When and how fast dead replicas come back.

    Restart delay for the k-th consecutive failure is
    ``min(max_delay, initial_delay * backoff_factor**k)`` plus a
    deterministic jitter of up to ``jitter_fraction`` of the delay
    (seeded per *(seed, replica, incarnation)* so two replicas dying
    together do not restart in lockstep, yet the same chaos seed
    replays the same timings).
    """

    initial_delay_seconds: float = 0.05
    max_delay_seconds: float = 2.0
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.25
    crash_loop_window_seconds: float = 10.0
    crash_loop_threshold: int = 5
    health_timeout_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.initial_delay_seconds <= 0 or self.max_delay_seconds <= 0:
            raise ReproError("restart delays must be > 0")
        if self.backoff_factor < 1.0:
            raise ReproError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ReproError("jitter_fraction must be within [0, 1]")
        if self.crash_loop_threshold < 2:
            raise ReproError("crash_loop_threshold must be >= 2")


def backoff_delay(
    policy: RestartPolicy, failures: int, seed: int, replica: int, incarnation: int
) -> float:
    """The jittered restart delay after *failures* consecutive deaths."""
    base = min(
        policy.max_delay_seconds,
        policy.initial_delay_seconds * policy.backoff_factor ** max(0, failures - 1),
    )
    rng = random.Random(f"supervisor:{seed}:{replica}:{incarnation}")
    return base * (1.0 + policy.jitter_fraction * rng.random())


@dataclass
class _ReplicaState:
    index: int
    process: SupervisedProcess | None = None
    port: int = 0
    incarnation: int = 0
    status: str = "stopped"  # stopped | running | backoff | crash_loop
    started_at: float = 0.0
    next_restart_at: float = 0.0
    consecutive_failures: int = 0
    death_times: list[float] = field(default_factory=list)
    deaths: int = 0
    last_returncode: int | None = None


class ReplicaSupervisor:
    """Keep *count* replicas alive behind stable ports.

    Parameters
    ----------
    launcher:
        Spawns one replica: ``launcher(index, incarnation, port_hint)``
        returns the process handle and its bound port.  Raising is a
        failed start — counted like a death and retried with backoff.
    count:
        How many replicas to supervise.
    policy:
        Backoff / crash-loop parameters.
    seed:
        Jitter seed (chaos passes its run seed through, so restart
        timings replay).
    clock / sleep:
        Injectable time source, for deterministic unit tests.
    """

    def __init__(
        self,
        launcher: Launcher,
        count: int,
        policy: RestartPolicy | None = None,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if count < 1:
            raise ReproError(f"supervisor needs >= 1 replica, got {count}")
        self.launcher = launcher
        self.count = count
        self.policy = policy if policy is not None else RestartPolicy()
        self.seed = seed
        self.clock = clock
        self.sleep = sleep
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._lock = threading.RLock()
        self._replicas = [_ReplicaState(index) for index in range(count)]
        self._stopping = False
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        self._metrics_http: ThreadingHTTPServer | None = None
        #: Last-known ``GET /metrics`` payload per (replica, incarnation);
        #: the chaos verifier reconciles summed counters from these.
        self.metric_snapshots: dict[tuple[int, int], dict[str, Any]] = {}

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "ReplicaSupervisor":
        """Launch every replica (first incarnations, ephemeral ports)."""
        try:
            for state in self._replicas:
                self._launch(state)
        except BaseException:
            self.stop()
            raise
        return self

    def __enter__(self) -> "ReplicaSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _launch(self, state: _ReplicaState) -> None:
        incarnation = state.incarnation + 1
        process, port = self.launcher(state.index, incarnation, state.port)
        with self._lock:
            if self._stopping:
                # stop() won the race against a relaunch decided just
                # before it took the lock: don't leak the new process.
                process.kill()
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    pass
                stdout = getattr(process, "stdout", None)
                if stdout is not None:
                    stdout.close()
                return
            state.process = process
            state.port = port
            state.incarnation = incarnation
            state.status = "running"
            state.started_at = self.clock()
            if incarnation > 1:
                self.metrics.increment("restarts")
            self.metrics.set_gauge(f"replica{state.index}_uptime_seconds", 0.0)

    @property
    def ports(self) -> list[int]:
        with self._lock:
            return [state.port for state in self._replicas]

    @property
    def processes(self) -> list[SupervisedProcess]:
        with self._lock:
            return [
                state.process
                for state in self._replicas
                if state.process is not None
            ]

    def port_of(self, index: int) -> int:
        with self._lock:
            return self._replicas[index].port

    # -- supervision ------------------------------------------------------

    def tick(self, now: float | None = None) -> None:
        """One supervision pass: detect deaths, schedule/run restarts.

        Pure bookkeeping against the injected clock; the monitor thread
        calls it periodically, tests call it directly.
        """
        now = self.clock() if now is None else now
        with self._lock:
            if self._stopping:
                return
            states = list(self._replicas)
        for state in states:
            self._tick_replica(state, now)

    def _tick_replica(self, state: _ReplicaState, now: float) -> None:
        with self._lock:
            if state.status == "running":
                process = state.process
                returncode = None if process is None else process.poll()
                if returncode is None:
                    uptime = max(0.0, now - state.started_at)
                    self.metrics.set_gauge(
                        f"replica{state.index}_uptime_seconds", uptime
                    )
                    # A full crash-loop window of health means the
                    # earlier deaths were transient: restart fast again.
                    if uptime > self.policy.crash_loop_window_seconds:
                        state.consecutive_failures = 0
                    return
                self._record_death(state, now, returncode)
            if state.status == "backoff" and now >= state.next_restart_at:
                relaunch = True
            else:
                relaunch = False
        if relaunch:
            try:
                self._launch(state)
            except Exception:
                with self._lock:
                    state.consecutive_failures += 1
                    self._schedule_restart(state, self.clock())

    def _record_death(self, state: _ReplicaState, now: float, returncode: int) -> None:
        """Called under the lock when a running replica is found dead."""
        state.last_returncode = returncode
        state.deaths += 1
        state.consecutive_failures += 1
        state.death_times.append(now)
        self.metrics.increment("replica_deaths")
        self.metrics.set_gauge(f"replica{state.index}_uptime_seconds", 0.0)
        window = self.policy.crash_loop_window_seconds
        state.death_times = [t for t in state.death_times if now - t <= window]
        if len(state.death_times) >= self.policy.crash_loop_threshold:
            state.status = "crash_loop"
            state.process = None
            self.metrics.increment("crash_loops")
            return
        self._schedule_restart(state, now)

    def _schedule_restart(self, state: _ReplicaState, now: float) -> None:
        state.status = "backoff"
        state.process = None
        state.next_restart_at = now + backoff_delay(
            self.policy,
            state.consecutive_failures,
            self.seed,
            state.index,
            state.incarnation,
        )

    def mark_recovered(self, index: int) -> None:
        """Reset the consecutive-failure counter (e.g. after a health probe)."""
        with self._lock:
            self._replicas[index].consecutive_failures = 0

    # -- fault delivery (chaos uses these; they are just signals) ---------

    def kill(self, index: int) -> bool:
        """``SIGKILL`` replica *index*; the next tick restarts it."""
        with self._lock:
            process = self._replicas[index].process
            alive = process is not None and process.poll() is None
            if alive and process is not None:
                process.kill()
                self.metrics.increment("kills_delivered")
        return alive

    def terminate(self, index: int) -> bool:
        """``SIGTERM`` replica *index* (graceful drain, then restart)."""
        import signal as _signal

        with self._lock:
            process = self._replicas[index].process
            alive = process is not None and process.poll() is None
            if alive and process is not None:
                process.send_signal(_signal.SIGTERM)
                self.metrics.increment("terms_delivered")
        return alive

    # -- health probing and metric scraping -------------------------------

    def probe_health(self, index: int, timeout: float = 2.0) -> bool:
        """``GET /healthz`` against replica *index*; False on any failure."""
        port = self.port_of(index)
        if port <= 0:
            return False
        connection = HTTPConnection("127.0.0.1", port, timeout=timeout)
        try:
            connection.request("GET", "/healthz")
            healthy = connection.getresponse().status == 200
        except (OSError, ValueError):
            healthy = False
        finally:
            connection.close()
        if not healthy:
            self.metrics.increment("health_probe_failures")
        return healthy

    def await_healthy(self, timeout: float | None = None) -> bool:
        """Block until every running replica answers ``/healthz``."""
        deadline = self.clock() + (
            self.policy.health_timeout_seconds if timeout is None else timeout
        )
        while True:
            if all(self.probe_health(index) for index in range(self.count)):
                return True
            if self.clock() >= deadline:
                return False
            self.sleep(0.05)

    def scrape_metrics(self, index: int, timeout: float = 2.0) -> dict[str, Any] | None:
        """``GET /metrics`` for replica *index*, recorded per incarnation.

        The retained snapshot is the *last known* state of that
        incarnation — after a ``kill -9`` it is all that remains of the
        replica's counters, which is why the chaos verifier treats
        summed metrics as a lower bound rather than an exact ledger.
        """
        with self._lock:
            state = self._replicas[index]
            port, incarnation = state.port, state.incarnation
        if port <= 0:
            return None
        connection = HTTPConnection("127.0.0.1", port, timeout=timeout)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            if response.status != 200:
                return None
            payload: dict[str, Any] = json.loads(response.read())
        except (OSError, ValueError):
            return None
        finally:
            connection.close()
        with self._lock:
            self.metric_snapshots[(index, incarnation)] = payload
        return payload

    def scrape_all(self) -> None:
        for index in range(self.count):
            self.scrape_metrics(index)

    # -- the monitor thread -----------------------------------------------

    def start_monitor(
        self, interval_seconds: float = 0.1, scrape_every: int = 5
    ) -> None:
        """Tick in a daemon thread; every *scrape_every* ticks also scrape."""

        def run() -> None:
            ticks = 0
            while not self._monitor_stop.wait(interval_seconds):
                self.tick()
                ticks += 1
                if scrape_every > 0 and ticks % scrape_every == 0:
                    self.scrape_all()

        with self._lock:
            if self._monitor is not None:
                return
            self._monitor_stop.clear()
            self._monitor = threading.Thread(
                target=run, name="replica-supervisor", daemon=True
            )
            self._monitor.start()

    def stop_monitor(self) -> None:
        with self._lock:
            monitor, self._monitor = self._monitor, None
        if monitor is not None:
            self._monitor_stop.set()
            monitor.join(timeout=5.0)

    # -- shutdown ---------------------------------------------------------

    def stop(self, grace_seconds: float = 10.0) -> None:
        """SIGTERM every live replica, wait *grace_seconds*, SIGKILL the rest."""
        import signal as _signal

        self.stop_monitor()
        self.stop_metrics_server()
        with self._lock:
            self._stopping = True
            states = list(self._replicas)
        for state in states:
            process = state.process
            if process is not None and process.poll() is None:
                process.send_signal(_signal.SIGTERM)
        for state in states:
            process = state.process
            if process is None:
                continue
            try:
                process.wait(timeout=grace_seconds)
            except subprocess.TimeoutExpired:
                process.kill()
                self.metrics.increment("sigkill_escalations")
                process.wait(timeout=5.0)
            stdout = getattr(process, "stdout", None)
            if stdout is not None:
                stdout.close()
            with self._lock:
                state.status = "stopped"
                state.process = None

    # -- reporting --------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """A JSON-able structured report of the whole fleet."""
        now = self.clock()
        with self._lock:
            replicas = [
                {
                    "index": state.index,
                    "status": state.status,
                    "port": state.port,
                    "incarnation": state.incarnation,
                    "deaths": state.deaths,
                    "last_returncode": state.last_returncode,
                    "uptime_seconds": (
                        round(max(0.0, now - state.started_at), 3)
                        if state.status == "running"
                        else 0.0
                    ),
                }
                for state in self._replicas
            ]
        return {
            "replicas": replicas,
            "restarts": self.metrics.counter("restarts"),
            "crash_loops": self.metrics.counter("crash_loops"),
            "replica_deaths": self.metrics.counter("replica_deaths"),
            "sigkill_escalations": self.metrics.counter("sigkill_escalations"),
        }

    def crash_loop_reports(self) -> list[dict[str, Any]]:
        """Structured give-up reports for every crash-looping replica."""
        with self._lock:
            return [
                {
                    "index": state.index,
                    "port": state.port,
                    "incarnation": state.incarnation,
                    "deaths_in_window": len(state.death_times),
                    "window_seconds": self.policy.crash_loop_window_seconds,
                    "threshold": self.policy.crash_loop_threshold,
                    "last_returncode": state.last_returncode,
                }
                for state in self._replicas
                if state.status == "crash_loop"
            ]

    # -- the /metrics endpoint --------------------------------------------

    def start_metrics_server(self, port: int = 0) -> int:
        """Serve supervisor state over HTTP; returns the bound port.

        ``GET /metrics`` answers ``{"supervisor": status(), "metrics":
        metrics.snapshot()}``; anything else is 404.  One endpoint for
        the whole fleet — replicas keep their own ``/metrics``.
        """
        supervisor = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, format: str, *args: object) -> None:
                pass

            def do_GET(self) -> None:
                if self.path != "/metrics":
                    self.send_response(404)
                    self.send_header("Content-Length", "0")
                    self.end_headers()
                    return
                body = json.dumps(
                    {
                        "supervisor": supervisor.status(),
                        "metrics": supervisor.metrics.snapshot(),
                    },
                    sort_keys=True,
                ).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        with self._lock:
            if self._metrics_http is not None:
                return self._metrics_http.server_address[1]
            server = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
            server.daemon_threads = True
            self._metrics_http = server
        threading.Thread(
            target=server.serve_forever, name="supervisor-metrics", daemon=True
        ).start()
        return server.server_address[1]

    def stop_metrics_server(self) -> None:
        with self._lock:
            server, self._metrics_http = self._metrics_http, None
        if server is not None:
            server.shutdown()
            server.server_close()

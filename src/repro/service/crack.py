"""Server-side sessions for the streaming attacker workbench.

``POST /crack/step`` is the HTTP face of
:class:`~repro.attack.solver.ConsistencySolver`: a client opens a
session by posting an ``instance`` and then streams observations into
it, receiving the newly decided edges after every step.  The
:class:`CrackSessionStore` keeps the live solvers, lock-guarded and
LRU-bounded so an abandoned stream cannot pin memory forever.

One request shape serves both moves::

    {"instance": {"adjacency": [[0], [0, 1]]},   # open (first call only)
     "session": "crack-3",                        # continue (later calls)
     "observations": [{"kind": "confirm", "item": 0, "anon": 0}]}

An ``instance`` is either an explicit ``adjacency`` (with optional
``observed`` frequencies, ``truth`` permutation and ``degree_k``) or a
serialized frequency ``profile`` plus interval half-width ``delta`` —
the latter builds the same belief/space the assessment pipeline
analyzes, ground truth included, so ``forced`` events carry ``crack``
flags.  The reply carries the session id, the JSONL-shaped events, the
running summary, and ``closed`` once a ``{"kind": "close"}`` arrives
(which also retires the session).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Mapping, Sequence

from repro.attack.solver import ConsistencySolver, Observation, solver_from_space
from repro.beliefs.builders import uniform_width_belief
from repro.budget import ComputeBudget
from repro.errors import SolverError
from repro.graph.bipartite import space_from_frequencies
from repro.io import profile_from_json

__all__ = ["CrackSessionStore", "solver_from_instance"]

#: Session cap: opening one more evicts the least recently stepped.
DEFAULT_MAX_SESSIONS = 64


def _int_rows(raw: object, key: str) -> list[list[int]]:
    if not isinstance(raw, list) or not raw:
        raise SolverError(f"instance needs a non-empty list under {key!r}")
    rows: list[list[int]] = []
    for index, row in enumerate(raw):
        if not isinstance(row, list):
            raise SolverError(f"{key!r} row #{index} must be a list")
        for value in row:
            if not isinstance(value, int) or isinstance(value, bool):
                raise SolverError(f"{key!r} row #{index} must hold integers")
        rows.append([int(value) for value in row])
    return rows


def solver_from_instance(
    instance: Mapping[str, Any],
    budget: ComputeBudget | None = None,
) -> ConsistencySolver:
    """Build a solver from a ``/crack/step`` ``instance`` payload."""
    degree_k = instance.get("degree_k", 3)
    if not isinstance(degree_k, int) or isinstance(degree_k, bool):
        raise SolverError(f"degree_k must be an integer, got {degree_k!r}")
    if "profile" in instance:
        if "delta" not in instance:
            raise SolverError("a profile instance needs the interval half-width 'delta'")
        profile = profile_from_json(instance["profile"])
        delta = float(instance["delta"])
        frequencies = profile.frequencies()
        belief = uniform_width_belief(frequencies, delta)
        space = space_from_frequencies(belief, frequencies)
        return solver_from_space(space, budget=budget, degree_k=degree_k)
    if "adjacency" not in instance:
        raise SolverError("an instance needs either 'adjacency' or 'profile' + 'delta'")
    adjacency = _int_rows(instance["adjacency"], "adjacency")
    observed = instance.get("observed")
    truth = instance.get("truth")
    return ConsistencySolver(
        adjacency=adjacency,
        observed=None if observed is None else [float(f) for f in observed],
        true_partner_of=None if truth is None else [int(j) for j in truth],
        budget=budget,
        degree_k=degree_k,
    )


class _Session:
    """One live solver plus the lock that serializes steps against it.

    :class:`~repro.attack.solver.ConsistencySolver` is single-threaded
    by design; two ``/crack/step`` requests naming the same session can
    race on every piece of solver state (``_step``, the adjacency
    restriction, the emitted-event dedup sets).  The store lock only
    guards the session *table* — this per-session lock is what makes
    concurrent steps against one session take turns.
    """

    __slots__ = ("solver", "lock")

    def __init__(self, solver: ConsistencySolver) -> None:
        self.solver = solver
        self.lock = threading.Lock()


class CrackSessionStore:
    """The live solver sessions behind ``POST /crack/step``."""

    def __init__(self, max_sessions: int = DEFAULT_MAX_SESSIONS) -> None:
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, _Session] = OrderedDict()
        self._counter = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def _open(self, instance: Mapping[str, Any]) -> tuple[str, _Session]:
        session = _Session(solver_from_instance(instance))
        with self._lock:
            self._counter += 1
            session_id = f"crack-{self._counter}"
            self._sessions[session_id] = session
            # repro-lint: disable-next-line=FS005 -- eviction pops at most len-cap sessions, each O(1); no budget applies to table upkeep
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
        return session_id, session

    def _resume(self, session_id: str) -> _Session:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise SolverError(f"unknown or expired crack session {session_id!r}")
            self._sessions.move_to_end(session_id)
            return session

    def _retire(self, session_id: str) -> None:
        with self._lock:
            self._sessions.pop(session_id, None)

    def step(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Answer one ``/crack/step`` request (see the module docstring).

        Opening a session (an ``instance`` payload) bootstraps the
        solver, so edges the initial graph already decides — Figure
        6(a)'s staircase forces everything up front — arrive with the
        very first reply.
        """
        instance = payload.get("instance")
        session_raw = payload.get("session")
        opened = instance is not None
        if opened:
            if session_raw is not None:
                raise SolverError("pass 'instance' to open or 'session' to continue, not both")
            if not isinstance(instance, Mapping):
                raise SolverError("'instance' must be a JSON object")
            session_id, session = self._open(instance)
        else:
            if not isinstance(session_raw, str):
                raise SolverError("a step needs an 'instance' to open or a 'session' id")
            session_id = session_raw
            session = self._resume(session_id)

        observations = payload.get("observations", [])
        if not isinstance(observations, Sequence) or isinstance(observations, (str, bytes)):
            raise SolverError("'observations' must be a list of observation objects")

        events: list[dict[str, Any]] = []
        with session.lock:
            solver = session.solver
            if opened:
                events.extend(event.to_json() for event in solver.bootstrap())
            for raw in observations:
                if not isinstance(raw, Mapping):
                    raise SolverError("each observation must be a JSON object")
                observation = Observation.from_json(raw)
                events.extend(event.to_json() for event in solver.ingest(observation))
                if solver.closed:
                    break
            closed = solver.closed
            summary = solver.summary()
        if closed:
            self._retire(session_id)
        return {
            "session": session_id,
            "events": events,
            "summary": summary,
            "closed": closed,
        }

"""Content-addressed fingerprints for assessment requests.

The service layer recognizes "the same question asked twice" by
fingerprinting its inputs: a canonical, order-independent SHA-256 hash of
the frequency profile's counts together with the recipe parameters
(tolerance, delta, runs, seed, interest).  Two requests with equal
fingerprints are guaranteed to produce the same :class:`RiskAssessment`
— the recipe's only randomness (the alpha stage's permutations) is
seeded from the fingerprint itself via :func:`derived_seed`, so results
are reproducible regardless of which worker runs the job or in what
order a batch is scheduled.

The canonical payload sorts items by their tagged encoding (the same
``["int"|"str", value]`` tags :mod:`repro.io` uses), so insertion order
of the counts mapping never influences the hash, and it embeds
:data:`repro.io.SCHEMA_VERSION` so cached artifacts are invalidated
whenever the serialization format changes.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.data.database import FrequencySource
from repro.errors import RecipeError
from repro.io import SCHEMA_VERSION, _encode_item

__all__ = [
    "AssessmentParams",
    "profile_fingerprint",
    "request_fingerprint",
    "derived_seed",
]


@dataclass(frozen=True)
class AssessmentParams:
    """The non-data inputs of one Assess-Risk invocation.

    Mirrors the signature of :func:`repro.recipe.assess.assess_risk`;
    *seed* replaces the ``rng`` argument so the request stays hashable
    and serializable.
    """

    tolerance: float
    delta: float | None = None
    runs: int = 5
    seed: int = 0
    interest: frozenset[object] | None = field(default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.tolerance <= 1.0:
            raise RecipeError(f"tolerance must be in [0, 1], got {self.tolerance}")
        if self.runs <= 0:
            raise RecipeError(f"need at least one run, got {self.runs}")
        if self.interest is not None and not isinstance(self.interest, frozenset):
            object.__setattr__(self, "interest", frozenset(self.interest))
        if self.interest is not None and not self.interest:
            raise RecipeError("the interest subset must be non-empty")

    def canonical(self) -> dict[str, Any]:
        """A JSON-ready, order-independent representation."""
        return {
            "tolerance": float(self.tolerance),
            "delta": None if self.delta is None else float(self.delta),
            "runs": int(self.runs),
            "seed": int(self.seed),
            "interest": None
            if self.interest is None
            else sorted((_encode_item(item) for item in self.interest)),
        }

    def to_json(self) -> dict[str, Any]:
        """Alias of :meth:`canonical` for transport (pool jobs, HTTP)."""
        return self.canonical()

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "AssessmentParams":
        """Rebuild params written by :meth:`to_json` (tagged interest)."""
        from repro.io import _decode_item

        interest = payload.get("interest")
        return cls(
            tolerance=float(payload["tolerance"]),
            delta=None if payload.get("delta") is None else float(payload["delta"]),
            runs=int(payload.get("runs", 5)),
            seed=int(payload.get("seed", 0)),
            interest=None
            if interest is None
            else frozenset(_decode_item(entry) for entry in interest),
        )


def _canonical_count_entries(source: FrequencySource) -> list[tuple[str, str, int]]:
    """``(kind, text, count)`` triples sorted by tagged item encoding.

    Sorting by the ``(kind, text)`` tag makes the result independent of
    the counts mapping's insertion order; the length-prefixed rendering
    in :func:`profile_fingerprint` keeps the encoding injective even for
    item strings containing the separators.
    """
    counts = getattr(source, "counts", None)
    if not isinstance(counts, dict):
        counts = {item: source.item_count(item) for item in source.domain}
    entries = []
    for item, count in counts.items():
        if isinstance(item, bool) or not isinstance(item, (int, str)):
            # Same restriction as repro.io: only int/str items serialize.
            _encode_item(item)
        kind = "int" if isinstance(item, int) else "str"
        entries.append((kind, str(item), int(count)))
    entries.sort()
    return entries


def _digest(payload: dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def profile_fingerprint(source: FrequencySource) -> str:
    """Content hash of the data alone (counts + transaction total)."""
    entries = _canonical_count_entries(source)
    body = "\x1e".join(
        f"{kind}\x1f{len(text)}\x1f{text}\x1f{count}"
        for kind, text, count in entries
    )
    canonical = (
        f"schema={SCHEMA_VERSION};kind=profile;"
        f"m={int(source.n_transactions)};counts=" + body
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def request_fingerprint(
    source: FrequencySource,
    params: AssessmentParams,
    profile_hash: str | None = None,
) -> str:
    """Content hash of one full question: data + recipe parameters.

    *profile_hash* lets callers that already hold the profile's
    fingerprint (the engine memoizes it) skip rehashing the counts.
    """
    return _digest(
        {
            "schema": SCHEMA_VERSION,
            "kind": "request",
            "profile": profile_hash or profile_fingerprint(source),
            "params": params.canonical(),
        }
    )


def derived_seed(fingerprint: str) -> int:
    """A deterministic RNG seed for the request with this fingerprint.

    Jobs seeded this way give identical results whether they run inline,
    in a 1-worker pool, or interleaved across 4 processes.
    """
    return int(fingerprint[:16], 16) & (2**63 - 1)


def interest_from_raw(items: "Iterable[object] | None") -> frozenset[object] | None:
    """Normalize a raw iterable of items (e.g. parsed JSON) to a frozenset."""
    if items is None:
        return None
    return frozenset(items)

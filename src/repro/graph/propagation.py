"""Degree-1 propagation — Figure 7 of the paper.

When a node (on either side of the bipartite graph) has degree 1, its
single incident edge belongs to *every* perfect matching: the pair is
forced, both endpoints can be removed, and the removal may expose new
degree-1 nodes.  Figure 6(a)'s staircase graph shows why this matters for
the O-estimate: the raw estimate gives 25/12 cracks while the true value
is exactly 4, because every assignment is forced.

The procedure runs in ``O(v * e)`` worst case (each forced pair can
trigger a pass over its endpoints' neighbourhoods); in practice it
converges in a few iterations (paper, Section 5.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graph.bipartite import MappingSpace

__all__ = ["PropagationResult", "propagate_degree_one"]

_DEFAULT_MAX_EDGES = 5_000_000


@dataclass
class PropagationResult:
    """Outcome of degree-1 propagation on a mapping space.

    Attributes
    ----------
    forced:
        Item->anon index pairs present in every perfect matching.
    forbidden:
        Item index -> anon indices whose edges the cascade *proved*
        absent from every perfect matching: each was deleted because its
        other endpoint got consumed by a forced pair.  (Degree-1 removal
        used to discard this information; the attacker workbench reuses
        it instead of reclassifying from scratch.)
    remaining_outdegrees:
        Outdegree of every *unforced* item in the reduced graph.
    remaining_adjacency:
        Reduced adjacency (item index -> set of anon indices) for the
        unforced items.
    infeasible:
        True when propagation emptied some node's neighbourhood — the
        graph then has no perfect matching at all.
    """

    forced: dict[int, int] = field(default_factory=dict)
    forbidden: dict[int, set[int]] = field(default_factory=dict)
    remaining_outdegrees: dict[int, int] = field(default_factory=dict)
    remaining_adjacency: dict[int, set[int]] = field(default_factory=dict)
    infeasible: bool = False

    @property
    def n_forced(self) -> int:
        return len(self.forced)

    @property
    def n_forbidden(self) -> int:
        return sum(len(anons) for anons in self.forbidden.values())

    def forced_cracks(self, space: MappingSpace) -> int:
        """How many of the forced pairs are true identifications.

        A forced pair is a *sure crack* when it coincides with the
        ground-truth pairing — the hacker identifies that item with
        certainty, as in Figure 6(a).
        """
        return sum(1 for i, j in self.forced.items() if space.true_partner(i) == j)


def propagate_degree_one(
    space: MappingSpace, max_edges: int = _DEFAULT_MAX_EDGES
) -> PropagationResult:
    """Run the propagation procedure of Figure 7.

    Builds an explicit mutable adjacency (guarded by *max_edges*), then
    repeatedly fixes the edge of any degree-1 node on either side and
    deletes both endpoints until a fixed point.
    """
    n = space.n
    total_edges = space.edge_count()
    if total_edges > max_edges:
        raise GraphError(
            f"propagation needs an explicit adjacency; {total_edges} edges exceed "
            f"the {max_edges}-edge guard (raise max_edges to override)"
        )

    item_adj: list[set[int]] = [set(space.candidates(i)) for i in range(n)]
    anon_adj: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in item_adj[i]:
            anon_adj[j].add(i)

    result = PropagationResult()
    removed_item = [False] * n
    removed_anon = [False] * n
    queue: deque[tuple[str, int]] = deque()
    for i in range(n):
        if len(item_adj[i]) == 1:
            queue.append(("item", i))
        elif not item_adj[i]:
            result.infeasible = True
    for j in range(n):
        if len(anon_adj[j]) == 1:
            queue.append(("anon", j))
        elif not anon_adj[j]:
            result.infeasible = True

    def force(i: int, j: int) -> None:
        """Fix the pair (item i, anon j) and delete both nodes."""
        result.forced[i] = j
        removed_item[i] = True
        removed_anon[j] = True
        for other_anon in item_adj[i] - {j}:
            result.forbidden.setdefault(i, set()).add(other_anon)
            anon_adj[other_anon].discard(i)
            if not removed_anon[other_anon]:
                if len(anon_adj[other_anon]) == 1:
                    queue.append(("anon", other_anon))
                elif not anon_adj[other_anon]:
                    result.infeasible = True
        for other_item in anon_adj[j] - {i}:
            result.forbidden.setdefault(other_item, set()).add(j)
            item_adj[other_item].discard(j)
            if not removed_item[other_item]:
                if len(item_adj[other_item]) == 1:
                    queue.append(("item", other_item))
                elif not item_adj[other_item]:
                    result.infeasible = True
        item_adj[i] = {j}
        anon_adj[j] = {i}

    while queue:
        side, node = queue.popleft()
        if side == "item":
            if removed_item[node] or len(item_adj[node]) != 1:
                continue
            (j,) = item_adj[node]
            if removed_anon[j]:
                result.infeasible = True
                continue
            force(node, j)
        else:
            if removed_anon[node] or len(anon_adj[node]) != 1:
                continue
            (i,) = anon_adj[node]
            if removed_item[i]:
                result.infeasible = True
                continue
            force(i, node)

    for i in range(n):
        if not removed_item[i]:
            result.remaining_adjacency[i] = item_adj[i]
            result.remaining_outdegrees[i] = len(item_adj[i])
            if not item_adj[i]:
                result.infeasible = True
    return result

"""Structure-exploiting exact crack engine: the strategy dispatcher.

The paper's direct method (Section 4.1) computes expected cracks via
permanents and is capped at tiny domains by #P-hardness.  This module
lifts the cap wherever the graph has structure:

1. **Block decomposition** (:mod:`repro.graph.blocks`): permanents
   multiply, marginals localize and crack laws convolve over connected
   components — for *any* belief class.
2. **Consecutive-ones DP** (:mod:`repro.graph.intervaldp`): inside a
   frequency-space block, interval beliefs admit a polynomial
   group-sweep DP instead of Ryser's ``O(2^n n)``.
3. **Ryser** stays the engine for small explicit blocks (arbitrary
   adjacency, Section 8.1 graphs).

:func:`exact_strategy` inspects a space and reports which engine would
run, per block, plus a cost hint so callers (the assessment service, the
``auto`` marginal method) can decide whether exact is worth it; the
``*_exact`` functions execute the plan.  Counting uses exact Python
integers, so wherever Ryser is also feasible the two agree bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GraphError, InfeasibleMatchingError

if TYPE_CHECKING:
    from repro.graph.refine import EdgeClassification
from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace
from repro.graph.blocks import Block, BlockDecomposition, decompose
from repro.graph.intervaldp import (
    DEFAULT_BUDGET,
    DPBudget,
    assignment_count,
    class_placement_totals,
    crack_law,
)

__all__ = [
    "ExactPlan",
    "exact_strategy",
    "count_matchings_exact",
    "expected_cracks_exact",
    "crack_marginals_exact",
    "crack_distribution_exact",
]

#: Ryser blocks beyond this size are infeasible (matches the historical
#: ``permanent`` guard).
RYSER_BLOCK_LIMIT = 22

#: Per-block enumeration cap for explicit-space crack laws.
ENUMERATION_BLOCK_LIMIT = 12

STRATEGY_RYSER = "ryser"
STRATEGY_BLOCK_RYSER = "block-ryser"
STRATEGY_INTERVAL_DP = "interval-dp"
STRATEGY_BLOCK_INTERVAL_DP = "block-interval-dp"
STRATEGY_INFEASIBLE = "infeasible"
#: Solver preprocessing decided every edge — nothing left to count.
STRATEGY_PROPAGATION = "propagation"


@dataclass(frozen=True)
class ExactPlan:
    """What the exact engine would do with a space.

    Attributes
    ----------
    strategy:
        Overall label: ``"ryser"`` (one small explicit block),
        ``"block-ryser"`` (several small explicit blocks),
        ``"interval-dp"`` / ``"block-interval-dp"`` (frequency-space
        DP over one / many blocks), or ``"infeasible"``.
    feasible:
        Whether every block has an exact engine.
    matchable:
        Cheap necessary condition for a perfect matching; when ``False``
        the permanent is 0 and exact answers are trivial.
    n, n_blocks, largest_block, block_sizes, block_strategies:
        Shape of the decomposition.
    cost_hint:
        Rough operation count for an exact expected-cracks computation —
        compare against a budget before running on a serving path.
        Computed in exact integers (counts of DP transitions / Ryser
        subsets), so plans for the same space always compare equal.
    reason:
        Why the plan is infeasible / unmatchable, when it is.
    preprocessed:
        True when solver preprocessing (:mod:`repro.graph.refine`) ran:
        forced pairs and forbidden edges were peeled off before block
        decomposition, which preserves the permanent and the surviving
        marginals exactly.
    forced_pairs:
        Edges present in every perfect matching (removed as solved
        1x1 subproblems), when preprocessed.
    forbidden_edges:
        Edges present in no perfect matching (deleted), when
        preprocessed.
    largest_block_raw:
        Largest block of the *unpreprocessed* decomposition, recorded so
        the reduction is auditable; ``None`` when not preprocessed.
    """

    strategy: str
    feasible: bool
    matchable: bool
    n: int
    n_blocks: int
    largest_block: int
    block_sizes: tuple[int, ...]
    block_strategies: tuple[str, ...]
    cost_hint: float
    reason: str | None = None
    preprocessed: bool = False
    forced_pairs: int = 0
    forbidden_edges: int = 0
    largest_block_raw: int | None = None


def _frequency_block_problem(
    space: FrequencyMappingSpace, block: Block
) -> tuple[tuple[int, ...], dict[tuple[int, int], int], int]:
    """Capacities, interchangeability classes and run width of one block."""
    a, b = block.group_range
    capacities = tuple(int(c) for c in space.groups.counts[a:b])
    classes: dict[tuple[int, int], int] = {}
    for i in block.item_indices:
        g_lo, g_hi = space.admissible_run(i)
        run = (g_lo - a, g_hi - a)
        classes[run] = classes.get(run, 0) + 1
    width = max((hi - lo for lo, hi in classes), default=1)
    return capacities, classes, width


def _dp_cost_hint(
    capacities: tuple[int, ...], classes: dict[tuple[int, int], int], width: int
) -> int:
    """Crude transition-count estimate for one block's DP sweep.

    The state space is the set of feasible pending-by-deadline profiles;
    with window width ``w`` and at most ``p`` pending items that is at
    most ``C(p + w - 2, w - 2)`` per group.  The hint deliberately
    over-counts — it gates serving-path usage, where a false "too
    expensive" only costs accuracy, never latency.
    """
    if width <= 1:
        return len(capacities)
    window = width - 1
    sums = [sum(capacities[g : g + window]) for g in range(len(capacities))]
    max_pending = max(sums, default=0)
    states = math.comb(max_pending + max(width - 2, 0), max(width - 2, 0))
    transitions = math.comb(max_pending + width - 1, width - 1)
    return len(capacities) * min(states, 10**9) * min(transitions, 10**9)


def exact_strategy(
    space: MappingSpace,
    limit: int | None = None,
    preprocess: bool = False,
    budget: DPBudget = DEFAULT_BUDGET,
) -> ExactPlan:
    """Inspect a space and pick the exact engine for each block.

    With ``preprocess=True``, the solver's edge classification
    (:func:`repro.graph.refine.classify_edges`) first peels off forced
    pairs and forbidden edges — a permanent-preserving reduction — and
    the plan is drawn over the *reduced* blocks whenever that helps (it
    always does for explicit spaces; frequency spaces keep the interval
    DP unless the reduction rescues an otherwise infeasible plan).  The
    reduction is recorded in the plan's ``forced_pairs`` /
    ``forbidden_edges`` / ``largest_block_raw`` fields.
    """
    plain = _plain_strategy(space, limit)
    if not preprocess:
        return plain
    return _preprocessed_strategy(space, plain, limit, budget)


def _plain_strategy(space: MappingSpace, limit: int | None = None) -> ExactPlan:
    limit = RYSER_BLOCK_LIMIT if limit is None else int(limit)
    decomposition = decompose(space)
    if not decomposition.matchable:
        return ExactPlan(
            strategy=STRATEGY_INFEASIBLE if not decomposition.blocks else _overall_name(
                space, decomposition
            ),
            feasible=True,
            matchable=False,
            n=space.n,
            n_blocks=len(decomposition.blocks),
            largest_block=decomposition.largest_block,
            block_sizes=decomposition.block_sizes,
            block_strategies=(),
            cost_hint=0,
            reason=decomposition.reason,
        )

    is_frequency = isinstance(space, FrequencyMappingSpace)
    block_strategies: list[str] = []
    cost = 0
    feasible = True
    reason = None
    for block in decomposition.blocks:
        if is_frequency:
            capacities, classes, width = _frequency_block_problem(space, block)
            hint = _dp_cost_hint(capacities, classes, width)
            if hint <= block.n * 2**block.n or block.n > limit:
                block_strategies.append(STRATEGY_INTERVAL_DP)
                cost += hint * max(len(classes), 1)
            else:
                block_strategies.append(STRATEGY_RYSER)
                cost += block.n**2 * 2**block.n
        elif block.n <= limit:
            block_strategies.append(STRATEGY_RYSER)
            cost += block.n**2 * 2**block.n
        else:
            block_strategies.append(STRATEGY_INFEASIBLE)
            feasible = False
            reason = (
                f"a {block.n}-item block has no structure the exact engine "
                f"can exploit (Ryser limit {limit})"
            )
    strategy = (
        STRATEGY_INFEASIBLE
        if not feasible
        else _overall_name(space, decomposition)
    )
    return ExactPlan(
        strategy=strategy,
        feasible=feasible,
        matchable=True,
        n=space.n,
        n_blocks=len(decomposition.blocks),
        largest_block=decomposition.largest_block,
        block_sizes=decomposition.block_sizes,
        block_strategies=tuple(block_strategies),
        cost_hint=cost,
        reason=reason,
    )


def _overall_name(space: MappingSpace, decomposition: BlockDecomposition) -> str:
    many = len(decomposition.blocks) > 1
    if isinstance(space, FrequencyMappingSpace):
        return STRATEGY_BLOCK_INTERVAL_DP if many else STRATEGY_INTERVAL_DP
    return STRATEGY_BLOCK_RYSER if many else STRATEGY_RYSER


def _classify(space: MappingSpace, budget: DPBudget) -> "EdgeClassification":
    from repro.graph.refine import classify_edges

    return classify_edges(space, budget=budget.compute)


def _preprocessed_strategy(
    space: MappingSpace, plain: ExactPlan, limit: int | None, budget: DPBudget
) -> ExactPlan:
    """Re-plan over the solver-reduced blocks, recording the reduction."""
    from repro.graph.refine import reduced_blocks

    limit = RYSER_BLOCK_LIMIT if limit is None else int(limit)
    if not plain.matchable:
        return replace(plain, preprocessed=True, largest_block_raw=plain.largest_block)
    classification = _classify(space, budget)
    if classification.infeasible:
        return replace(
            plain,
            strategy=STRATEGY_INFEASIBLE,
            matchable=False,
            block_strategies=(),
            cost_hint=0,
            reason=classification.reason,
            preprocessed=True,
            forbidden_edges=classification.n_forbidden,
            largest_block_raw=plain.largest_block,
        )
    blocks = reduced_blocks(classification)
    block_strategies: list[str] = []
    cost = 0
    feasible = True
    reason = None
    for block in blocks:
        if block.n <= limit:
            block_strategies.append(STRATEGY_RYSER)
            cost += block.n**2 * 2**block.n
        else:
            block_strategies.append(STRATEGY_INFEASIBLE)
            feasible = False
            reason = (
                f"a {block.n}-item reduced block still exceeds the Ryser "
                f"limit ({limit})"
            )
    if not blocks:
        strategy = STRATEGY_PROPAGATION
    elif not feasible:
        strategy = STRATEGY_INFEASIBLE
    else:
        strategy = STRATEGY_BLOCK_RYSER if len(blocks) > 1 else STRATEGY_RYSER
    reduced = ExactPlan(
        strategy=strategy,
        feasible=feasible,
        matchable=True,
        n=space.n,
        n_blocks=len(blocks),
        largest_block=max((block.n for block in blocks), default=0),
        block_sizes=tuple(block.n for block in blocks),
        block_strategies=tuple(block_strategies),
        cost_hint=cost,
        reason=reason,
        preprocessed=True,
        forced_pairs=classification.n_forced,
        forbidden_edges=classification.n_forbidden,
        largest_block_raw=plain.largest_block,
    )
    if isinstance(space, FrequencyMappingSpace) and plain.feasible:
        # The interval DP survives edge removal only in spirit, not in
        # structure, so a feasible DP plan is kept unless the reduction
        # plan is strictly cheaper; the reduction stats still ride along.
        if not reduced.feasible or reduced.cost_hint >= plain.cost_hint:
            return replace(
                reduced,
                strategy=plain.strategy,
                feasible=plain.feasible,
                n_blocks=plain.n_blocks,
                largest_block=plain.largest_block,
                block_sizes=plain.block_sizes,
                block_strategies=plain.block_strategies,
                cost_hint=plain.cost_hint,
                reason=plain.reason,
            )
    return reduced


# -- per-block engines -------------------------------------------------------


def _block_adjacency(space: MappingSpace, block: Block) -> np.ndarray:
    anon_local = {j: r for r, j in enumerate(block.anon_indices)}
    # Integer dtype keeps `permanent` on its exact Python-int path.
    matrix = np.zeros((len(block.anon_indices), len(block.item_indices)), dtype=np.int64)
    for c, i in enumerate(block.item_indices):
        for j in space.candidates(i):
            matrix[anon_local[j], c] = 1
    return matrix


def _batched_permanents(matrices: list[np.ndarray], budget: DPBudget) -> list[int]:
    """Exact permanents of small integral block matrices, batched by shape.

    Equal-shape matrices (the common case: a decomposed space yields many
    blocks of one size, and every item minor inside a block shares one
    shape) are evaluated in a single 3-D tensor Gray-code pass
    (:func:`repro.graph.kernels.permanent_batch`) instead of one Python
    Ryser walk each.  Results are bit-identical to per-matrix
    :func:`repro.graph.permanent.permanent` on connected blocks.
    """
    from repro.graph.kernels import permanent_batch

    by_shape: dict[tuple[int, ...], list[int]] = {}
    for index, matrix in enumerate(matrices):
        by_shape.setdefault(matrix.shape, []).append(index)
    results = [0] * len(matrices)
    for indices in by_shape.values():
        values = permanent_batch(
            [matrices[i] for i in indices], budget=budget.compute
        )
        for i, value in zip(indices, values):
            results[i] = value
    return results


def _frequency_block_count(
    space: FrequencyMappingSpace, block: Block, budget: DPBudget
) -> tuple[int, int]:
    """(assignment count, matching count) of one frequency block."""
    capacities, classes, _ = _frequency_block_problem(space, block)
    assignments = assignment_count(capacities, classes, budget=budget)
    matchings = assignments
    for c in capacities:
        matchings *= math.factorial(c)
    return assignments, matchings


def _classification_matrix(
    classification: "EdgeClassification", block: Block
) -> np.ndarray:
    """Undecided-subgraph adjacency matrix of one reduced block."""
    anon_local = {j: r for r, j in enumerate(block.anon_indices)}
    matrix = np.zeros((len(block.anon_indices), len(block.item_indices)), dtype=np.int64)
    for c, i in enumerate(block.item_indices):
        for j in classification.undecided[i]:
            matrix[anon_local[j], c] = 1
    return matrix


def count_matchings_exact(
    space: MappingSpace,
    limit: int | None = None,
    budget: DPBudget = DEFAULT_BUDGET,
    preprocess: bool = False,
) -> int:
    """The number of consistent crack mappings, as an exact integer.

    Equals the permanent of the adjacency matrix, computed as a product
    over blocks — interval DP on frequency blocks, Ryser on small
    explicit ones.  Raises :class:`~repro.errors.GraphError` when some
    block is beyond every engine.  With ``preprocess=True``, forced
    pairs and forbidden edges are peeled off first (the permanent is
    invariant under both removals) and Ryser runs over the reduced
    blocks only.
    """
    limit = RYSER_BLOCK_LIMIT if limit is None else int(limit)
    if preprocess:
        from repro.graph.refine import reduced_blocks

        classification = _classify(space, budget)
        if classification.infeasible:
            return 0
        matrices = []
        for block in reduced_blocks(classification):
            _require_ryser_block(block, limit)
            matrices.append(_classification_matrix(classification, block))
        total = 1
        for matchings in _batched_permanents(matrices, budget):
            if matchings == 0:
                return 0
            total *= matchings
        return total
    decomposition = decompose(space)
    if not decomposition.matchable:
        return 0
    total = 1
    explicit_matrices = []
    for block in decomposition.blocks:
        if isinstance(space, FrequencyMappingSpace):
            _, matchings = _frequency_block_count(space, block, budget)
            if matchings == 0:
                return 0
            total *= matchings
        else:
            _require_ryser_block(block, limit)
            explicit_matrices.append(_block_adjacency(space, block))
    for matchings in _batched_permanents(explicit_matrices, budget):
        if matchings == 0:
            return 0
        total *= matchings
    return total


def _require_ryser_block(block: Block, limit: int) -> None:
    if block.n > limit:
        raise GraphError(
            f"a {block.n}-item explicit block exceeds the Ryser limit "
            f"({limit}); no exact strategy applies — use the O-estimate "
            "or the simulator"
        )


def _frequency_block_marginals(
    space: FrequencyMappingSpace,
    block: Block,
    marginals: np.ndarray,
    budget: DPBudget,
) -> None:
    a, b = block.group_range
    capacities, classes, _ = _frequency_block_problem(space, block)
    total, placement = class_placement_totals(capacities, classes, budget=budget)
    if total == 0:
        raise InfeasibleMatchingError("no consistent perfect matching exists")
    group_of = space.groups.group_of
    # Items sharing (run class, true group) share a marginal:
    # P(item -> g) = S[(run, g)] / (total * class size), and landing in
    # the true group cracks with probability 1 / capacity.
    for i in block.item_indices:
        g_lo, g_hi = space.admissible_run(i)
        true_group = int(group_of[space.true_partner(i)])
        if not g_lo <= true_group < g_hi:
            continue  # non-compliant: never cracked
        run = (g_lo - a, g_hi - a)
        local_group = true_group - a
        placed = placement.get((run, local_group), 0)
        # repro-lint: disable-next-line=EX004 -- probability boundary: exact Fraction rounded once into the output array
        marginals[i] = float(
            Fraction(
                placed, total * classes[run] * capacities[local_group]
            )
        )


def _explicit_marginals_batched(
    space: MappingSpace,
    block_matrices: list[tuple[Block, np.ndarray]],
    marginals: np.ndarray,
    budget: DPBudget,
) -> None:
    """Fill marginals for explicit blocks, batching equal-shape permanents.

    Each block needs its total permanent plus one minor permanent per
    item whose true edge survives; totals and minors across *all* blocks
    are grouped by shape and evaluated in single tensor passes — for a
    decomposed space with many same-size blocks this replaces hundreds
    of scalar Ryser walks with a handful of batched ones.
    """
    totals = _batched_permanents([m for _, m in block_matrices], budget)
    minor_items: list[tuple[int, int]] = []  # (block index, item index)
    minors: list[np.ndarray] = []
    for b, (block, matrix) in enumerate(block_matrices):
        if totals[b] == 0:
            raise InfeasibleMatchingError("no consistent perfect matching exists")
        anon_local = {j: r for r, j in enumerate(block.anon_indices)}
        for c, i in enumerate(block.item_indices):
            j = space.true_partner(i)
            row = anon_local.get(j)
            if row is None or matrix[row, c] == 0:
                continue
            minor_items.append((b, i))
            minors.append(np.delete(np.delete(matrix, row, axis=0), c, axis=1))
    for (b, i), value in zip(minor_items, _batched_permanents(minors, budget)):
        marginals[i] = value / totals[b]  # repro-lint: disable=EX002 -- probability boundary: exact-count ratio becomes P(crack)


def _classified_marginals(
    space: MappingSpace,
    classification: "EdgeClassification",
    marginals: np.ndarray,
    limit: int,
    budget: DPBudget,
) -> None:
    """Marginals over the solver-reduced blocks (plus the forced pairs)."""
    from repro.graph.refine import reduced_blocks

    for i, j in classification.forced.items():
        if space.true_partner(i) == j:
            marginals[i] = 1  # a forced true edge is a certain crack
    block_matrices = []
    for block in reduced_blocks(classification):
        _require_ryser_block(block, limit)
        block_matrices.append((block, _classification_matrix(classification, block)))
    if block_matrices:
        _explicit_marginals_batched(space, block_matrices, marginals, budget)


def crack_marginals_exact(
    space: MappingSpace,
    limit: int | None = None,
    budget: DPBudget = DEFAULT_BUDGET,
    preprocess: bool = False,
) -> np.ndarray:
    """Exact per-item crack probabilities, block by block.

    Raises :class:`~repro.errors.InfeasibleMatchingError` when no
    consistent matching exists and :class:`~repro.errors.GraphError`
    when some block defeats every exact engine.  With
    ``preprocess=True``, forced true edges contribute marginal 1
    directly and Ryser minors run over the reduced blocks only (forbidden
    edges never carry probability mass, so the reduction is exact).
    """
    limit = RYSER_BLOCK_LIMIT if limit is None else int(limit)
    marginals = np.zeros(space.n, dtype=np.float64)  # repro-lint: disable=EX004 -- probability boundary: output array of P(crack)
    if preprocess:
        classification = _classify(space, budget)
        if classification.infeasible:
            raise InfeasibleMatchingError("no consistent perfect matching exists")
        _classified_marginals(space, classification, marginals, limit, budget)
        return marginals
    decomposition = decompose(space)
    if not decomposition.matchable:
        raise InfeasibleMatchingError("no consistent perfect matching exists")
    explicit: list[tuple[Block, np.ndarray]] = []
    for block in decomposition.blocks:
        if isinstance(space, FrequencyMappingSpace):
            _frequency_block_marginals(space, block, marginals, budget)
        else:
            _require_ryser_block(block, limit)
            explicit.append((block, _block_adjacency(space, block)))
    if explicit:
        _explicit_marginals_batched(space, explicit, marginals, budget)
    return marginals


def expected_cracks_exact(
    space: MappingSpace,
    limit: int | None = None,
    budget: DPBudget = DEFAULT_BUDGET,
    preprocess: bool = False,
) -> float:
    """Exact ``E[X]`` by the direct method, structure-exploiting.

    Extends :func:`repro.graph.permanent.expected_cracks_direct` beyond
    the Ryser cap: linearity makes ``E[X]`` the sum of per-block
    marginal sums, each computed by the block's engine.
    """
    return float(crack_marginals_exact(space, limit=limit, budget=budget, preprocess=preprocess).sum())  # repro-lint: disable=EX004 -- public float API edge


def _enumerate_block_law(
    space: MappingSpace, block: Block, budget: DPBudget = DEFAULT_BUDGET
) -> np.ndarray:
    """Crack law of a small explicit block, by backtracking enumeration."""
    compute = budget.compute
    anon_local = {j: r for r, j in enumerate(block.anon_indices)}
    n_local = block.n
    candidates = []
    for i in block.item_indices:
        candidates.append(
            tuple(anon_local[j] for j in space.candidates(i) if j in anon_local)
        )
    truth = []
    for i in block.item_indices:
        truth.append(anon_local.get(space.true_partner(i), -1))
    order = sorted(range(n_local), key=lambda c: len(candidates[c]))

    counts = [0] * (n_local + 1)
    used = [False] * n_local

    def extend(depth: int, cracks: int) -> None:
        if depth == n_local:
            counts[cracks] += 1
            return
        if compute is not None:
            compute.checkpoint()
        c = order[depth]
        for r in candidates[c]:
            if not used[r]:
                used[r] = True
                extend(depth + 1, cracks + (1 if truth[c] == r else 0))
                used[r] = False

    extend(0, 0)
    total = sum(counts)
    if total == 0:
        raise InfeasibleMatchingError("no consistent perfect matching exists")
    return np.asarray(counts, dtype=np.float64) / total  # repro-lint: disable=EX002,EX004 -- probability boundary: exact counts become the block law


def _frequency_block_law(
    space: FrequencyMappingSpace, block: Block, budget: DPBudget
) -> np.ndarray:
    a, b = block.group_range
    capacities = tuple(int(c) for c in space.groups.counts[a:b])
    group_of = space.groups.group_of
    refined: dict[tuple[int, int, int | None], int] = {}
    for i in block.item_indices:
        g_lo, g_hi = space.admissible_run(i)
        true_group = int(group_of[space.true_partner(i)])
        local_true = true_group - a if g_lo <= true_group < g_hi else None
        key = (g_lo - a, g_hi - a, local_true)
        refined[key] = refined.get(key, 0) + 1
    return crack_law(capacities, refined, budget=budget)


def crack_distribution_exact(
    space: MappingSpace,
    limit: int | None = None,
    budget: DPBudget = DEFAULT_BUDGET,
) -> np.ndarray:
    """Exact law ``P(X = k)`` of the crack count, block-convolved.

    Frequency blocks use the interval DP with rencontres within-group
    laws; explicit blocks are enumerated (per-block limit
    ``ENUMERATION_BLOCK_LIMIT`` instead of the historical whole-space
    one).  The block laws are convolved — matchings are independent and
    uniform across components.
    """
    decomposition = decompose(space)
    if not decomposition.matchable:
        raise InfeasibleMatchingError("no consistent perfect matching exists")
    law = np.array([1.0])  # repro-lint: disable=EX001 -- probability boundary: identity law for the convolution
    for block in decomposition.blocks:
        if isinstance(space, FrequencyMappingSpace):
            try:
                block_law = _frequency_block_law(space, block, budget)
            except GraphError:
                if block.n <= (ENUMERATION_BLOCK_LIMIT if limit is None else limit):
                    block_law = _enumerate_block_law(space, block, budget=budget)
                else:
                    raise
        else:
            if block.n > (ENUMERATION_BLOCK_LIMIT if limit is None else limit):
                raise GraphError(
                    f"enumerating a {block.n}-item explicit block is infeasible "
                    f"(limit {ENUMERATION_BLOCK_LIMIT}); only frequency blocks "
                    "support the interval-DP crack law"
                )
            block_law = _enumerate_block_law(space, block, budget=budget)
        law = np.convolve(law, block_law)
    result = np.zeros(space.n + 1, dtype=np.float64)  # repro-lint: disable=EX004 -- probability boundary: output law P(X=k)
    result[: len(law)] = law
    return result

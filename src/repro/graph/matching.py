"""Maximum matchings and consistent-matching feasibility.

The paper notes (Section 2.3) that a belief function need not admit any
consistent perfect matching at all.  The simulator (Section 7.1) and the
itemset-identification extension both need an initial perfect matching;
this module provides one:

* :func:`hopcroft_karp` — textbook Hopcroft–Karp maximum bipartite
  matching for arbitrary (explicit) adjacency;
* an interval-scheduling greedy for :class:`FrequencyMappingSpace`, where
  every item admits a *contiguous run* of frequency groups, so the
  transportation problem is solved exactly by earliest-deadline-first
  assignment — ``O(n log n)`` instead of Hopcroft–Karp's ``O(E sqrt(V))``;
* :func:`group_feasible_matching` — a full consistent perfect matching,
  preferring the ground-truth pairing wherever it is consistent (the
  paper seeds its simulation from the all-cracked matching).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Sequence

import numpy as np

from repro.errors import InfeasibleMatchingError
from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace

__all__ = [
    "hopcroft_karp",
    "maximum_matching",
    "has_perfect_matching",
    "group_feasible_matching",
]

_INF = float("inf")


def hopcroft_karp(adjacency: Sequence[Sequence[int]], n_right: int) -> tuple[list[int], list[int], int]:
    """Maximum bipartite matching via Hopcroft–Karp.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists the right-side neighbours of left node ``u``.
    n_right:
        Number of right-side nodes.

    Returns
    -------
    ``(match_left, match_right, size)`` where ``match_left[u]`` is the
    right partner of ``u`` (or -1) and symmetrically for ``match_right``.
    """
    n_left = len(adjacency)
    match_left = [-1] * n_left
    match_right = [-1] * n_right
    distance = [0.0] * n_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                distance[u] = 0.0
                queue.append(u)
            else:
                distance[u] = _INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found_free = True
                elif distance[w] == _INF:
                    distance[w] = distance[u] + 1
                    queue.append(w)
        return found_free

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right[v]
            if w == -1 or (distance[w] == distance[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INF
        return False

    size = 0
    while bfs():
        for u in range(n_left):
            if match_left[u] == -1 and dfs(u):
                size += 1
    return match_left, match_right, size


def _group_assignment(space: FrequencyMappingSpace) -> list[int]:
    """Assign each item to an admissible frequency group, exactly filling
    every group's capacity, via earliest-deadline-first greedy.

    Raises :class:`InfeasibleMatchingError` when no consistent perfect
    matching exists.
    """
    n = space.n
    k = len(space.groups)
    assignment = [-1] * n
    items_by_start: list[list[int]] = [[] for _ in range(k)]
    for i in range(n):
        g_lo, g_hi = space.admissible_run(i)
        if g_lo >= g_hi:
            raise InfeasibleMatchingError(
                f"item {space.items[i]!r} admits no observed frequency (outdegree 0)"
            )
        items_by_start[g_lo].append(i)

    heap: list[tuple[int, int]] = []  # (deadline g_hi, item index)
    for g in range(k):
        for i in items_by_start[g]:
            heapq.heappush(heap, (space.admissible_run(i)[1], i))
        capacity = int(space.groups.counts[g])
        for _ in range(capacity):
            if not heap:
                raise InfeasibleMatchingError(
                    f"frequency group #{g} cannot be filled: no admissible items remain"
                )
            deadline, i = heapq.heappop(heap)
            if deadline <= g:
                raise InfeasibleMatchingError(
                    f"item {space.items[i]!r} could not be placed before its last "
                    f"admissible group"
                )
            assignment[i] = g
    if heap:
        # Cannot happen when sum of capacities == n, kept as a safety net.
        raise InfeasibleMatchingError("items left unassigned after all groups filled")
    return assignment


def _expand_group_assignment(
    space: FrequencyMappingSpace,
    assignment: Sequence[int],
    prefer_truth: bool = True,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Turn an item->group assignment into an item->anonymized matching.

    Within each group, items are paired with the group's anonymized
    members arbitrarily — except that an item assigned to its *true*
    group is paired with its true partner whenever possible
    (*prefer_truth*), reproducing the paper's all-cracked seed matching
    in the fully compliant case.  Passing *rng* shuffles the within-group
    pools instead; crucial when the space uses the canonical pairing
    (item i <-> anonymized i), where index-order pairing would silently
    reproduce the ground truth.
    """
    n = space.n
    match = np.full(n, -1, dtype=np.int64)
    used = np.zeros(n, dtype=bool)
    leftovers_by_group: list[list[int]] = [list(members) for members in space.groups.members]

    if prefer_truth:
        for i in range(n):
            j = space.true_partner(i)
            if assignment[i] == space.groups.group_of[j]:
                match[i] = j
                used[j] = True
        leftovers_by_group = [
            [j for j in members if not used[j]] for members in space.groups.members
        ]
    if rng is not None:
        for pool in leftovers_by_group:
            rng.shuffle(pool)

    cursors = [0] * len(space.groups)
    for i in range(n):
        if match[i] != -1:
            continue
        g = assignment[i]
        pool = leftovers_by_group[g]
        match[i] = pool[cursors[g]]
        cursors[g] += 1
    return match


def group_feasible_matching(
    space: MappingSpace, prefer_truth: bool = True, rng: np.random.Generator | None = None
) -> np.ndarray:
    """A consistent perfect matching of *space* as an item->anon index array.

    Uses the interval greedy for frequency spaces and Hopcroft–Karp for
    explicit ones.  Raises :class:`InfeasibleMatchingError` when the graph
    has no perfect matching.  With ``prefer_truth=False``, pass *rng* to
    randomize within-group pairings (see :func:`_expand_group_assignment`).
    """
    if isinstance(space, FrequencyMappingSpace):
        assignment = _group_assignment(space)
        match = _expand_group_assignment(
            space, assignment, prefer_truth=prefer_truth, rng=rng
        )
        if prefer_truth:
            _restore_true_edges(space, match)
        return match

    adjacency = [list(space.candidates(i)) for i in range(space.n)]
    match_left, match_right, size = hopcroft_karp(adjacency, space.n)
    if size != space.n:
        raise InfeasibleMatchingError(
            f"no consistent perfect matching exists (maximum matching covers "
            f"{size} of {space.n} items)"
        )
    match = np.array(match_left, dtype=np.int64)
    if prefer_truth:
        _restore_true_edges(space, match)
    return match


def _restore_true_edges(space: MappingSpace, match: np.ndarray) -> None:
    """Greedy in-place 2-swaps towards the ground-truth pairing.

    For each item whose true edge exists, swap partners with the item
    currently holding its true partner when the swap keeps both edges
    consistent.  Purely a seeding nicety for the simulator.
    """
    holder = np.empty_like(match)
    holder[match] = np.arange(len(match))
    for i in range(len(match)):
        j = space.true_partner(i)
        if match[i] == j or not space.is_edge(i, j):
            continue
        other = int(holder[j])
        if space.is_edge(other, int(match[i])):
            match[other], match[i] = match[i], j
            holder[match[other]] = other
            holder[j] = i


def maximum_matching(space: MappingSpace) -> np.ndarray:
    """A maximum consistent matching (item->anon index, -1 for unmatched)."""
    if isinstance(space, FrequencyMappingSpace):
        try:
            return group_feasible_matching(space)
        except InfeasibleMatchingError:
            pass  # fall through to Hopcroft-Karp for the maximum (not perfect) case
    adjacency = [list(space.candidates(i)) for i in range(space.n)]
    match_left, _, _ = hopcroft_karp(adjacency, space.n)
    return np.array(match_left, dtype=np.int64)


def has_perfect_matching(space: MappingSpace) -> bool:
    """Whether any consistent crack mapping (perfect matching) exists."""
    if isinstance(space, FrequencyMappingSpace):
        try:
            _group_assignment(space)
        except InfeasibleMatchingError:
            return False
        return True
    adjacency = [list(space.candidates(i)) for i in range(space.n)]
    _, _, size = hopcroft_karp(adjacency, space.n)
    return size == space.n

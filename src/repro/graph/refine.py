"""Forced/forbidden edge refinement of the consistency graph.

Degree-1 propagation (Figure 7) only sees locally-forced edges.  This
module classifies *every* edge of the bipartite consistency graph
``G = (J + I, E)`` into the taxonomy of Torra & Stokes' compatible
probabilities:

* **forced** — the edge belongs to every perfect matching (the hacker
  identifies the pair with certainty);
* **forbidden** — the edge belongs to no perfect matching (the pairing
  can be ruled out even though the belief admits it);
* **undecided** — the edge belongs to some but not all matchings.

The classification is the classic Dulmage–Mendelsohn / Régin
alldifferent filtering: fix one perfect matching ``M`` (Hopcroft–Karp),
build the residual digraph on items with an arc ``u -> v`` whenever
item ``u`` has an edge to ``M(v)``, and take strongly connected
components.  A matching edge is forced iff its item is a singleton SCC;
a non-matching edge survives in some matching iff its endpoints share
an SCC.  When no perfect matching exists at all, a Hall-condition
witness (a set ``S`` of items with ``|N(S)| < |S|``) certifies
infeasibility.

Two propagation fronts complement the exact classification:

* :func:`propagate_degree_k` — generalized degree-``k`` elimination
  ("naked subsets"): ``m <= k`` nodes whose candidate sets all fit
  inside one witness node's candidate set of size ``m`` reserve those
  candidates, so every outside edge into the set is forbidden.
  ``k = 1`` degenerates to Figure 7's degree-1 cascade.
* :func:`reduced_blocks` — connected components of the *undecided*
  subgraph, which is what the exact engine actually has to count over
  once forced pairs and forbidden edges are peeled off (removing them
  changes neither the permanent nor the surviving marginals).

Everything here is exact integer arithmetic and deterministic
(ascending-index iteration throughout); all loops poll an optional
:class:`~repro.budget.ComputeBudget`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.budget import ComputeBudget
from repro.errors import GraphError
from repro.graph.bipartite import MappingSpace
from repro.graph.blocks import Block, _UnionFind
from repro.graph.matching import hopcroft_karp

__all__ = [
    "EdgeClassification",
    "DegreeKResult",
    "classify_adjacency",
    "classify_edges",
    "propagate_degree_k",
    "reduced_blocks",
]

#: Mirrors the guard of :func:`repro.graph.propagation.propagate_degree_one`.
_DEFAULT_MAX_EDGES = 5_000_000

FORCED = "forced"
FORBIDDEN = "forbidden"
UNDECIDED = "undecided"
NON_EDGE = "non-edge"


@dataclass(frozen=True)
class EdgeClassification:
    """Complete forced/forbidden/undecided partition of a graph's edges.

    Attributes
    ----------
    n:
        Domain size (items on each side).
    forced:
        Item -> anon pairs present in every perfect matching.  Empty
        when the graph is infeasible.
    undecided:
        Per item, the anon indices whose edges appear in some but not
        all perfect matchings.
    forbidden:
        Per item, the anon indices whose edges appear in *no* perfect
        matching.  When the whole graph is infeasible every edge is
        classified forbidden.
    infeasible:
        True when no perfect matching exists (Hall's condition fails).
    hall_witness:
        When infeasible, a set ``S`` of item indices with
        ``|N(S)| < |S|`` certifying it; ``None`` otherwise.
    reason:
        Human-readable account of the infeasibility, when any.
    """

    n: int
    forced: dict[int, int]
    undecided: tuple[frozenset[int], ...]
    forbidden: tuple[frozenset[int], ...]
    infeasible: bool
    hall_witness: tuple[int, ...] | None = None
    reason: str | None = None

    @property
    def n_forced(self) -> int:
        return len(self.forced)

    @property
    def n_forbidden(self) -> int:
        return sum(len(anons) for anons in self.forbidden)

    @property
    def n_undecided(self) -> int:
        return sum(len(anons) for anons in self.undecided)

    def status(self, item_index: int, anon_index: int) -> str:
        """One of ``"forced"``, ``"forbidden"``, ``"undecided"``, ``"non-edge"``."""
        if self.forced.get(item_index) == anon_index:
            return FORCED
        if anon_index in self.forbidden[item_index]:
            return FORBIDDEN
        if anon_index in self.undecided[item_index]:
            return UNDECIDED
        return NON_EDGE

    def forced_cracks(self, space: MappingSpace) -> int:
        """Forced pairs coinciding with the ground truth — certain cracks."""
        return sum(1 for i, j in self.forced.items() if space.true_partner(i) == j)


def _normalized_rows(
    adjacency: Sequence[Iterable[int]],
) -> tuple[list[frozenset[int]], int]:
    n = len(adjacency)
    rows: list[frozenset[int]] = []
    edges = 0
    for i, row in enumerate(adjacency):
        fs = frozenset(int(j) for j in row)
        if any(not 0 <= j < n for j in fs):
            raise GraphError(f"adjacency of item #{i} references an invalid index")
        rows.append(fs)
        edges += len(fs)
    return rows, edges


def _hall_witness(
    rows: Sequence[frozenset[int]],
    match_left: Sequence[int],
    match_right: Sequence[int],
    budget: ComputeBudget | None,
) -> tuple[int, ...]:
    """König-style witness: items alternating-reachable from a free item.

    The returned set ``S`` satisfies ``|N(S)| = |S| - (free items in S)``,
    hence ``|N(S)| < |S|`` whenever the matching is not perfect.
    """
    n = len(rows)
    reachable = [False] * n
    queue: deque[int] = deque()
    for u in range(n):
        if match_left[u] == -1:
            reachable[u] = True
            queue.append(u)
    while queue:
        if budget is not None:
            budget.checkpoint()
        u = queue.popleft()
        for j in sorted(rows[u]):
            w = match_right[j]
            if w != -1 and not reachable[w]:
                reachable[w] = True
                queue.append(w)
    return tuple(u for u in range(n) if reachable[u])


def _strongly_connected_components(
    arcs: Sequence[Sequence[int]], budget: ComputeBudget | None
) -> list[int]:
    """Component id per node, via iterative Tarjan (deterministic ids)."""
    n = len(arcs)
    unvisited = -1
    index_of = [unvisited] * n
    low_link = [0] * n
    on_stack = [False] * n
    component = [unvisited] * n
    stack: list[int] = []
    counter = 0
    n_components = 0
    for root in range(n):
        if index_of[root] != unvisited:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            if budget is not None:
                budget.checkpoint()
            node, child_pos = work[-1]
            if child_pos == 0:
                index_of[node] = low_link[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            children = arcs[node]
            for pos in range(child_pos, len(children)):
                child = children[pos]
                if index_of[child] == unvisited:
                    work[-1] = (node, pos + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child] and index_of[child] < low_link[node]:
                    low_link[node] = index_of[child]
            if advanced:
                continue
            work.pop()
            if low_link[node] == index_of[node]:
                while True:
                    if budget is not None:
                        budget.checkpoint()
                    member = stack.pop()
                    on_stack[member] = False
                    component[member] = n_components
                    if member == node:
                        break
                n_components += 1
            if work:
                parent = work[-1][0]
                if low_link[node] < low_link[parent]:
                    low_link[parent] = low_link[node]
    return component


def classify_adjacency(
    adjacency: Sequence[Iterable[int]],
    budget: ComputeBudget | None = None,
) -> EdgeClassification:
    """Classify every edge of an explicit bipartite adjacency.

    ``adjacency[i]`` lists the anon indices item ``i`` may map to; the
    graph is square (``n_right = len(adjacency)``).
    """
    rows, _ = _normalized_rows(adjacency)
    n = len(rows)
    if budget is not None:
        budget.poll()
    match_left, match_right, size = hopcroft_karp([sorted(row) for row in rows], n)
    if size < n:
        witness = _hall_witness(rows, match_left, match_right, budget)
        neighbourhood: set[int] = set()
        for u in witness:
            neighbourhood |= rows[u]
        return EdgeClassification(
            n=n,
            forced={},
            undecided=tuple(frozenset() for _ in range(n)),
            forbidden=tuple(rows),
            infeasible=True,
            hall_witness=witness,
            reason=(
                f"Hall's condition fails: {len(witness)} items share only "
                f"{len(neighbourhood)} candidates"
            ),
        )

    # Residual digraph on items: u -> v iff u has an edge into v's
    # matched anon.  Edge classification reads off its SCCs.
    owner = match_right  # anon j is held by item owner[j]
    arcs: list[list[int]] = []
    for u in range(n):
        if budget is not None:
            budget.checkpoint(weight=len(rows[u]))
        targets = {owner[j] for j in rows[u]}
        targets.discard(u)
        arcs.append(sorted(targets))
    component = _strongly_connected_components(arcs, budget)
    component_size = [0] * n
    for u in range(n):
        component_size[component[u]] += 1

    forced: dict[int, int] = {}
    undecided: list[frozenset[int]] = []
    forbidden: list[frozenset[int]] = []
    for u in range(n):
        if budget is not None:
            budget.checkpoint(weight=len(rows[u]))
        free: set[int] = set()
        banned: set[int] = set()
        for j in rows[u]:
            v = owner[j]
            if v == u:
                if component_size[component[u]] == 1:
                    forced[u] = j
                else:
                    free.add(j)
            elif component[u] == component[v]:
                free.add(j)
            else:
                banned.add(j)
        undecided.append(frozenset(free))
        forbidden.append(frozenset(banned))
    return EdgeClassification(
        n=n,
        forced=forced,
        undecided=tuple(undecided),
        forbidden=tuple(forbidden),
        infeasible=False,
    )


def classify_edges(
    space: MappingSpace,
    budget: ComputeBudget | None = None,
    max_edges: int = _DEFAULT_MAX_EDGES,
) -> EdgeClassification:
    """Classify every edge of a mapping space (explicit or frequency).

    Builds an explicit adjacency first, guarded by *max_edges* exactly
    like :func:`repro.graph.propagation.propagate_degree_one`.
    """
    total_edges = space.edge_count()
    if total_edges > max_edges:
        raise GraphError(
            f"edge classification needs an explicit adjacency; {total_edges} "
            f"edges exceed the {max_edges}-edge guard (raise max_edges to override)"
        )
    return classify_adjacency(
        [tuple(space.candidates(i)) for i in range(space.n)], budget=budget
    )


@dataclass(frozen=True)
class DegreeKResult:
    """Outcome of generalized degree-``k`` (naked-subset) propagation.

    Attributes
    ----------
    forced:
        Item -> anon pairs pinned by singleton subsets (``k = 1``).
    removed:
        Edges ``(item, anon)`` proven forbidden by subset reservation,
        in ascending order.
    adjacency:
        The pruned item-side adjacency after the fixpoint.
    infeasible:
        True when some reserved subset was over-subscribed (more nodes
        than candidates) or a node ran out of candidates.
    """

    forced: dict[int, int]
    removed: tuple[tuple[int, int], ...]
    adjacency: tuple[frozenset[int], ...]
    infeasible: bool

    @property
    def n_removed(self) -> int:
        return len(self.removed)


def propagate_degree_k(
    adjacency: Sequence[Iterable[int]],
    k: int = 3,
    budget: ComputeBudget | None = None,
) -> DegreeKResult:
    """Naked-subset elimination up to subsets of size *k*, both sides.

    Whenever the candidate set ``S`` of some node has ``|S| = m <= k``
    and exactly ``m`` nodes keep all their candidates inside ``S``,
    those ``m`` nodes reserve ``S``: every other node's edge into ``S``
    is forbidden.  With ``k = 1`` this is precisely Figure 7's degree-1
    propagation; larger ``k`` also resolves e.g. twin items sharing a
    2-candidate pool.  Runs to a fixpoint, alternating sides;
    deterministic and exact.
    """
    if k < 1:
        raise GraphError(f"degree-k propagation needs k >= 1, got {k}")
    rows, _ = _normalized_rows(adjacency)
    n = len(rows)
    item_adj: list[set[int]] = [set(row) for row in rows]
    anon_adj: list[set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for j in item_adj[i]:
            anon_adj[j].add(i)

    forced: dict[int, int] = {}
    removed: set[tuple[int, int]] = set()
    infeasible = False
    changed = True
    while changed and not infeasible:
        if budget is not None:
            budget.poll()
        changed = False
        for side_is_item in (True, False):
            near = item_adj if side_is_item else anon_adj
            far = anon_adj if side_is_item else item_adj
            witnesses: dict[frozenset[int], int] = {}
            for u in range(n):
                if budget is not None:
                    budget.checkpoint()
                if 0 < len(near[u]) <= k:
                    witnesses.setdefault(frozenset(near[u]), u)
                elif not near[u]:
                    infeasible = True
            for pool in sorted(witnesses, key=sorted):
                if budget is not None:
                    budget.checkpoint(weight=n)
                members = [u for u in range(n) if near[u] and near[u] <= pool]
                if len(members) > len(pool):
                    infeasible = True
                    break
                if len(members) < len(pool):
                    continue
                member_set = set(members)
                for v in sorted(pool):
                    for u in sorted(far[v] - member_set):
                        edge = (u, v) if side_is_item else (v, u)
                        removed.add(edge)
                        near[u].discard(v)
                        far[v].discard(u)
                        changed = True
                        if not near[u]:
                            infeasible = True
            if infeasible:
                break

    for i in range(n):
        if len(item_adj[i]) == 1:
            (j,) = item_adj[i]
            if len(anon_adj[j]) == 1:
                forced[i] = j
    return DegreeKResult(
        forced=forced,
        removed=tuple(sorted(removed)),
        adjacency=tuple(frozenset(row) for row in item_adj),
        infeasible=infeasible,
    )


def reduced_blocks(classification: EdgeClassification) -> tuple[Block, ...]:
    """Connected components of the *undecided* subgraph.

    Forced pairs and forbidden edges are peeled off first — removing
    them changes neither the matching count nor the surviving items'
    marginals, so these blocks are exactly what an exact engine still
    has to count over.  Items whose edges are all decided do not appear
    in any block.
    """
    n = classification.n
    uf = _UnionFind(2 * n)
    active = [False] * n
    for i, anons in enumerate(classification.undecided):
        for j in anons:
            uf.union(i, n + j)
            active[i] = True
    components: dict[int, tuple[list[int], list[int]]] = {}
    for i in range(n):
        if active[i]:
            items, _ = components.setdefault(uf.find(i), ([], []))
            items.append(i)
    for j in range(n):
        anons_holder = components.get(uf.find(n + j))
        if anons_holder is not None:
            anons_holder[1].append(j)
    blocks: list[Block] = []
    for _, (items, anons) in sorted(components.items()):
        if items:
            blocks.append(
                Block(item_indices=tuple(items), anon_indices=tuple(anons))
            )
    return tuple(blocks)

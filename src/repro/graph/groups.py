"""Group structures over the two sides of the mapping space.

The paper analyzes crack mappings through two partitions (Section 3.2,
Figure 3(b)):

* **frequency groups** — anonymized items grouped by observed frequency
  (:class:`ObservedGroups`); and
* **belief groups** — original items grouped by *which set of frequency
  groups* their belief interval admits (:class:`BeliefGroupPartition`).

Because a belief interval is an interval, the admissible frequency groups
of an item always form a *contiguous run* ``[g_lo, g_hi)`` of the sorted
group frequencies — the key fact behind the ``O(n log n)`` O-estimate
(Figure 5) and the chain analysis (Section 4.2).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["ObservedGroups", "BeliefGroupPartition", "BeliefGroup"]


class ObservedGroups:
    """Anonymized items grouped by observed frequency.

    Parameters
    ----------
    observed:
        Sequence of observed frequencies, indexed by anonymized-item index.
    """

    __slots__ = ("freqs", "counts", "prefix", "members", "group_of")

    def __init__(self, observed: Sequence[float]) -> None:
        by_freq: dict[float, list[int]] = defaultdict(list)
        for j, f in enumerate(observed):
            by_freq[float(f)].append(j)
        self.freqs: tuple[float, ...] = tuple(sorted(by_freq))
        self.members: tuple[tuple[int, ...], ...] = tuple(
            tuple(by_freq[f]) for f in self.freqs
        )
        self.counts: np.ndarray = np.array([len(m) for m in self.members], dtype=np.int64)
        # prefix[g] = number of anonymized items in groups 0..g-1
        self.prefix: np.ndarray = np.concatenate(([0], np.cumsum(self.counts)))
        self.group_of: np.ndarray = np.empty(len(observed), dtype=np.int64)
        for g, member_list in enumerate(self.members):
            for j in member_list:
                self.group_of[j] = g

    def __len__(self) -> int:
        """Number of distinct frequency groups ``k``."""
        return len(self.freqs)

    def group_range(self, low: float, high: float) -> tuple[int, int]:
        """Indices ``[g_lo, g_hi)`` of the groups with frequency in ``[low, high]``."""
        g_lo = bisect_left(self.freqs, low)
        g_hi = bisect_right(self.freqs, high)
        return g_lo, g_hi

    def count_in_range(self, low: float, high: float) -> int:
        """Number of anonymized items with observed frequency in ``[low, high]``.

        This is the outdegree ``O_x`` of an item whose belief interval is
        ``[low, high]`` — computed with two binary searches and a prefix
        sum, as the efficient implementation of Figure 5 requires.
        """
        g_lo, g_hi = self.group_range(low, high)
        return int(self.prefix[g_hi] - self.prefix[g_lo])

    def group_index_of_frequency(self, frequency: float) -> int | None:
        """Group index whose frequency equals *frequency* exactly, else ``None``."""
        g = bisect_left(self.freqs, frequency)
        if g < len(self.freqs) and self.freqs[g] == frequency:
            return g
        return None


@dataclass(frozen=True)
class BeliefGroup:
    """A maximal set of items admitting the same run of frequency groups."""

    group_range: tuple[int, int]
    items: tuple[int, ...]

    @property
    def n_admissible_groups(self) -> int:
        return self.group_range[1] - self.group_range[0]


class BeliefGroupPartition:
    """Original items partitioned by admissible frequency-group run.

    Two items belong to the same belief group exactly when the same set of
    anonymized items can map to them (paper, Section 3.2).  With interval
    beliefs that set is determined by the run ``[g_lo, g_hi)``.

    Parameters
    ----------
    runs:
        Per-item ``(g_lo, g_hi)`` admissible runs, indexed by item index.
    """

    __slots__ = ("groups",)

    def __init__(self, runs: Sequence[tuple[int, int]]) -> None:
        by_run: dict[tuple[int, int], list[int]] = defaultdict(list)
        for i, run in enumerate(runs):
            by_run[run].append(i)
        ordered = sorted(by_run.items())
        self.groups: tuple[BeliefGroup, ...] = tuple(
            BeliefGroup(group_range=run, items=tuple(items)) for run, items in ordered
        )

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[BeliefGroup]:
        return iter(self.groups)

    def is_chain(self, n_frequency_groups: int) -> bool:
        """True when the partition forms a *chain* (paper, Section 4.2).

        A chain requires every belief group to admit either exactly one
        frequency group or two *successive* frequency groups, with every
        frequency group reachable.
        """
        covered = set()
        for group in self.groups:
            g_lo, g_hi = group.group_range
            width = g_hi - g_lo
            if width not in (1, 2):
                return False
            covered.update(range(g_lo, g_hi))
        return covered == set(range(n_frequency_groups))

"""Consecutive-ones permanent DP over the frequency-group structure.

Interval beliefs give the bipartite adjacency matrix the *consecutive
ones* property: sort the anonymized items by observed frequency and each
original item's candidate set is a contiguous run of frequency groups
(:meth:`~repro.graph.bipartite.FrequencyMappingSpace.admissible_run`).
Two consequences, exploited here:

* anonymized items inside one frequency group are interchangeable, so a
  perfect matching factorizes into an item-to-*group* assignment
  (respecting group capacities) times uniform within-group bijections —
  every capacity-respecting assignment is realized by exactly
  ``prod_g c_g!`` matchings;
* the admissible runs are intervals, so assignments can be counted by a
  left-to-right sweep over the groups whose state is only the *pending*
  items classified by deadline (the group index at which their run ends).

That turns the #P-complete permanent into a polynomial DP whenever the
run widths stay modest — which interval belief functions guarantee in
practice (``delta_med`` beliefs span 2–3 groups).  All counting is done
in exact Python integers, so results are bit-identical to Ryser wherever
both apply.

The DP state space is bounded by an explicit budget
(:class:`DPBudget`); pathological instances (very wide runs over large
dense segments) raise :class:`~repro.errors.GraphError` instead of
silently consuming the machine, letting callers fall back to the
O-estimate or MCMC rungs of the strategy ladder.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Generic, Iterator, Mapping, TypeVar

import numpy as np

from repro.budget import ComputeBudget
from repro.errors import GraphError

__all__ = [
    "DPBudget",
    "assignment_count",
    "class_pin_counts",
    "class_placement_totals",
    "clear_dp_memo",
    "crack_law",
    "dp_memo_stats",
]

Run = tuple[int, int]

_K = TypeVar("_K")
_V = TypeVar("_V")


class _Memo(Generic[_K, _V]):
    """Tiny thread-safe LRU used for the module-level DP memos.

    The DP results are pure functions of their (hashable) instance keys,
    so a process-wide memo is sound; the lock makes it safe under the
    assessment service's worker threads.
    """

    def __init__(self, maxsize: int) -> None:
        self._data: OrderedDict[_K, _V] = OrderedDict()
        self._lock = threading.Lock()
        self._maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def get(self, key: _K) -> _V | None:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: _K, value: _V) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


_ClassKey = tuple[tuple[Run, int], ...]
_ProblemKey = tuple[tuple[int, ...], _ClassKey, int, int]
_CountState = tuple[tuple[int, int], ...]
_LayerKey = tuple[int, tuple[int, ...], tuple[tuple[int, int, int], ...], int, int]
_LayerValue = tuple[tuple[tuple[_CountState, int], ...], int]

#: Full-result memos: sweeping tolerances or re-running the strategy
#: ladder hands the DP byte-identical instances over and over.  Keys
#: include the DPBudget work bounds so a budget that *would* have raised
#: GraphError still raises deterministically.
_COUNT_MEMO: _Memo[_ProblemKey, int] = _Memo(maxsize=2048)
_TOTALS_MEMO: _Memo[_ProblemKey, tuple[int, tuple[tuple[tuple[Run, int], int], ...]]] = _Memo(maxsize=512)

#: Prefix-layer cache for :func:`assignment_count`: layer ``g`` (the
#: state set after placing groups ``0..g-1``) is a pure function of the
#: runs arriving before group ``g`` and of the capacities up to the
#: deepest deadline those runs can reach (Hall pruning consults future
#: capacity prefixes — hence the lookahead in the key).  Near-identical
#: instances — a :func:`class_pin_counts` pin late in the segment, a
#: tolerance step that only widens late runs — resume from the deepest
#: shared layer instead of re-sweeping from group 0.
_LAYER_MEMO: _Memo[_LayerKey, _LayerValue] = _Memo(maxsize=4096)


def _problem_key(
    capacities: tuple[int, ...], classes: Mapping[Run, int], budget: DPBudget
) -> _ProblemKey:
    canonical = tuple(sorted((run, count) for run, count in classes.items() if count))
    return (capacities, canonical, budget.max_states, budget.max_ops)


def _layer_keys(
    capacities: tuple[int, ...],
    arrivals: list[list[tuple[int, int]]],
    budget: DPBudget,
) -> list[_LayerKey | None]:
    """Cache key per DP layer (index = number of groups already placed)."""
    k = len(capacities)
    keys: list[_LayerKey | None] = [None] * (k + 1)
    signature: list[tuple[int, int, int]] = []
    deepest = 0
    for g in range(1, k + 1):
        for hi, count in sorted(arrivals[g - 1]):
            signature.append((g - 1, hi, count))
            deepest = max(deepest, hi)
        depth = max(g, deepest)
        keys[g] = (
            g,
            capacities[:depth],
            tuple(signature),
            budget.max_states,
            budget.max_ops,
        )
    return keys


def clear_dp_memo() -> None:
    """Drop every memoized DP result and layer (tests, benchmarks)."""
    _COUNT_MEMO.clear()
    _TOTALS_MEMO.clear()
    _LAYER_MEMO.clear()


def dp_memo_stats() -> dict[str, int]:
    """Hit/miss/size counters for the three DP memos."""
    return {
        "count_hits": _COUNT_MEMO.hits,
        "count_misses": _COUNT_MEMO.misses,
        "count_size": len(_COUNT_MEMO),
        "totals_hits": _TOTALS_MEMO.hits,
        "totals_misses": _TOTALS_MEMO.misses,
        "totals_size": len(_TOTALS_MEMO),
        "layer_hits": _LAYER_MEMO.hits,
        "layer_misses": _LAYER_MEMO.misses,
        "layer_size": len(_LAYER_MEMO),
    }


@dataclass(frozen=True)
class DPBudget:
    """Work bounds for one DP sweep.

    ``max_states`` caps the number of simultaneous pending-profile states
    per group; ``max_ops`` caps the total number of state transitions.
    Either being exceeded raises :class:`~repro.errors.GraphError`.

    ``compute`` optionally attaches a wall-clock
    :class:`~repro.budget.ComputeBudget`, polled every ~2048 transitions,
    so deadline-bearing callers can cancel a DP sweep cooperatively
    (raising :class:`~repro.errors.BudgetExceeded` rather than
    :class:`~repro.errors.GraphError`).
    """

    max_states: int = 50_000
    max_ops: int = 5_000_000
    compute: ComputeBudget | None = None

    def tick(self, ops: int) -> None:
        """Poll the attached compute budget (cheap; call per transition)."""
        if self.compute is not None and not (ops & 2047):
            self.compute.checkpoint(2048)


#: Default budget: generous enough for every realistic interval-belief
#: workload, small enough to fail fast on adversarial widths.
DEFAULT_BUDGET = DPBudget()


def _check_problem(capacities: tuple[int, ...], classes: Mapping[Run, int]) -> int:
    k = len(capacities)
    total = 0
    for (lo, hi), count in classes.items():
        if count < 0:
            raise GraphError(f"negative class count for run {(lo, hi)}")
        if not 0 <= lo < hi <= k:
            raise GraphError(f"run {(lo, hi)} outside the {k}-group segment")
        total += count
    return total


def _compositions(
    available: list[int], amount: int
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """Yield ``(ways, chosen)`` for every way to draw *amount* items.

    *available* lists per-class pending counts; *chosen* is the per-class
    draw and *ways* the product of binomials.  Classes are
    interchangeable inside, hence the binomial weights.
    """
    n_classes = len(available)
    suffix = [0] * (n_classes + 1)
    for index in range(n_classes - 1, -1, -1):
        suffix[index] = suffix[index + 1] + available[index]
    chosen = [0] * n_classes

    def rec(index: int, remaining: int, ways: int) -> Iterator[tuple[int, tuple[int, ...]]]:
        if remaining > suffix[index]:
            return
        if index == n_classes:
            yield ways, tuple(chosen)
            return
        upper = min(available[index], remaining)
        lower = max(0, remaining - suffix[index + 1])
        for take in range(lower, upper + 1):
            chosen[index] = take
            yield from rec(
                index + 1, remaining - take, ways * math.comb(available[index], take)
            )
        chosen[index] = 0

    yield from rec(0, amount, 1)


def _prune_pending(
    pending: tuple[tuple[int, int], ...],
    capacity_prefix: list[int],
    g: int,
) -> bool:
    """Hall-style feasibility of a pending profile after filling group *g*.

    For every deadline ``d``, the pending items that must land in groups
    ``g+1 .. d-1`` may not exceed those groups' total capacity.  Pruning
    infeasible profiles early keeps the state space tight.
    """
    cumulative = 0
    for deadline, count in pending:  # sorted by deadline
        cumulative += count
        room = capacity_prefix[deadline] - capacity_prefix[g + 1]
        if cumulative > room:
            return False
    return True


def assignment_count(
    capacities: tuple[int, ...],
    classes: Mapping[Run, int],
    budget: DPBudget = DEFAULT_BUDGET,
) -> int:
    """Count capacity-respecting item-to-group assignments, exactly.

    Parameters
    ----------
    capacities:
        Number of anonymized items per group (the group sizes), in
        left-to-right frequency order.
    classes:
        Item counts per admissible run ``(lo, hi)`` — item classes with
        identical runs are interchangeable.
    budget:
        DP work bounds.

    Returns
    -------
    The number of ways to assign every item to one group of its run such
    that group ``g`` receives exactly ``capacities[g]`` items.  Multiply
    by ``prod_g capacities[g]!`` for the matching count (the permanent).
    """
    capacities = tuple(int(c) for c in capacities)
    k = len(capacities)
    total_items = _check_problem(capacities, classes)
    if total_items != sum(capacities):
        return 0

    problem_key = _problem_key(capacities, classes, budget)
    memoized = _COUNT_MEMO.get(problem_key)
    if memoized is not None:
        return memoized

    arrivals: list[list[tuple[int, int]]] = [[] for _ in range(k)]
    for (lo, hi), count in classes.items():
        if count:
            arrivals[lo].append((hi, count))

    capacity_prefix = [0] * (k + 1)
    for g in range(k):
        capacity_prefix[g + 1] = capacity_prefix[g] + capacities[g]

    # State: tuple of (deadline, pending-count), sorted by deadline.
    states: dict[tuple[tuple[int, int], ...], int] = {(): 1}
    ops = 0
    start = 0
    layer_keys = _layer_keys(capacities, arrivals, budget)
    for g in range(k, 0, -1):
        key = layer_keys[g]
        cached = _LAYER_MEMO.get(key) if key is not None else None
        if cached is not None:
            # Resume the sweep from the deepest shared layer; the stored
            # ops total keeps the work-budget accounting deterministic.
            states = dict(cached[0])
            ops = cached[1]
            start = g
            break
    for g in range(start, k):
        if arrivals[g]:
            merged: dict[tuple[tuple[int, int], ...], int] = {}
            for state, ways in states.items():
                pending = dict(state)
                for hi, count in arrivals[g]:
                    pending[hi] = pending.get(hi, 0) + count
                key = tuple(sorted(pending.items()))
                merged[key] = merged.get(key, 0) + ways
            states = merged

        next_states: dict[tuple[tuple[int, int], ...], int] = {}
        need = capacities[g]
        for state, ways in states.items():
            pending = dict(state)
            forced = pending.pop(g + 1, 0)
            if forced > need:
                continue
            rest = sorted(pending.items())
            available = [count for _, count in rest]
            for choice_ways, chosen in _compositions(available, need - forced):
                ops += 1
                budget.tick(ops)
                if ops > budget.max_ops:
                    raise GraphError(
                        "interval-DP op budget exceeded "
                        f"({budget.max_ops} transitions) — runs too wide for "
                        "exact counting; fall back to the O-estimate or MCMC"
                    )
                remainder = tuple(
                    (deadline, count - take)
                    for (deadline, count), take in zip(rest, chosen)
                    if count - take
                )
                if not _prune_pending(remainder, capacity_prefix, g):
                    continue
                next_states[remainder] = (
                    next_states.get(remainder, 0) + ways * choice_ways
                )
        states = next_states
        if len(states) > budget.max_states:
            raise GraphError(
                f"interval-DP state budget exceeded ({budget.max_states} "
                "profiles) — runs too wide for exact counting; fall back "
                "to the O-estimate or MCMC"
            )
        key = layer_keys[g + 1]
        if key is not None:
            # A completed layer is a valid resume point even if a later
            # group exhausts the budget, so store it unconditionally.
            _LAYER_MEMO.put(key, (tuple(states.items()), ops))
        if not states:
            result = 0
            break
    else:
        result = states.get((), 0)
    _COUNT_MEMO.put(problem_key, result)
    return result


def class_pin_counts(
    capacities: tuple[int, ...],
    classes: Mapping[Run, int],
    pins: list[tuple[Run, int]],
    budget: DPBudget = DEFAULT_BUDGET,
) -> dict[tuple[Run, int], int]:
    """Assignment counts with one item of a class pinned to a group.

    For each ``(run, group)`` pair in *pins*, counts the assignments of
    the remaining items when one item of *run* is already placed in
    *group* (so the class loses one item and the group one capacity
    slot).  The marginal probability that a specific item of *run* lands
    in *group* is the pinned count over :func:`assignment_count`.
    """
    results: dict[tuple[Run, int], int] = {}
    for run, group in pins:
        key = (run, group)
        if key in results:
            continue
        lo, hi = run
        if not lo <= group < hi or classes.get(run, 0) <= 0:
            results[key] = 0
            continue
        if capacities[group] <= 0:
            results[key] = 0
            continue
        reduced_classes = dict(classes)
        reduced_classes[run] -= 1
        if not reduced_classes[run]:
            del reduced_classes[run]
        reduced_capacities = list(capacities)
        reduced_capacities[group] -= 1
        results[key] = assignment_count(
            tuple(reduced_capacities), reduced_classes, budget=budget
        )
    return results


def class_placement_totals(
    capacities: tuple[int, ...],
    classes: Mapping[Run, int],
    budget: DPBudget = DEFAULT_BUDGET,
) -> tuple[int, dict[tuple[Run, int], int]]:
    """All placement totals in one forward–backward sweep.

    Returns ``(total, S)`` where *total* is :func:`assignment_count` and
    ``S[(run, g)]`` sums, over every capacity-respecting assignment, the
    number of *run*-class items placed in group ``g``.  The probability
    that one specific item of the class lands in ``g`` is then
    ``S[(run, g)] / (total * classes[run])`` — so one sweep yields every
    marginal, where pinning (:func:`class_pin_counts`) would re-run the
    DP once per ``(run, group)`` pair.

    Unlike :func:`assignment_count`, pending items are keyed by their
    *class*, not just their deadline — merging same-deadline classes
    would erase exactly the identity the marginals need.  All arithmetic
    is exact Python integers.
    """
    capacities = tuple(int(c) for c in capacities)
    k = len(capacities)
    total_items = _check_problem(capacities, classes)
    if total_items != sum(capacities):
        return 0, {}

    problem_key = _problem_key(capacities, classes, budget)
    memoized = _TOTALS_MEMO.get(problem_key)
    if memoized is not None:
        # Fresh dict per caller: the memo must survive caller mutation.
        return memoized[0], dict(memoized[1])

    arrivals: list[list[tuple[Run, int]]] = [[] for _ in range(k)]
    for run, count in classes.items():
        if count:
            arrivals[run[0]].append((run, count))

    capacity_prefix = [0] * (k + 1)
    for g in range(k):
        capacity_prefix[g + 1] = capacity_prefix[g] + capacities[g]

    _State = tuple[tuple[Run, int], ...]

    def merge_arrivals(state: "_State", g: int) -> "_State":
        if g >= k or not arrivals[g]:
            return state
        pending = dict(state)
        for run, count in arrivals[g]:
            pending[run] = pending.get(run, 0) + count
        return tuple(sorted(pending.items()))

    # Forward pass, materializing the trellis.  Layer g holds the states
    # entering group g's placement step (arrivals already merged).
    forward: list[dict[tuple, int]] = [dict() for _ in range(k + 1)]
    forward[0] = {merge_arrivals((), 0): 1}
    # transitions[g]: (pre_state, ways, placed per class, next pre_state)
    transitions: list[list[tuple[tuple, int, tuple, tuple]]] = [[] for _ in range(k)]
    ops = 0
    for g in range(k):
        need = capacities[g]
        layer = forward[g]
        nxt = forward[g + 1]
        for state, ways in layer.items():
            pending = dict(state)
            placed_forced: list[tuple[Run, int]] = []
            forced_total = 0
            for run in [r for r in pending if r[1] == g + 1]:
                count = pending.pop(run)
                placed_forced.append((run, count))
                forced_total += count
            if forced_total > need:
                continue
            rest = sorted(pending.items())
            available = [count for _, count in rest]
            for choice_ways, chosen in _compositions(available, need - forced_total):
                ops += 1
                budget.tick(ops)
                if ops > budget.max_ops:
                    raise GraphError(
                        "interval-DP op budget exceeded "
                        f"({budget.max_ops} transitions) — runs too wide for "
                        "exact marginals; fall back to the O-estimate or MCMC"
                    )
                remainder = tuple(
                    (run, count - take)
                    for (run, count), take in zip(rest, chosen)
                    if count - take
                )
                by_deadline: dict[int, int] = {}
                for (_, hi), count in remainder:
                    by_deadline[hi] = by_deadline.get(hi, 0) + count
                cumulative = 0
                feasible = True
                for deadline in sorted(by_deadline):
                    cumulative += by_deadline[deadline]
                    if cumulative > capacity_prefix[deadline] - capacity_prefix[g + 1]:
                        feasible = False
                        break
                if not feasible:
                    continue
                placed = tuple(
                    placed_forced
                    + [(run, take) for (run, _), take in zip(rest, chosen) if take]
                )
                next_state = merge_arrivals(remainder, g + 1)
                transitions[g].append((state, choice_ways, placed, next_state))
                nxt[next_state] = nxt.get(next_state, 0) + ways * choice_ways
        if len(nxt) > budget.max_states:
            raise GraphError(
                f"interval-DP state budget exceeded ({budget.max_states} "
                "profiles) — runs too wide for exact marginals; fall back "
                "to the O-estimate or MCMC"
            )
        if not nxt:
            _TOTALS_MEMO.put(problem_key, (0, ()))
            return 0, {}

    total = forward[k].get((), 0)
    if total == 0:
        _TOTALS_MEMO.put(problem_key, (0, ()))
        return 0, {}

    # Backward pass: completions from each layer state to the end.
    backward: list[dict[tuple, int]] = [dict() for _ in range(k + 1)]
    backward[k] = {(): 1}
    for g in range(k - 1, -1, -1):
        layer = backward[g]
        nxt = backward[g + 1]
        for state, ways, _, next_state in transitions[g]:
            completions = nxt.get(next_state)
            if completions:
                layer[state] = layer.get(state, 0) + ways * completions

    totals: dict[tuple[Run, int], int] = {}
    for g in range(k):
        fwd = forward[g]
        bwd = backward[g + 1]
        for state, ways, placed, next_state in transitions[g]:
            weight = fwd.get(state, 0) * ways * bwd.get(next_state, 0)
            if not weight:
                continue
            for run, take in placed:
                key = (run, g)
                totals[key] = totals.get(key, 0) + weight * take
    _TOTALS_MEMO.put(problem_key, (total, tuple(totals.items())))
    return total, totals


@lru_cache(maxsize=4096)
def _match_count_law(capacity: int, n_special: int) -> tuple[float, ...]:  # repro-lint: disable-function=EX004 -- probability boundary: exact rencontres Fractions rounded once on output
    """Law of the number of fixed special pairs in a uniform bijection.

    *capacity* items are paired uniformly with *capacity* slots;
    *n_special* of the items each have one designated slot (all
    distinct).  Returns ``P(exactly f special items hit their slot)`` for
    ``f = 0..n_special`` — the generalized rencontres distribution.
    """
    total = math.factorial(capacity)
    law = []
    for fixed in range(n_special + 1):
        free = n_special - fixed
        count = 0
        for misses in range(free + 1):
            count += (
                (-1) ** misses
                * math.comb(free, misses)
                * math.factorial(capacity - fixed - misses)
            )
        law.append(float(Fraction(math.comb(n_special, fixed) * count, total)))
    return tuple(law)


def crack_law(  # repro-lint: disable-function=EX001,EX002,EX004 -- probability layer: per-layer renormalized float polynomials (only ratios matter; see docstring)
    capacities: tuple[int, ...],
    refined_classes: Mapping[tuple[int, int, int | None], int],
    budget: DPBudget = DEFAULT_BUDGET,
) -> np.ndarray:
    """Exact law of the crack count within one block.

    *refined_classes* maps ``(lo, hi, true_group)`` to item counts, where
    ``true_group`` is the block-local group holding the item's true
    partner — or ``None`` when that group is outside the item's run (a
    non-compliant item, never cracked).

    The sweep mirrors :func:`assignment_count` but each state carries a
    probability-weighted polynomial in the crack count: filling group
    ``g`` with ``m`` items whose true group is ``g`` convolves in the
    generalized rencontres law of the uniform within-group bijection.
    Normalization happens per layer (only ratios matter), so the floats
    never overflow even though the underlying counts are astronomical.
    """
    capacities = tuple(int(c) for c in capacities)
    k = len(capacities)
    n_items = 0
    for (lo, hi, true_group), count in refined_classes.items():
        if not 0 <= lo < hi <= k:
            raise GraphError(f"run {(lo, hi)} outside the {k}-group segment")
        if true_group is not None and not lo <= true_group < hi:
            raise GraphError("true group must lie inside the run (or be None)")
        n_items += count
    if n_items != sum(capacities):
        raise GraphError("unbalanced block: item and capacity totals differ")

    arrivals: list[list[tuple[tuple[int, int | None], int]]] = [[] for _ in range(k)]
    for (lo, hi, true_group), count in refined_classes.items():
        if count:
            arrivals[lo].append(((hi, true_group), count))

    capacity_prefix = [0] * (k + 1)
    for g in range(k):
        capacity_prefix[g + 1] = capacity_prefix[g] + capacities[g]

    # State key: tuple of ((deadline, true_group), count); value: a
    # polynomial over crack counts (index = cracks), scaled arbitrarily.
    states: dict[tuple, np.ndarray] = {(): np.array([1.0])}
    ops = 0
    for g in range(k):
        if arrivals[g]:
            merged: dict[tuple, np.ndarray] = {}
            for state, poly in states.items():
                pending = dict(state)
                for cls, count in arrivals[g]:
                    pending[cls] = pending.get(cls, 0) + count
                key = _canonical(pending)
                _accumulate(merged, key, poly)
            states = merged

        next_states: dict[tuple, np.ndarray] = {}
        need = capacities[g]
        for state, poly in states.items():
            pending = dict(state)
            forced_hits = 0
            forced_total = 0
            for cls in [c for c in pending if c[0] == g + 1]:
                count = pending.pop(cls)
                forced_total += count
                if cls[1] == g:
                    forced_hits += count
            if forced_total > need:
                continue
            rest = sorted(pending.items(), key=lambda kv: (kv[0][0], kv[0][1] is None, kv[0][1] or 0))
            available = [count for _, count in rest]
            for choice_ways, chosen in _compositions(available, need - forced_total):
                ops += 1
                budget.tick(ops)
                if ops > budget.max_ops:
                    raise GraphError(
                        "interval-DP op budget exceeded while building the "
                        "crack law — fall back to simulation"
                    )
                hits = forced_hits + sum(
                    take for (cls, _), take in zip(rest, chosen) if cls[1] == g
                )
                remainder = {
                    cls: count - take
                    for (cls, count), take in zip(rest, chosen)
                    if count - take
                }
                if not _prune_deadlines(remainder, capacity_prefix, g):
                    continue
                # Retire true groups that are now in the past.
                retired: dict[tuple[int, int | None], int] = {}
                for (deadline, true_group), count in remainder.items():
                    cls = (deadline, true_group if (true_group is not None and true_group > g) else None)
                    retired[cls] = retired.get(cls, 0) + count
                key = _canonical(retired)
                contribution = float(choice_ways) * _convolve_hits(
                    poly, capacities[g], hits
                )
                _accumulate(next_states, key, contribution)
        states = next_states
        if len(states) > budget.max_states:
            raise GraphError(
                "interval-DP state budget exceeded while building the "
                "crack law — fall back to simulation"
            )
        if not states:
            raise GraphError("no consistent assignment exists for the block")
        # Per-layer renormalization: keeps magnitudes in float range.
        scale = max(float(poly.max()) for poly in states.values())
        if scale > 0 and (scale > 1e100 or scale < 1e-100):
            for key in states:
                states[key] = states[key] / scale

    final = states.get(())
    if final is None:
        raise GraphError("no consistent assignment exists for the block")
    law = np.zeros(n_items + 1, dtype=np.float64)
    law[: len(final)] = final
    total = law.sum()
    if total <= 0:
        raise GraphError("no consistent assignment exists for the block")
    return law / total


def _canonical(pending: Mapping[tuple[int, int | None], int]) -> tuple:
    return tuple(
        sorted(
            ((cls, count) for cls, count in pending.items() if count),
            key=lambda kv: (kv[0][0], kv[0][1] is None, kv[0][1] or 0),
        )
    )


def _prune_deadlines(
    pending: Mapping[tuple[int, int | None], int],
    capacity_prefix: list[int],
    g: int,
) -> bool:
    by_deadline: dict[int, int] = {}
    for (deadline, _), count in pending.items():
        by_deadline[deadline] = by_deadline.get(deadline, 0) + count
    cumulative = 0
    for deadline in sorted(by_deadline):
        cumulative += by_deadline[deadline]
        if cumulative > capacity_prefix[deadline] - capacity_prefix[g + 1]:
            return False
    return True


def _convolve_hits(poly: np.ndarray, capacity: int, n_special: int) -> np.ndarray:
    if n_special == 0:
        return poly
    law = np.asarray(_match_count_law(capacity, n_special))
    return np.convolve(poly, law)


def _accumulate(states: dict[tuple, np.ndarray], key: tuple, poly: np.ndarray) -> None:  # repro-lint: disable-function=EX004 -- probability layer: float crack-count polynomials
    existing = states.get(key)
    if existing is None:
        states[key] = np.array(poly, dtype=np.float64)
        return
    length = max(len(existing), len(poly))
    merged = np.zeros(length, dtype=np.float64)
    merged[: len(existing)] += existing
    merged[: len(poly)] += poly
    states[key] = merged

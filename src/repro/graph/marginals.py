"""Crack marginals: ``P(x is cracked)`` under a uniform consistent mapping.

The expected number of cracks is the sum of per-item crack
probabilities; this module computes the per-item values themselves,
which the attack workbench (:mod:`repro.attack`) and the risk profile
consume.  Three methods, dispatched by structure:

* **chain** — closed form: the boundary flows of a chain are forced, so
  a shared item maps to its true group with probability ``c_i/s_i`` or
  ``d_i/s_i`` and within the group uniformly (exact, ``O(n)``);
* **exact** — the structure-exploiting engine of
  :mod:`repro.graph.exact`: block decomposition plus interval DP on
  frequency blocks, Ryser minors on small explicit blocks;
* **mcmc** — indicator averages from the Gibbs sampler (general
  frequency spaces) or the swap sampler (explicit spaces).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, InfeasibleMatchingError, NotAChainError
from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace

__all__ = ["crack_marginals"]

#: ``auto`` runs the exact engine whenever its cost hint is below this —
#: calibrated so every space the historical ``n <= 11`` rule accepted
#: still runs exact, plus any larger space whose blocks are cheap.
_AUTO_EXACT_BUDGET = 5e6


def _chain_marginals(space: FrequencyMappingSpace) -> np.ndarray:
    from repro.core.chain import chain_from_space  # repro-lint: disable=LY002 -- strategy-ladder upcall: lazy, so graph stays importable without core

    spec = chain_from_space(space)  # raises NotAChainError when not a chain
    lower = spec.correct_to_lower()
    counts = space.groups.counts
    marginals = np.zeros(space.n, dtype=np.float64)
    for i in range(space.n):
        g_lo, g_hi = space.admissible_run(i)
        true_group = space.true_group(i)
        group_size = int(counts[true_group])
        if g_hi - g_lo == 1:
            marginals[i] = 1.0 / group_size
            continue
        boundary = g_lo
        s_i = spec.shared_sizes[boundary]
        c_i = lower[boundary]
        in_lower = true_group == boundary
        stay_probability = (c_i / s_i) if in_lower else ((s_i - c_i) / s_i)
        marginals[i] = stay_probability / group_size
    return marginals


def _exact_marginals(space: MappingSpace) -> np.ndarray:
    from repro.graph.exact import crack_marginals_exact

    try:
        return crack_marginals_exact(space)
    except InfeasibleMatchingError as error:
        raise GraphError("no consistent perfect matching exists") from error


def _mcmc_marginals(
    space: MappingSpace,
    n_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    from repro.simulation.gibbs import GibbsAssignmentSampler  # repro-lint: disable=LY002 -- strategy-ladder upcall: the mcmc method delegates to the simulator
    from repro.simulation.sampler import MatchingSampler  # repro-lint: disable=LY002 -- strategy-ladder upcall: the mcmc method delegates to the simulator

    hits = np.zeros(space.n, dtype=np.float64)
    if isinstance(space, FrequencyMappingSpace):
        sampler = GibbsAssignmentSampler(space, rng=rng)
        sampler.sweep(30)
        true_group = np.array([space.true_group(i) for i in range(space.n)])
        inv_size = 1.0 / space.groups.counts
        for _ in range(n_samples):
            sampler.sweep(2)
            assignment = sampler.assignment
            in_true = assignment == true_group
            # Rao-Blackwellized indicator: P(crack | group assignment).
            hits[in_true] += inv_size[true_group[in_true]]
    else:
        sampler = MatchingSampler(space, rng=rng)
        sampler.sweep(50)
        truth = [space.true_partner(i) for i in range(space.n)]
        for _ in range(n_samples):
            sampler.sweep(3)
            matching = sampler.matching
            for i in range(space.n):
                if matching[i] == truth[i]:
                    hits[i] += 1.0
    return hits / n_samples


def crack_marginals(
    space: MappingSpace,
    method: str = "auto",
    n_samples: int = 500,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Per-item crack probabilities under the uniform-mapping model.

    Parameters
    ----------
    space:
        The consistent-mapping space.
    method:
        ``"auto"`` (chain closed form if possible, exact if tiny, else
        MCMC), or one of ``"chain"``, ``"exact"``, ``"mcmc"``.
    n_samples, rng:
        MCMC budget and randomness.

    Returns
    -------
    Array aligned with ``space.items``; its sum is (an estimate of)
    ``E[X]``, and it agrees with :func:`expected_cracks_direct` exactly
    for the chain/exact methods.
    """
    rng = np.random.default_rng() if rng is None else rng
    if method not in ("auto", "chain", "exact", "mcmc"):
        raise GraphError(f"unknown marginal method {method!r}")
    if method == "chain" or method == "auto":
        if isinstance(space, FrequencyMappingSpace):
            try:
                return _chain_marginals(space)
            except NotAChainError:
                if method == "chain":
                    raise
        elif method == "chain":
            raise NotAChainError("chain marginals need a frequency mapping space")
    if method == "exact":
        return _exact_marginals(space)
    if method == "auto":
        from repro.graph.exact import exact_strategy

        plan = exact_strategy(space)
        if not plan.matchable:
            raise GraphError("no consistent perfect matching exists")
        if plan.feasible and plan.cost_hint <= _AUTO_EXACT_BUDGET:
            try:
                return _exact_marginals(space)
            except GraphError:
                pass  # DP budget blown mid-run: fall through to MCMC
    return _mcmc_marginals(space, n_samples, rng)

"""Block decomposition of a mapping space into independent components.

Perfect matchings factorize over the connected components of the
bipartite graph ``G = (J + I, E)``: a consistent crack mapping restricted
to a component is a perfect matching of that component, and every
combination of per-component matchings is a consistent mapping.  So the
permanent is a *product* over components, per-item crack marginals are
local to their component, and the law of the crack count is the
*convolution* of the per-component laws.

For :class:`~repro.graph.bipartite.FrequencyMappingSpace` the components
have extra structure: every item's candidate set is a contiguous run of
frequency groups (interval beliefs), so components are maximal *segments*
of the sorted frequency groups, split at every boundary no belief
interval spans.  That makes decomposition ``O(n + k)`` — no union-find
pass over edges, which may number ``Theta(n^2)``.

Explicit spaces fall back to a union-find over the actual edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace

__all__ = ["Block", "BlockDecomposition", "decompose"]


@dataclass(frozen=True)
class Block:
    """One connected component of the bipartite mapping graph.

    Attributes
    ----------
    item_indices:
        Original-item indices (global, ascending).
    anon_indices:
        Anonymized-item indices (global, ascending).
    group_range:
        For frequency spaces, the global frequency-group segment
        ``[a, b)`` the block covers; ``None`` for explicit spaces.
    """

    item_indices: tuple[int, ...]
    anon_indices: tuple[int, ...]
    group_range: tuple[int, int] | None = None

    @property
    def n(self) -> int:
        return len(self.item_indices)

    @property
    def balanced(self) -> bool:
        return len(self.item_indices) == len(self.anon_indices)


@dataclass(frozen=True)
class BlockDecomposition:
    """All components of a space, plus whether a perfect matching can exist.

    ``matchable`` is a cheap *necessary* condition (every component is
    balanced and every item has at least one candidate); when it is
    ``False`` the permanent is exactly 0 and every exact quantity is
    trivial.  When ``True``, a matching may still fail to exist (Hall's
    condition inside a block) — the per-block engines detect that.
    """

    blocks: tuple[Block, ...]
    matchable: bool
    reason: str | None = None

    @property
    def largest_block(self) -> int:
        return max((block.n for block in self.blocks), default=0)

    @property
    def block_sizes(self) -> tuple[int, ...]:
        return tuple(block.n for block in self.blocks)


def _decompose_frequency(space: FrequencyMappingSpace) -> BlockDecomposition:
    k = len(space.groups)
    runs = [space.admissible_run(i) for i in range(space.n)]
    for i, (g_lo, g_hi) in enumerate(runs):
        if g_hi <= g_lo:
            return BlockDecomposition(
                blocks=(),
                matchable=False,
                reason=f"item #{i} admits no frequency group (outdegree 0)",
            )
    # A boundary b (between groups b and b+1) is *spanned* when some
    # belief interval admits both sides; unspanned boundaries cut the
    # graph into independent segments.
    spanned = np.zeros(max(k - 1, 0), dtype=bool)
    for g_lo, g_hi in runs:
        if g_hi - g_lo >= 2:
            spanned[g_lo : g_hi - 1] = True
    cuts = [0] + [b + 1 for b in range(k - 1) if not spanned[b]] + [k]

    members = space.groups.members
    prefix = space.groups.prefix
    items_by_start: list[list[int]] = [[] for _ in range(k)]
    for i, (g_lo, _) in enumerate(runs):
        items_by_start[g_lo].append(i)

    blocks: list[Block] = []
    for a, b in zip(cuts, cuts[1:]):
        item_indices: list[int] = []
        for g in range(a, b):
            item_indices.extend(items_by_start[g])
        anon_indices: list[int] = []
        for g in range(a, b):
            anon_indices.extend(members[g])
        block = Block(
            item_indices=tuple(sorted(item_indices)),
            anon_indices=tuple(sorted(anon_indices)),
            group_range=(a, b),
        )
        if len(block.item_indices) != int(prefix[b] - prefix[a]):
            return BlockDecomposition(
                blocks=(),
                matchable=False,
                reason=(
                    f"groups [{a}, {b}) hold {int(prefix[b] - prefix[a])} anonymized "
                    f"items but {len(block.item_indices)} originals can map there"
                ),
            )
        blocks.append(block)
    return BlockDecomposition(blocks=tuple(blocks), matchable=True)


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx != ry:
            self.parent[ry] = rx


def _decompose_generic(space: MappingSpace) -> BlockDecomposition:
    n = space.n
    # Nodes 0..n-1 are items, n..2n-1 are anonymized items.
    uf = _UnionFind(2 * n)
    for i in range(n):
        degree = 0
        for j in space.candidates(i):
            uf.union(i, n + j)
            degree += 1
        if degree == 0:
            return BlockDecomposition(
                blocks=(),
                matchable=False,
                reason=f"item #{i} has no candidates (outdegree 0)",
            )
    components: dict[int, tuple[list[int], list[int]]] = {}
    for i in range(n):
        items, _ = components.setdefault(uf.find(i), ([], []))
        items.append(i)
    for j in range(n):
        _, anons = components.setdefault(uf.find(n + j), ([], []))
        anons.append(j)
    blocks = tuple(
        Block(item_indices=tuple(items), anon_indices=tuple(anons))
        for _, (items, anons) in sorted(components.items())
    )
    for block in blocks:
        if not block.balanced:
            return BlockDecomposition(
                blocks=blocks,
                matchable=False,
                reason=(
                    f"a component has {len(block.item_indices)} items but "
                    f"{len(block.anon_indices)} anonymized items"
                ),
            )
    return BlockDecomposition(blocks=blocks, matchable=True)


def decompose(space: MappingSpace) -> BlockDecomposition:
    """Split a mapping space into the connected components of its graph."""
    if isinstance(space, FrequencyMappingSpace):
        return _decompose_frequency(space)
    return _decompose_generic(space)

"""Vectorized exact Ryser kernels: chunked Gray-code walks in numpy.

:func:`ryser_int_python` is the historical reference — Ryser's formula
with Gray-code subset iteration, every add and multiply executed as
Python bytecode on arbitrary-precision ints.  Exact, but the interpreter
overhead (``~2n`` bytecode ops per subset) dominates the arithmetic.

:func:`ryser_int_chunked` evaluates the same ``2^n - 1`` subsets in
fixed-size batches: a chunk of Gray-code steps becomes one ``(C, n)``
signed column-update matrix, the running row sums become a single
``np.cumsum``, and the per-subset products collapse to ``np.prod`` calls
over row *segments*.  The exact-int invariant survives vectorization
through two guards:

* **int64 fast path** — per-row bounds ``R_i = Σ_j |a_ij|`` cap every
  possible row sum; rows are greedily packed into segments whose bound
  product stays below ``2^62``, so each segment's ``np.prod`` can never
  overflow a signed 64-bit lane.
* **exact combination** — segment products are multiplied and the chunk
  is summed in Python ints (object dtype) unless the whole chunk
  provably fits int64; the grand total across chunks is always a Python
  int.

When a single row's bound already exceeds 62 bits (astronomical
entries), the kernel falls back to the pure-Python reference — the
fast path is an optimization, never a semantics change, and the tests
pin bit-identity between the two.

:func:`permanent_batch` extends the same walk with a leading block axis:
equal-shape integral matrices (the small explicit blocks a decomposed
space produces) share one 3-D tensor pass instead of a per-block Python
loop — the win compounds with the per-subset vectorization because the
chunk work amortizes over every block at once.
"""

from __future__ import annotations

import numpy as np

from repro.budget import ComputeBudget
from repro.errors import GraphError

__all__ = [
    "CHUNK_SUBSETS",
    "CHUNKED_MIN_N",
    "ryser_int",
    "ryser_int_chunked",
    "ryser_int_python",
    "permanent_batch",
]

#: Gray-code steps evaluated per vectorized chunk.  Measured on the CI
#: container: throughput climbs until ~1024 steps (numpy dispatch
#: amortized) and flattens after, while the working set
#: (chunk x blocks x n int64) stays inside L2.
CHUNK_SUBSETS = 1024

#: Below this matrix size the 2^n walk is too short to amortize numpy
#: setup and the pure-Python loop wins (measured crossover n≈9–10).
CHUNKED_MIN_N = 10

#: A *batched* walk amortizes over the block axis too, so it pays off
#: whenever blocks x subsets reaches the single-matrix crossover's
#: subset count (2^10), provided the per-step tensors aren't degenerate.
BATCH_MIN_SUBSETS = 1 << CHUNKED_MIN_N
BATCH_MIN_N = 6

#: Signed products must stay clear of int64 overflow; one bit of
#: headroom below the 63 value bits keeps every lane provably safe.
_INT64_SAFE_BITS = 62


def ryser_int_python(matrix: np.ndarray, budget: ComputeBudget | None = None) -> int:
    """Ryser's formula in pure-Python exact-int arithmetic (reference).

    perm(A) = (-1)^n * sum over non-empty column subsets S of
    (-1)^|S| * prod_i sum_{j in S} a[i, j].  Gray-code iteration keeps a
    running row-sum vector so each subset costs O(n); arbitrary-precision
    ints make the alternating sum exact where a float version loses
    digits to cancellation.
    """
    n = matrix.shape[0]
    if n == 0:
        return 1
    columns = [[int(value) for value in matrix[:, j]] for j in range(n)]
    row_sums = [0] * n
    total = 0
    subset = 0
    subset_size = 0
    for counter in range(1, 1 << n):
        if budget is not None and not (counter & 255):
            budget.checkpoint(256)
        flip = (counter & -counter).bit_length() - 1  # lowest set bit of counter
        bit = 1 << flip
        column = columns[flip]
        if subset & bit:
            for i in range(n):
                row_sums[i] -= column[i]
            subset_size -= 1
        else:
            for i in range(n):
                row_sums[i] += column[i]
            subset_size += 1
        subset ^= bit
        product = 1
        for value in row_sums:
            if value == 0:
                product = 0
                break
            product *= value
        total += -product if subset_size % 2 else product
    return total if n % 2 == 0 else -total


def _as_exact_int64(matrix: np.ndarray) -> np.ndarray | None:
    """The matrix as a bit-exact int64 array, or ``None`` when it isn't.

    Integral float matrices (every adjacency matrix) convert exactly as
    long as the entries fit 53 bits; object arrays of big Python ints
    and out-of-range values return ``None`` so callers take the
    pure-Python path instead of silently truncating.
    """
    matrix = np.asarray(matrix)
    if matrix.dtype == np.int64:
        return matrix
    try:
        as_int = matrix.astype(np.int64)
    except (OverflowError, TypeError, ValueError):
        return None
    if matrix.dtype.kind == "f" and np.any(np.abs(matrix) >= 2**53):
        return None  # beyond float53, == comparison can't certify exactness
    if np.array_equal(as_int, matrix):
        return as_int
    return None


def _row_segments(row_bounds: list[int]) -> list[list[int]] | None:
    """Pack rows into segments whose bound product stays int64-safe.

    *row_bounds* holds ``R_i = Σ_j |a_ij|`` — no subset row sum can
    exceed it, so a segment with ``Σ bit_length(R_i) <= 62`` has
    ``|Π row_sums| < 2^62`` for every subset.  Returns ``None`` when one
    row alone blows the bound (the caller falls back to pure Python).
    """
    segments: list[list[int]] = []
    current: list[int] = []
    bits = 0
    for i, bound in enumerate(row_bounds):
        b = max(1, int(bound)).bit_length()
        if b > _INT64_SAFE_BITS:
            return None
        if bits + b > _INT64_SAFE_BITS and current:
            segments.append(current)
            current, bits = [], 0
        current.append(i)
        bits += b
    if current:
        segments.append(current)
    return segments


def _trailing_zeros(counters: np.ndarray) -> np.ndarray:
    """Vectorized count of trailing zero bits (the Gray flip index)."""
    flips = np.zeros(counters.shape, dtype=np.int64)
    rem = counters.copy()
    pending = (rem & 1) == 0
    while pending.any():
        flips[pending] += 1
        rem[pending] >>= 1
        pending &= (rem & 1) == 0
    return flips


def _segment_bits(row_bounds: list[int], rows: list[int]) -> int:
    return sum(max(1, int(row_bounds[i])).bit_length() for i in rows)


def _gray_walk_chunked(
    stack: np.ndarray,
    row_bounds: list[int],
    segments: list[list[int]],
    budget: ComputeBudget | None,
    chunk: int,
) -> list[int]:
    """The chunked Gray-code walk over a ``(blocks, n, n)`` int64 stack.

    Returns one exact permanent per block.  All chunk arithmetic is
    int64 inside the overflow-guarded segments; cross-segment products
    and the chunk sum run on Python ints (object dtype) unless the whole
    chunk provably fits a signed 64-bit accumulator.
    """
    n_blocks, n, _ = stack.shape
    totals = [0] * n_blocks
    # One int64 accumulator for the whole chunk is safe only when the
    # largest |signed product| times the chunk length cannot reach 2^63.
    chunk_bits = max(1, chunk - 1).bit_length()
    int64_sum_safe = (
        len(segments) == 1
        and _segment_bits(row_bounds, segments[0]) + chunk_bits <= _INT64_SAFE_BITS
    )
    row_sums = np.zeros((n_blocks, n), dtype=np.int64)
    counter = 1
    end = 1 << n
    while counter < end:
        hi = min(counter + chunk, end)
        if budget is not None:
            budget.checkpoint(hi - counter)
        steps = np.arange(counter, hi, dtype=np.int64)
        flips = _trailing_zeros(steps)
        gray = steps ^ (steps >> 1)
        directions = np.where((gray >> flips) & 1 == 1, 1, -1).astype(np.int64)
        # delta[t, b, :] = directions[t] * column flips[t] of block b
        delta = np.transpose(stack[:, :, flips], (2, 0, 1)) * directions[:, None, None]
        cumulative = row_sums[None, :, :] + np.cumsum(delta, axis=0)
        row_sums = cumulative[-1]
        # Subset-size parity alternates with the counter (each Gray step
        # toggles exactly one bit), so the Ryser sign is just counter&1.
        signs = np.where((steps & 1) == 1, -1, 1).astype(np.int64)
        first = np.prod(cumulative[:, :, segments[0]], axis=2)  # (C, B) int64
        first *= signs[:, None]  # |values| < 2^62, sign flip cannot overflow
        if int64_sum_safe:
            chunk_totals = first.sum(axis=0)  # provably < 2^63
            for b in range(n_blocks):
                totals[b] += int(chunk_totals[b])
        else:
            combined = first.astype(object)
            for rows in segments[1:]:
                combined = combined * np.prod(cumulative[:, :, rows], axis=2)
            chunk_totals = combined.sum(axis=0)
            for b in range(n_blocks):
                totals[b] += int(chunk_totals[b])
        counter = hi
    if n % 2:
        totals = [-t for t in totals]
    return totals


def ryser_int_chunked(
    matrix: np.ndarray,
    budget: ComputeBudget | None = None,
    chunk: int = CHUNK_SUBSETS,
) -> int:
    """Single-matrix chunked Ryser, bit-identical to the reference.

    Falls back to :func:`ryser_int_python` when the entries don't fit an
    exact int64 representation or a single row's bound already exceeds
    the overflow guard.
    """
    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    if n == 0:
        return 1
    ints = _as_exact_int64(matrix)
    if ints is None:
        return ryser_int_python(matrix, budget=budget)
    row_bounds = [int(v) for v in np.abs(ints.astype(object)).sum(axis=1)]
    segments = _row_segments(row_bounds)
    if segments is None:
        return ryser_int_python(matrix, budget=budget)
    return _gray_walk_chunked(ints[None, :, :], row_bounds, segments, budget, chunk)[0]


def ryser_int(matrix: np.ndarray, budget: ComputeBudget | None = None) -> int:
    """Exact single-block Ryser: chunked numpy kernel above the
    size threshold, the pure-Python reference below it."""
    matrix = np.asarray(matrix)
    if matrix.shape[0] < CHUNKED_MIN_N:
        return ryser_int_python(matrix, budget=budget)
    return ryser_int_chunked(matrix, budget=budget)


def permanent_batch(
    matrices: list[np.ndarray],
    budget: ComputeBudget | None = None,
    chunk: int = CHUNK_SUBSETS,
) -> list[int]:
    """Exact permanents of equal-shape integral matrices, one tensor pass.

    All matrices must be square and share one shape — callers group by
    shape first (see :func:`repro.graph.exact.count_matchings_exact`).
    The Gray-code walk runs once with a leading block axis, so the
    per-chunk numpy work is shared by every block.  Results are
    bit-identical to per-matrix :func:`ryser_int_python`; matrices that
    defeat the int64 guards are evaluated individually on the reference
    path.
    """
    if not matrices:
        return []
    arrays = [np.asarray(m) for m in matrices]
    shape = arrays[0].shape
    for array in arrays:
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise GraphError(
                f"permanent_batch needs square matrices, got shape {array.shape}"
            )
        if array.shape != shape:
            raise GraphError(
                f"permanent_batch needs equal shapes, got {array.shape} vs {shape}"
            )
    n = shape[0]
    if n == 0:
        return [1] * len(arrays)
    exact: list[np.ndarray | None] = [_as_exact_int64(a) for a in arrays]
    results: list[int | None] = [None] * len(arrays)
    batched: list[tuple[int, np.ndarray]] = []
    for index, ints in enumerate(exact):
        if ints is None:
            results[index] = ryser_int_python(arrays[index], budget=budget)
        else:
            batched.append((index, ints))
    if batched:
        stack = np.stack([ints for _, ints in batched])
        # A shared segmentation must be safe for every block: bound each
        # row by its maximum across the batch.
        bound_matrix = np.abs(stack.astype(object)).sum(axis=2)
        row_bounds = [int(v) for v in bound_matrix.max(axis=0)]
        segments = _row_segments(row_bounds)
        too_small = (
            n < BATCH_MIN_N or (1 << n) * len(batched) < BATCH_MIN_SUBSETS
        )
        if segments is None or too_small:
            for index, ints in batched:
                results[index] = ryser_int_python(ints, budget=budget)
        else:
            walked = _gray_walk_chunked(stack, row_bounds, segments, budget, chunk)
            for (index, _), value in zip(batched, walked):
                results[index] = value
    missing = [i for i, value in enumerate(results) if value is None]
    if missing:  # unreachable: every slot is assigned on one path above
        raise GraphError(f"permanent_batch left slots {missing} unevaluated")
    return [int(value) for value in results if value is not None]

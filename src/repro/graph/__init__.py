"""Consistent-mapping bipartite graphs (paper, Sections 2.3, 4.1, 5.2).

Given a belief function and the observed frequencies of the anonymized
items, the space of all consistent crack mappings is a bipartite graph
``G = (J + I, E)`` whose perfect matchings are exactly the crack mappings
the hacker may use.  This subpackage provides:

* :class:`~repro.graph.bipartite.FrequencyMappingSpace` — the compact
  frequency-group representation (scales to the largest benchmarks);
* :class:`~repro.graph.bipartite.ExplicitMappingSpace` — an explicit
  adjacency representation for arbitrary graphs (Section 8.1's
  generalization beyond frequent sets);
* exact machinery: matrix permanents (Ryser), matching enumeration, and
  maximum matching / feasibility checks;
* the structure-exploiting exact engine (:mod:`repro.graph.exact`):
  block decomposition plus a consecutive-ones permanent DP, dispatched
  by :func:`~repro.graph.exact.exact_strategy`;
* the degree-1 propagation procedure of Figure 7.
"""

from repro.graph.bipartite import (
    ExplicitMappingSpace,
    FrequencyMappingSpace,
    MappingSpace,
    space_from_anonymized,
    space_from_frequencies,
)
from repro.graph.blocks import Block, BlockDecomposition, decompose
from repro.graph.exact import (
    ExactPlan,
    count_matchings_exact,
    crack_distribution_exact,
    crack_marginals_exact,
    exact_strategy,
    expected_cracks_exact,
)
from repro.graph.groups import BeliefGroupPartition, ObservedGroups
from repro.graph.marginals import crack_marginals
from repro.graph.matching import (
    group_feasible_matching,
    has_perfect_matching,
    hopcroft_karp,
    maximum_matching,
)
from repro.graph.permanent import (
    count_matchings,
    crack_distribution,
    crack_distribution_permanent,
    enumerate_consistent_matchings,
    expected_cracks_direct,
    permanent,
)
from repro.graph.propagation import PropagationResult, propagate_degree_one
from repro.graph.refine import (
    DegreeKResult,
    EdgeClassification,
    classify_adjacency,
    classify_edges,
    propagate_degree_k,
    reduced_blocks,
)

__all__ = [
    "MappingSpace",
    "FrequencyMappingSpace",
    "ExplicitMappingSpace",
    "space_from_frequencies",
    "space_from_anonymized",
    "ObservedGroups",
    "BeliefGroupPartition",
    "hopcroft_karp",
    "crack_marginals",
    "maximum_matching",
    "has_perfect_matching",
    "group_feasible_matching",
    "permanent",
    "count_matchings",
    "expected_cracks_direct",
    "crack_distribution",
    "crack_distribution_permanent",
    "enumerate_consistent_matchings",
    "Block",
    "BlockDecomposition",
    "decompose",
    "ExactPlan",
    "exact_strategy",
    "count_matchings_exact",
    "expected_cracks_exact",
    "crack_marginals_exact",
    "crack_distribution_exact",
    "PropagationResult",
    "propagate_degree_one",
    "EdgeClassification",
    "DegreeKResult",
    "classify_adjacency",
    "classify_edges",
    "propagate_degree_k",
    "reduced_blocks",
]

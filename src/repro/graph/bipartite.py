"""Mapping spaces — the bipartite graph of consistent crack mappings.

A :class:`MappingSpace` represents the graph ``G = (J + I, E)`` of
Section 2.3: nodes are the anonymized items ``J`` and original items
``I``; the edge ``(x', y)`` is present when the hacker's belief about
``y`` admits the observed frequency of ``x'``.  Perfect matchings of
``G`` are exactly the consistent crack mappings.

Two implementations:

* :class:`FrequencyMappingSpace` — derives edges from belief intervals
  and observed frequencies on the fly, using the frequency-group
  structure; scales to tens of thousands of items.
* :class:`ExplicitMappingSpace` — an arbitrary adjacency structure, for
  the paper's Section 8.1 generalization (partial knowledge that is not
  frequency-based) and for adversarially-shaped test graphs like the
  staircase of Figure 6(a).

Both know the ground-truth pairing (the owner's secret anonymization
mapping), which analyses use to decide compliancy and to count cracks.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Hashable

import numpy as np

from repro.anonymize.database import AnonymizedDatabase
from repro.anonymize.mapping import AnonymizedItem
from repro.beliefs.function import BeliefFunction
from repro.errors import DomainMismatchError, GraphError
from repro.graph.groups import BeliefGroupPartition, ObservedGroups

__all__ = [
    "MappingSpace",
    "FrequencyMappingSpace",
    "ExplicitMappingSpace",
    "space_from_frequencies",
    "space_from_anonymized",
]

Item = Hashable


class MappingSpace(abc.ABC):
    """Abstract bipartite space of consistent crack mappings.

    Indices: original items are ``0..n-1`` in the order of :attr:`items`;
    anonymized items are ``0..n-1`` in the order of :attr:`anonymized`.
    """

    items: tuple[Item, ...]
    anonymized: tuple[Item, ...]

    @property
    def n(self) -> int:
        """Domain size ``|I| = |J|``."""
        return len(self.items)

    @abc.abstractmethod
    def is_edge(self, item_index: int, anon_index: int) -> bool:
        """True when the anonymized item may map to the original item."""

    @abc.abstractmethod
    def candidates(self, item_index: int) -> Iterator[int]:
        """Anonymized-item indices that may map to the item (its edge set)."""

    @abc.abstractmethod
    def outdegree(self, item_index: int) -> int:
        """``O_x`` — the number of anonymized items that may map to the item."""

    @abc.abstractmethod
    def true_partner(self, item_index: int) -> int:
        """Index of the anonymized item that truly corresponds to the item."""

    # -- derived helpers ----------------------------------------------------

    def outdegrees(self) -> np.ndarray:
        """All outdegrees as an array aligned with :attr:`items`."""
        return np.array([self.outdegree(i) for i in range(self.n)], dtype=np.int64)

    def has_true_edge(self, item_index: int) -> bool:
        """Whether the belief is *compliant* on this item.

        Compliancy on ``x`` is exactly the presence of the edge
        ``(x', x)`` in the graph (Section 2.3).
        """
        return self.is_edge(item_index, self.true_partner(item_index))

    def compliant_indices(self) -> np.ndarray:
        """Indices of items on which the belief is compliant."""
        return np.array(
            [i for i in range(self.n) if self.has_true_edge(i)], dtype=np.int64
        )

    def item_index(self, item: Item) -> int:
        """Index of an original item."""
        index_map = getattr(self, "_item_index", None)
        if index_map is None:
            index_map = {x: i for i, x in enumerate(self.items)}
            self._item_index = index_map
        try:
            return index_map[item]
        except KeyError:
            raise GraphError(f"item {item!r} not in the mapping space") from None

    def edge_count(self) -> int:
        """Total number of edges ``|E|``."""
        return int(self.outdegrees().sum())

    def adjacency_matrix(self) -> np.ndarray:
        """Dense 0/1 matrix ``A[j, i]`` = edge (anonymized j -> item i).

        Only sensible for small spaces (used by the permanent-based direct
        method of Section 4.1).
        """
        matrix = np.zeros((self.n, self.n), dtype=np.float64)
        for i in range(self.n):
            for j in self.candidates(i):
                matrix[j, i] = 1.0
        return matrix

    def count_cracks(self, assignment: Sequence[int]) -> int:
        """Cracks in an item->anonymized assignment (index-based)."""
        return sum(
            1 for i, j in enumerate(assignment) if j == self.true_partner(i)
        )


class FrequencyMappingSpace(MappingSpace):
    """Mapping space induced by a belief function over item frequencies.

    Parameters
    ----------
    items:
        The original items, in a fixed order.
    anonymized:
        The anonymized items, in a fixed order.
    observed:
        Observed frequency of each anonymized item (aligned with
        *anonymized*).
    intervals:
        Per-item ``(low, high)`` belief intervals (aligned with *items*).
    true_partner_of:
        ``true_partner_of[i]`` is the anonymized index corresponding to
        item ``i`` under the owner's secret mapping.
    """

    def __init__(
        self,
        items: Sequence[Item],
        anonymized: Sequence[Item],
        observed: Sequence[float],
        intervals: Sequence[tuple[float, float]],
        true_partner_of: Sequence[int],
    ):
        if not (len(items) == len(anonymized) == len(observed) == len(intervals) == len(true_partner_of)):
            raise GraphError("items, anonymized, observed, intervals and pairing must align")
        if len(items) == 0:
            raise GraphError("a mapping space needs a non-empty domain")
        self.items = tuple(items)
        self.anonymized = tuple(anonymized)
        self.observed = np.asarray(observed, dtype=np.float64)
        self.low = np.array([iv[0] for iv in intervals], dtype=np.float64)
        self.high = np.array([iv[1] for iv in intervals], dtype=np.float64)
        self._true_partner = np.asarray(true_partner_of, dtype=np.int64)
        if sorted(self._true_partner.tolist()) != list(range(len(items))):
            raise GraphError("true pairing must be a permutation of the anonymized indices")
        self.groups = ObservedGroups(self.observed)
        # Admissible frequency-group run per item.
        self._runs: list[tuple[int, int]] = [
            self.groups.group_range(float(lo), float(hi))
            for lo, hi in zip(self.low, self.high)
        ]

    # -- MappingSpace interface ---------------------------------------------

    def is_edge(self, item_index: int, anon_index: int) -> bool:
        f = self.observed[anon_index]
        return bool(self.low[item_index] <= f <= self.high[item_index])

    def candidates(self, item_index: int) -> Iterator[int]:
        g_lo, g_hi = self._runs[item_index]
        for g in range(g_lo, g_hi):
            yield from self.groups.members[g]

    def outdegree(self, item_index: int) -> int:
        g_lo, g_hi = self._runs[item_index]
        return int(self.groups.prefix[g_hi] - self.groups.prefix[g_lo])

    def true_partner(self, item_index: int) -> int:
        return int(self._true_partner[item_index])

    # -- fast paths -----------------------------------------------------------

    def outdegrees(self) -> np.ndarray:
        g_lo = np.array([r[0] for r in self._runs], dtype=np.int64)
        g_hi = np.array([r[1] for r in self._runs], dtype=np.int64)
        return self.groups.prefix[g_hi] - self.groups.prefix[g_lo]

    def compliant_mask(self) -> np.ndarray:
        """Boolean mask of compliant items (vectorized)."""
        true_freq = self.observed[self._true_partner]
        return (self.low <= true_freq) & (true_freq <= self.high)

    def compliant_indices(self) -> np.ndarray:
        return np.flatnonzero(self.compliant_mask())

    def admissible_run(self, item_index: int) -> tuple[int, int]:
        """The item's admissible frequency-group run ``[g_lo, g_hi)``."""
        return self._runs[item_index]

    def belief_groups(self) -> BeliefGroupPartition:
        """Partition of items into belief groups (Section 3.2)."""
        return BeliefGroupPartition(self._runs)

    def true_group(self, item_index: int) -> int:
        """Frequency-group index of the item's true anonymized partner."""
        return int(self.groups.group_of[self.true_partner(item_index)])

    def __repr__(self) -> str:
        return (
            f"FrequencyMappingSpace(n={self.n}, "
            f"n_frequency_groups={len(self.groups)})"
        )


class ExplicitMappingSpace(MappingSpace):
    """Mapping space given by an arbitrary adjacency structure.

    Parameters
    ----------
    items, anonymized:
        The two node sets, in fixed order, of equal size.
    adjacency:
        ``adjacency[i]`` is the collection of anonymized indices that may
        map to item ``i``.
    true_partner_of:
        Permutation giving the ground-truth pairing.
    """

    def __init__(
        self,
        items: Sequence[Item],
        anonymized: Sequence[Item],
        adjacency: Sequence[Iterable[int]],
        true_partner_of: Sequence[int],
    ):
        if not (len(items) == len(anonymized) == len(adjacency) == len(true_partner_of)):
            raise GraphError("items, anonymized, adjacency and pairing must align")
        if len(items) == 0:
            raise GraphError("a mapping space needs a non-empty domain")
        self.items = tuple(items)
        self.anonymized = tuple(anonymized)
        n = len(items)
        self._adjacency: tuple[frozenset[int], ...] = tuple(
            frozenset(int(j) for j in row) for row in adjacency
        )
        for i, row in enumerate(self._adjacency):
            if any(not 0 <= j < n for j in row):
                raise GraphError(f"adjacency of item #{i} references an invalid index")
        self._true_partner = np.asarray(true_partner_of, dtype=np.int64)
        if sorted(self._true_partner.tolist()) != list(range(n)):
            raise GraphError("true pairing must be a permutation of the anonymized indices")

    def is_edge(self, item_index: int, anon_index: int) -> bool:
        return anon_index in self._adjacency[item_index]

    def candidates(self, item_index: int) -> Iterator[int]:
        return iter(sorted(self._adjacency[item_index]))

    def outdegree(self, item_index: int) -> int:
        return len(self._adjacency[item_index])

    def true_partner(self, item_index: int) -> int:
        return int(self._true_partner[item_index])

    def __repr__(self) -> str:
        return f"ExplicitMappingSpace(n={self.n}, n_edges={self.edge_count()})"


def space_from_frequencies(
    belief: BeliefFunction, true_frequencies: Mapping[Item, float]
) -> FrequencyMappingSpace:
    """Build the mapping space from a belief function and true frequencies.

    This is the owner-side construction: the owner knows the true
    frequency of every item, and the released anonymized database exposes
    exactly that multiset of frequencies.  Item ``x`` at index ``i`` is
    paired with the canonical anonymized item ``i'`` whose observed
    frequency is ``true_frequencies[x]``.
    """
    if belief.domain != frozenset(true_frequencies):
        raise DomainMismatchError("belief function and frequency table cover different domains")
    items = sorted(true_frequencies, key=repr)
    observed = [float(true_frequencies[x]) for x in items]
    anonymized = tuple(AnonymizedItem(i + 1) for i in range(len(items)))
    intervals = [(belief[x].low, belief[x].high) for x in items]
    return FrequencyMappingSpace(
        items=items,
        anonymized=anonymized,
        observed=observed,
        intervals=intervals,
        true_partner_of=list(range(len(items))),
    )


def space_from_anonymized(
    belief: BeliefFunction, anonymized_db: AnonymizedDatabase
) -> FrequencyMappingSpace:
    """Build the mapping space from an actually anonymized database.

    The observed frequencies come from the released database; the secret
    mapping provides the ground-truth pairing used to score cracks.
    """
    mapping = anonymized_db.mapping
    if belief.domain != mapping.original_domain:
        raise DomainMismatchError("belief function does not cover the anonymized domain")
    items = sorted(mapping.original_domain, key=repr)
    anonymized = sorted(mapping.anonymized_domain)
    anon_index = {a: j for j, a in enumerate(anonymized)}
    observed_map = anonymized_db.observed_frequencies()
    observed = [float(observed_map[a]) for a in anonymized]
    intervals = [(belief[x].low, belief[x].high) for x in items]
    pairing = [anon_index[mapping.anonymize_item(x)] for x in items]
    return FrequencyMappingSpace(
        items=items,
        anonymized=tuple(anonymized),
        observed=observed,
        intervals=intervals,
        true_partner_of=pairing,
    )

"""Exact crack analysis via permanents and matching enumeration.

Section 4.1 of the paper gives the *direct method*: the number of
consistent crack mappings is the permanent of the bipartite adjacency
matrix, and the exact expected number of cracks follows from ratios of
permanents.  Computing the permanent is #P-complete (Valiant 1979), so
this machinery is only feasible for small domains — which is exactly how
the library uses it: as ground truth to validate the O-estimate and the
simulator in tests and ablations.

* :func:`permanent` — Ryser's inclusion–exclusion formula with Gray-code
  updates, ``O(2^n n)``; matrices beyond the Ryser cap are first split
  into connected blocks (permanents multiply over blocks).
* :func:`expected_cracks_direct` — exact ``E[X]`` as a sum of permanent
  ratios, dispatched through :mod:`repro.graph.exact` so interval-belief
  spaces with thousands of items stay exact.
* :func:`crack_distribution` — the full law ``P(X = k)``, block-convolved
  (interval DP on frequency blocks, enumeration on small explicit ones).
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.budget import ComputeBudget
from repro.errors import GraphError, InfeasibleMatchingError
from repro.graph.bipartite import MappingSpace
from repro.graph.kernels import ryser_int, ryser_int_python

__all__ = [
    "permanent",
    "count_matchings",
    "expected_cracks_direct",
    "crack_distribution",
    "crack_distribution_permanent",
    "enumerate_consistent_matchings",
]

_PERMANENT_LIMIT = 22
_ENUMERATION_LIMIT = 12

#: Above this size the O(2^n) walk dominates the O(n^2) union-find, so
#: ``permanent`` always tries the block split first (a block-diagonal
#: matrix then pays per-block walks instead of one full-width walk).
_SPLIT_MIN = 6

#: Pure-Python exact-int Ryser (reference path, no block split).  Kept
#: under the historical private name for tests and benchmarks; the
#: production integral path dispatches through the vectorized
#: :func:`repro.graph.kernels.ryser_int`.
_ryser_int = ryser_int_python


def _matrix_blocks(matrix: np.ndarray) -> list[tuple[list[int], list[int]]]:
    """Connected components of a matrix's nonzero structure.

    Returns ``(rows, cols)`` per component.  A component with unequal row
    and column counts forces the permanent to 0.
    """
    n = matrix.shape[0]
    parent = list(range(2 * n))  # rows 0..n-1, columns n..2n-1

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    rows, cols = np.nonzero(matrix)
    for r, c in zip(rows.tolist(), cols.tolist()):
        rr, rc = find(r), find(n + c)
        if rr != rc:
            parent[rc] = rr
    components: dict[int, tuple[list[int], list[int]]] = {}
    for r in range(n):
        components.setdefault(find(r), ([], []))[0].append(r)
    for c in range(n):
        components.setdefault(find(n + c), ([], []))[1].append(c)
    return [components[key] for key in sorted(components)]


def _is_integral(matrix: np.ndarray) -> bool:
    """Whether every entry is an exact integer (int/bool dtype or whole floats)."""
    if matrix.dtype.kind in "iub":
        return True
    if matrix.dtype.kind != "f":
        return False
    return bool(np.all(np.isfinite(matrix)) and np.all(matrix == np.rint(matrix)))


def permanent(
    matrix: np.ndarray,
    limit: int | None = None,
    budget: ComputeBudget | None = None,
) -> int | float:
    """The permanent of a square matrix, by Ryser's formula over blocks.

    Uses Gray-code subset iteration so each of the ``2^n - 1`` subsets
    costs ``O(n)``.  Integral matrices (any int/bool dtype, or floats
    whose entries are whole numbers — every adjacency matrix) are summed
    in arbitrary-precision Python ints and return an exact ``int``; only
    genuinely weighted real matrices take the float path, whose Ryser
    sum can cancel catastrophically near the cap.  Matrices larger than
    ``limit`` (default 22) are split into connected blocks first — the
    permanent is the product of block permanents — and only a *block*
    beyond the limit is infeasible.  Pass ``limit`` to accept a higher
    cost explicitly.  A *budget* (see :class:`repro.budget.ComputeBudget`)
    is polled every 256 Ryser subsets, so deadline-bearing callers can
    cancel a runaway permanent cooperatively.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"permanent needs a square matrix, got shape {matrix.shape}")
    n = matrix.shape[0]
    cap = _PERMANENT_LIMIT if limit is None else int(limit)
    integral = _is_integral(matrix)

    def ryser(block: np.ndarray) -> int | float:
        if integral:
            return ryser_int(block, budget=budget)
        return _ryser_float(block, budget=budget)

    if n == 0:
        return 1 if integral else 1.0  # repro-lint: disable=EX001 -- weighted-path identity
    if n <= _SPLIT_MIN:
        return ryser(matrix)
    blocks = _matrix_blocks(matrix)
    if any(len(rows) != len(cols) for rows, cols in blocks):
        # Some rows can only use fewer columns: no permutation survives.
        return 0 if integral else 0.0  # repro-lint: disable=EX001 -- weighted-path zero
    largest = max(len(rows) for rows, _ in blocks)
    if largest > cap:
        raise GraphError(
            f"permanent of a {n}x{n} matrix is infeasible: its largest "
            f"connected block has {largest} rows (Ryser limit {cap}). "
            "Pass limit= to accept the cost, or use exact_strategy / "
            "count_matchings_exact (block-ryser, interval-dp) — or the "
            "O-estimate or the simulator"
        )
    if len(blocks) == 1:
        return ryser(matrix)
    result = ryser(matrix[np.ix_(*blocks[0])])
    for rows, cols in blocks[1:]:
        if result == 0:
            return result
        result = result * ryser(matrix[np.ix_(rows, cols)])
    return result


def _ryser_float(matrix: np.ndarray, budget: ComputeBudget | None = None) -> float:  # repro-lint: disable-function=EX001,EX004 -- weighted boundary: real-valued matrices have no exact-int representation
    """Ryser's formula for genuinely weighted (non-integral) matrices.

    Vectorized float arithmetic; subject to cancellation in the
    alternating sum, which is why integral matrices never come here.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if n == 0:
        return 1.0
    row_sums = np.zeros(n, dtype=np.float64)
    total = 0.0
    subset = 0
    subset_size = 0
    for counter in range(1, 1 << n):
        if budget is not None and not (counter & 255):
            budget.checkpoint(256)
        flip = (counter & -counter).bit_length() - 1  # lowest set bit of counter
        bit = 1 << flip
        if subset & bit:
            row_sums -= matrix[:, flip]
            subset_size -= 1
        else:
            row_sums += matrix[:, flip]
            subset_size += 1
        subset ^= bit
        subset_sign = -1.0 if subset_size % 2 else 1.0
        total += subset_sign * float(np.prod(row_sums))
    overall_sign = 1.0 if n % 2 == 0 else -1.0
    return overall_sign * total


def count_matchings(space: MappingSpace) -> float:
    """Number of consistent crack mappings = permanent of the adjacency.

    Dispatches through the structure-exploiting engine
    (:func:`repro.graph.exact.count_matchings_exact`), so block-sparse
    and interval-belief spaces far beyond the Ryser cap still count
    exactly.  Counts too large for a float come back as ``math.inf``.
    """
    from repro.graph.exact import count_matchings_exact

    count = count_matchings_exact(space)
    try:
        return float(count)  # repro-lint: disable=EX004 -- public float API edge over the exact count
    except OverflowError:
        return math.inf  # repro-lint: disable=EX003 -- count exceeds float range; inf is the documented sentinel


def expected_cracks_direct(space: MappingSpace) -> float:
    """Exact expected number of cracks by the direct method (Section 4.1).

    ``P(item x is cracked)`` equals the fraction of perfect matchings
    containing the true edge ``(x', x)``, i.e. the permanent of the minor
    with row ``x'`` and column ``x`` removed over the full permanent; the
    expectation is the sum of these probabilities (linearity, Section 5.1).

    Dispatches through :func:`repro.graph.exact.expected_cracks_exact`:
    Ryser minors on small explicit blocks, the consecutive-ones DP on
    frequency blocks — so the historical n=22 cap only binds when a
    single unstructured block is that large.
    """
    from repro.graph.exact import expected_cracks_exact

    return expected_cracks_exact(space)


def crack_distribution_permanent(space: MappingSpace) -> np.ndarray:  # repro-lint: disable-function=EX001,EX002,EX004 -- probability-law boundary: counts become P(X=k) here
    """``P(X = k)`` by the paper's literal Section 4.1 formula.

    For each candidate crack set ``S`` of size ``k``, remove the nodes of
    ``S`` (those cracks are forced) and the true edges of every other
    item (no further cracks allowed); the permanent of what remains
    counts the matchings whose crack set is exactly ``S``.  Exponential
    in both the subset lattice and the permanents — tiny domains only;
    exists to cross-validate :func:`crack_distribution` and to document
    why the paper abandons the direct method.
    """
    from itertools import combinations

    n = space.n
    if n > 8:
        raise GraphError(
            f"the subset-permanent formula over a {n}-item space is infeasible (limit 8)"
        )
    matrix = space.adjacency_matrix()
    total = permanent(matrix)
    if total == 0:
        raise InfeasibleMatchingError("no consistent perfect matching exists")

    true_edges = [(space.true_partner(i), i) for i in range(n)]
    law = np.zeros(n + 1, dtype=np.float64)
    for k in range(n + 1):
        for subset in combinations(range(n), k):
            chosen = set(subset)
            # Forced cracks must actually be edges.
            if any(matrix[true_edges[i][0], i] == 0.0 for i in chosen):
                continue
            reduced = matrix.copy()
            for i in range(n):
                if i not in chosen:
                    reduced[true_edges[i][0], i] = 0.0  # forbid further cracks
            keep_rows = [j for j in range(n) if j not in {true_edges[i][0] for i in chosen}]
            keep_cols = [i for i in range(n) if i not in chosen]
            minor = reduced[np.ix_(keep_rows, keep_cols)]
            law[k] += permanent(minor)
    return law / total


def enumerate_consistent_matchings(space: MappingSpace) -> Iterator[tuple[int, ...]]:
    """Yield every consistent perfect matching as an item->anon index tuple.

    Items are processed in increasing-outdegree order for pruning; the
    yielded tuples are indexed by item index regardless.  Guarded at
    ``n <= 12``.
    """
    n = space.n
    if n > _ENUMERATION_LIMIT:
        raise GraphError(
            f"enumerating matchings of a {n}-item space is infeasible "
            f"(limit {_ENUMERATION_LIMIT})"
        )
    order = sorted(range(n), key=space.outdegree)
    candidate_lists = [tuple(space.candidates(i)) for i in range(n)]
    assignment = [-1] * n
    used = [False] * n

    def extend(depth: int) -> Iterator[tuple[int, ...]]:
        if depth == n:
            yield tuple(assignment)
            return
        i = order[depth]
        for j in candidate_lists[i]:
            if not used[j]:
                used[j] = True
                assignment[i] = j
                yield from extend(depth + 1)
                used[j] = False
        assignment[i] = -1

    yield from extend(0)


def crack_distribution(space: MappingSpace) -> np.ndarray:
    """The exact law of the number of cracks ``X``.

    Returns an array ``p`` with ``p[k] = P(X = k)`` for ``k = 0..n``
    under the paper's uniform-matching assumption.  Dispatches through
    :func:`repro.graph.exact.crack_distribution_exact`: per-block laws
    (interval DP on frequency blocks, enumeration on explicit blocks up
    to 12 items each) convolved across blocks — the historical
    whole-space enumeration cap of 12 now applies per block.
    """
    from repro.graph.exact import crack_distribution_exact

    return crack_distribution_exact(space)

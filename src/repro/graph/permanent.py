"""Exact crack analysis via permanents and matching enumeration.

Section 4.1 of the paper gives the *direct method*: the number of
consistent crack mappings is the permanent of the bipartite adjacency
matrix, and the exact expected number of cracks follows from ratios of
permanents.  Computing the permanent is #P-complete (Valiant 1979), so
this machinery is only feasible for small domains — which is exactly how
the library uses it: as ground truth to validate the O-estimate and the
simulator in tests and ablations.

* :func:`permanent` — Ryser's inclusion–exclusion formula with Gray-code
  updates, ``O(2^n n)``.
* :func:`expected_cracks_direct` — exact ``E[X]`` as a sum of permanent
  ratios (one minor per item).
* :func:`crack_distribution` — the full law ``P(X = k)`` by enumerating
  every consistent perfect matching (tiny domains only).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphError, InfeasibleMatchingError
from repro.graph.bipartite import MappingSpace

__all__ = [
    "permanent",
    "count_matchings",
    "expected_cracks_direct",
    "crack_distribution",
    "crack_distribution_permanent",
    "enumerate_consistent_matchings",
]

_PERMANENT_LIMIT = 22
_ENUMERATION_LIMIT = 12


def permanent(matrix: np.ndarray) -> float:
    """The permanent of a square matrix, by Ryser's formula.

    Uses Gray-code subset iteration so each of the ``2^n - 1`` subsets
    costs ``O(n)``.  Guarded at ``n <= 22`` — beyond that the direct
    method is infeasible, which is the paper's point.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"permanent needs a square matrix, got shape {matrix.shape}")
    n = matrix.shape[0]
    if n == 0:
        return 1.0
    if n > _PERMANENT_LIMIT:
        raise GraphError(
            f"permanent of a {n}x{n} matrix is infeasible (limit {_PERMANENT_LIMIT}); "
            "use the O-estimate or the simulator instead"
        )
    # Ryser: perm(A) = (-1)^n * sum over non-empty column subsets S of
    # (-1)^|S| * prod_i sum_{j in S} a[i, j].  Gray-code iteration keeps a
    # running row-sum vector so each subset costs O(n).
    row_sums = np.zeros(n, dtype=np.float64)
    total = 0.0
    subset = 0
    subset_size = 0
    for counter in range(1, 1 << n):
        flip = (counter & -counter).bit_length() - 1  # lowest set bit of counter
        bit = 1 << flip
        if subset & bit:
            row_sums -= matrix[:, flip]
            subset_size -= 1
        else:
            row_sums += matrix[:, flip]
            subset_size += 1
        subset ^= bit
        subset_sign = -1.0 if subset_size % 2 else 1.0
        total += subset_sign * float(np.prod(row_sums))
    overall_sign = 1.0 if n % 2 == 0 else -1.0
    return overall_sign * total


def count_matchings(space: MappingSpace) -> float:
    """Number of consistent crack mappings = permanent of the adjacency."""
    return permanent(space.adjacency_matrix())


def expected_cracks_direct(space: MappingSpace) -> float:
    """Exact expected number of cracks by the direct method (Section 4.1).

    ``P(item x is cracked)`` equals the fraction of perfect matchings
    containing the true edge ``(x', x)``, i.e. the permanent of the minor
    with row ``x'`` and column ``x`` removed over the full permanent; the
    expectation is the sum of these probabilities (linearity, Section 5.1).
    """
    matrix = space.adjacency_matrix()
    total = permanent(matrix)
    if total == 0:
        raise InfeasibleMatchingError("no consistent perfect matching exists")
    expected = 0.0
    for i in range(space.n):
        j = space.true_partner(i)
        if matrix[j, i] == 0.0:
            continue  # non-compliant item: never cracked by a consistent mapping
        minor = np.delete(np.delete(matrix, j, axis=0), i, axis=1)
        expected += permanent(minor) / total
    return expected


def crack_distribution_permanent(space: MappingSpace) -> np.ndarray:
    """``P(X = k)`` by the paper's literal Section 4.1 formula.

    For each candidate crack set ``S`` of size ``k``, remove the nodes of
    ``S`` (those cracks are forced) and the true edges of every other
    item (no further cracks allowed); the permanent of what remains
    counts the matchings whose crack set is exactly ``S``.  Exponential
    in both the subset lattice and the permanents — tiny domains only;
    exists to cross-validate :func:`crack_distribution` and to document
    why the paper abandons the direct method.
    """
    from itertools import combinations

    n = space.n
    if n > 8:
        raise GraphError(
            f"the subset-permanent formula over a {n}-item space is infeasible (limit 8)"
        )
    matrix = space.adjacency_matrix()
    total = permanent(matrix)
    if total == 0:
        raise InfeasibleMatchingError("no consistent perfect matching exists")

    true_edges = [(space.true_partner(i), i) for i in range(n)]
    law = np.zeros(n + 1, dtype=np.float64)
    for k in range(n + 1):
        for subset in combinations(range(n), k):
            chosen = set(subset)
            # Forced cracks must actually be edges.
            if any(matrix[true_edges[i][0], i] == 0.0 for i in chosen):
                continue
            reduced = matrix.copy()
            for i in range(n):
                if i not in chosen:
                    reduced[true_edges[i][0], i] = 0.0  # forbid further cracks
            keep_rows = [j for j in range(n) if j not in {true_edges[i][0] for i in chosen}]
            keep_cols = [i for i in range(n) if i not in chosen]
            minor = reduced[np.ix_(keep_rows, keep_cols)]
            law[k] += permanent(minor)
    return law / total


def enumerate_consistent_matchings(space: MappingSpace) -> Iterator[tuple[int, ...]]:
    """Yield every consistent perfect matching as an item->anon index tuple.

    Items are processed in increasing-outdegree order for pruning; the
    yielded tuples are indexed by item index regardless.  Guarded at
    ``n <= 12``.
    """
    n = space.n
    if n > _ENUMERATION_LIMIT:
        raise GraphError(
            f"enumerating matchings of a {n}-item space is infeasible "
            f"(limit {_ENUMERATION_LIMIT})"
        )
    order = sorted(range(n), key=space.outdegree)
    candidate_lists = [tuple(space.candidates(i)) for i in range(n)]
    assignment = [-1] * n
    used = [False] * n

    def extend(depth: int) -> Iterator[tuple[int, ...]]:
        if depth == n:
            yield tuple(assignment)
            return
        i = order[depth]
        for j in candidate_lists[i]:
            if not used[j]:
                used[j] = True
                assignment[i] = j
                yield from extend(depth + 1)
                used[j] = False
        assignment[i] = -1

    yield from extend(0)


def crack_distribution(space: MappingSpace) -> np.ndarray:
    """The exact law of the number of cracks ``X``.

    Returns an array ``p`` with ``p[k] = P(X = k)`` for ``k = 0..n``,
    computed by exhaustive enumeration of consistent matchings under the
    paper's uniform-matching assumption.
    """
    n = space.n
    counts = np.zeros(n + 1, dtype=np.float64)
    total = 0
    for assignment in enumerate_consistent_matchings(space):
        counts[space.count_cracks(assignment)] += 1
        total += 1
    if total == 0:
        raise InfeasibleMatchingError("no consistent perfect matching exists")
    return counts / total

"""Frequency binning: merging frequency groups to build camouflage.

Lemma 3 says the point-valued expected cracks equal the number of
distinct frequencies ``g`` — so the owner lowers risk by making item
frequencies *collide*.  Binning snaps per-item transaction counts to a
coarser grid before release (implemented by adding/removing occurrences
of an item in the published database, a bounded and quantified
perturbation; this module works at the count level).

Two policies:

* :func:`bin_counts` — fixed-width grid: counts round to the nearest
  multiple of ``bin_width``;
* :func:`quantile_bin` — equal-population bins: items are ranked by
  count and each bin of ``bin_size`` consecutive items is assigned the
  bin's median count, guaranteeing every published frequency is shared
  by at least ``bin_size`` items (a frequency-space analogue of
  k-anonymity's group-size guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.database import FrequencyProfile, FrequencySource
from repro.errors import DataError

__all__ = ["BinnedRelease", "bin_counts", "quantile_bin"]


@dataclass(frozen=True)
class BinnedRelease:
    """A binned frequency profile plus its distortion accounting.

    Attributes
    ----------
    profile:
        The perturbed (publishable) frequency profile.
    max_distortion:
        Largest absolute per-item frequency change.
    mean_distortion:
        Mean absolute per-item frequency change.
    n_groups_before, n_groups_after:
        Distinct frequencies before/after — the Lemma 3 risk drop.
    """

    profile: FrequencyProfile
    max_distortion: float
    mean_distortion: float
    n_groups_before: int
    n_groups_after: int


def _distortion(original: FrequencySource, binned: FrequencyProfile) -> tuple[float, float]:
    changes = [
        abs(binned.frequency(item) - original.frequency(item)) for item in original.domain
    ]
    return max(changes), sum(changes) / len(changes)


def bin_counts(source: FrequencySource, bin_width: int) -> BinnedRelease:
    """Snap every item count to the nearest multiple of *bin_width*.

    Counts snap to ``round(count / bin_width) * bin_width`` with a floor
    of ``bin_width`` (an item present in the data stays present) and a
    cap at the transaction count.  ``bin_width = 1`` is the identity.
    """
    if bin_width < 1:
        raise DataError(f"bin_width must be at least 1, got {bin_width}")
    m = source.n_transactions
    binned_counts: dict = {}
    for item in source.domain:
        count = source.item_count(item)
        if count == 0:
            binned_counts[item] = 0
            continue
        snapped = int(round(count / bin_width)) * bin_width
        snapped = max(bin_width, min(snapped, m))
        binned_counts[item] = snapped
    binned = FrequencyProfile(binned_counts, m)
    max_change, mean_change = _distortion(source, binned)
    return BinnedRelease(
        profile=binned,
        max_distortion=max_change,
        mean_distortion=mean_change,
        n_groups_before=len(set(source.frequencies().values())),
        n_groups_after=len(set(binned.frequencies().values())),
    )


def quantile_bin(source: FrequencySource, bin_size: int) -> BinnedRelease:
    """Give every run of *bin_size* count-ranked items a common count.

    Items are sorted by count; each consecutive block of ``bin_size``
    items is published with the block's median count.  Every published
    frequency is then shared by at least ``bin_size`` items (the last
    block may be larger), so by Lemma 2 no item in a block is cracked
    with probability above ``1/bin_size`` under point-valued knowledge.
    """
    if bin_size < 1:
        raise DataError(f"bin_size must be at least 1, got {bin_size}")
    m = source.n_transactions
    ranked = sorted(source.domain, key=lambda item: (source.item_count(item), repr(item)))
    n = len(ranked)
    binned_counts: dict = {}
    block_start = 0
    while block_start < n:
        block_end = block_start + bin_size
        if n - block_end < bin_size:
            block_end = n  # fold the remainder into the last block
        block = ranked[block_start:block_end]
        counts = sorted(source.item_count(item) for item in block)
        median = counts[len(counts) // 2]
        for item in block:
            binned_counts[item] = median
        block_start = block_end
    binned = FrequencyProfile(binned_counts, m)
    max_change, mean_change = _distortion(source, binned)
    return BinnedRelease(
        profile=binned,
        max_distortion=max_change,
        mean_distortion=mean_change,
        n_groups_before=len(set(source.frequencies().values())),
        n_groups_after=len(set(binned.frequencies().values())),
    )

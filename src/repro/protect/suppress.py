"""Item suppression: withholding the most identifiable items.

The O-estimate decomposes per item (``1/O_x``), so the items driving the
risk are explicit: those with few frequency-compatible anonymized items
(isolated frequencies — typically the singleton groups that dominate the
paper's benchmarks).  Suppressing an item removes its column from the
release entirely; the remaining items are re-analyzed, since the
observed-frequency multiset shrinks with every removal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.beliefs.builders import uniform_width_belief
from repro.data.database import FrequencyProfile, FrequencySource
from repro.data.frequency import FrequencyGroups
from repro.errors import DataError
from repro.graph.bipartite import space_from_frequencies

__all__ = ["SuppressionResult", "suppress_most_exposed"]


@dataclass(frozen=True)
class SuppressionResult:
    """Outcome of greedy suppression.

    Attributes
    ----------
    suppressed:
        Items withheld from the release, in suppression order.
    profile:
        The residual (publishable) frequency profile.
    residual_estimate:
        O-estimate of the residual release (same ``delta`` policy).
    delta:
        The interval half-width used throughout.
    """

    suppressed: tuple
    profile: FrequencyProfile
    residual_estimate: float
    delta: float

    @property
    def n_suppressed(self) -> int:
        return len(self.suppressed)


def _profile_of(source: FrequencySource) -> FrequencyProfile:
    counts = {item: source.item_count(item) for item in source.domain}
    return FrequencyProfile(counts, source.n_transactions)


def _estimate(profile: FrequencyProfile, delta: float) -> tuple[float, list]:
    """O-estimate plus items sorted by descending crack probability."""
    frequencies = profile.frequencies()
    belief = uniform_width_belief(frequencies, delta)
    space = space_from_frequencies(belief, frequencies)
    degrees = space.outdegrees()
    contributions = sorted(
        ((1.0 / degrees[i], space.items[i]) for i in range(space.n)),
        key=lambda pair: (-pair[0], repr(pair[1])),
    )
    return float(sum(c for c, _ in contributions)), [item for _, item in contributions]


def suppress_most_exposed(
    source: FrequencySource,
    tolerance: float,
    delta: float | None = None,
    batch_fraction: float = 0.05,
    max_suppressed_fraction: float = 0.5,
) -> SuppressionResult:
    """Greedily suppress items until the O-estimate is within tolerance.

    Repeatedly removes the batch of items with the highest ``1/O_x``
    contributions (recomputing the groups and outdegrees after every
    batch, since removals reshape the observed-frequency multiset) until
    ``OE <= tolerance * n_original``.

    Parameters
    ----------
    source:
        The owner's data.
    tolerance:
        Recipe tolerance ``tau``, applied against the *original* domain
        size — suppression should not get credit for shrinking ``n``.
    delta:
        Interval half-width; defaults to the original median gap and is
        held fixed across iterations for comparability.
    batch_fraction:
        Fraction of the original domain suppressed per iteration.
    max_suppressed_fraction:
        Hard cap; raises :class:`~repro.errors.DataError` when the target
        cannot be met within it (the release is then better withheld or
        binned instead).
    """
    if not 0.0 <= tolerance <= 1.0:
        raise DataError(f"tolerance must be in [0, 1], got {tolerance}")
    profile = _profile_of(source)
    n_original = len(profile.domain)
    if delta is None:
        groups = FrequencyGroups.from_source(profile)
        if len(groups) < 2:
            raise DataError("single frequency group: pass delta explicitly")
        delta = groups.median_gap()

    budget = tolerance * n_original
    batch = max(1, round(batch_fraction * n_original))
    suppressed: list = []

    estimate, ranked = _estimate(profile, delta)
    while estimate > budget:
        if len(suppressed) + batch > max_suppressed_fraction * n_original:
            raise DataError(
                f"cannot reach tolerance {tolerance} by suppressing at most "
                f"{max_suppressed_fraction:.0%} of the items "
                f"({len(suppressed)} suppressed, estimate still {estimate:.1f})"
            )
        victims = ranked[:batch]
        suppressed.extend(victims)
        remaining = {
            item: profile.item_count(item)
            for item in profile.domain
            if item not in set(suppressed)
        }
        if not remaining:
            break
        profile = FrequencyProfile(remaining, profile.n_transactions)
        estimate, ranked = _estimate(profile, delta)

    return SuppressionResult(
        suppressed=tuple(suppressed),
        profile=profile,
        residual_estimate=estimate,
        delta=delta,
    )

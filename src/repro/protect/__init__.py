"""Countermeasures: reshaping data until anonymization is safe to release.

The paper diagnoses the risk (Lemma 3: items with *equal* frequencies
camouflage each other; isolated frequencies give the hacker sure cracks)
but stops at the disclose/withhold decision.  This package implements the
constructive next step the analysis suggests: perturb the release just
enough that the recipe's estimates fall within tolerance.

* :mod:`repro.protect.binning` — **frequency binning**: snap item counts
  to a coarser grid so frequency groups merge (raising camouflage,
  lowering ``g`` and the O-estimate), at a quantified frequency
  distortion.
* :mod:`repro.protect.suppress` — **item suppression**: withhold the
  most identifiable items entirely.
* :mod:`repro.protect.planner` — search the smallest intervention that
  brings the Assess-Risk recipe within the owner's tolerance.
"""

from repro.protect.binning import bin_counts, quantile_bin
from repro.protect.planner import ProtectionPlan, protect_to_tolerance
from repro.protect.suppress import suppress_most_exposed

__all__ = [
    "bin_counts",
    "quantile_bin",
    "suppress_most_exposed",
    "ProtectionPlan",
    "protect_to_tolerance",
]

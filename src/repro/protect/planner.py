"""Search for the smallest intervention that makes a release safe.

Glues the countermeasures to the recipe: find the least-distorting
binning (or the smallest suppression set) for which the Assess-Risk
recipe's fully compliant interval O-estimate falls within the owner's
tolerance.  Monotonicity does the work again: coarser bins merge more
groups, so the estimate is non-increasing in the bin parameter and a
doubling-plus-bisection search applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.beliefs.builders import uniform_width_belief
from repro.core.oestimate import o_estimate
from repro.data.database import FrequencyProfile, FrequencySource
from repro.data.frequency import FrequencyGroups
from repro.errors import DataError
from repro.graph.bipartite import space_from_frequencies
from repro.protect.binning import BinnedRelease, bin_counts, quantile_bin
from repro.protect.suppress import suppress_most_exposed

__all__ = ["ProtectionPlan", "protect_to_tolerance"]


@dataclass(frozen=True)
class ProtectionPlan:
    """The chosen intervention and its before/after risk accounting.

    Attributes
    ----------
    strategy:
        ``"bin"``, ``"quantile"`` or ``"suppress"``.
    parameter:
        The bin width / bin size / number of suppressed items chosen.
    estimate_before, estimate_after:
        Fully compliant interval O-estimates (same ``delta`` policy),
        before and after the intervention.
    release:
        The :class:`BinnedRelease` or :class:`SuppressionResult`.
    """

    strategy: str
    parameter: int
    estimate_before: float
    estimate_after: float
    release: object

    @property
    def profile(self) -> FrequencyProfile:
        """The publishable frequency profile."""
        return self.release.profile

    def summary(self) -> str:
        """A one-paragraph human-readable account."""
        detail = {
            "bin": f"counts snapped to multiples of {self.parameter}",
            "quantile": f"count-ranked blocks of {self.parameter} items share a count",
            "suppress": f"{self.parameter} items withheld",
        }[self.strategy]
        return (
            f"strategy: {self.strategy} ({detail}); "
            f"O-estimate {self.estimate_before:.2f} -> {self.estimate_after:.2f}"
        )


def _interval_estimate(profile: FrequencyProfile, delta: float) -> float:
    frequencies = profile.frequencies()
    belief = uniform_width_belief(frequencies, delta)
    return o_estimate(space_from_frequencies(belief, frequencies)).value


def protect_to_tolerance(
    source: FrequencySource,
    tolerance: float,
    strategy: str = "quantile",
    delta: float | None = None,
    max_parameter: int | None = None,
) -> ProtectionPlan:
    """Find the least intervention bringing the O-estimate within tolerance.

    Parameters
    ----------
    source:
        The owner's data.
    tolerance:
        Recipe tolerance ``tau`` against the original domain size.
    strategy:
        ``"bin"`` (fixed-width count grid), ``"quantile"`` (equal-
        population frequency blocks) or ``"suppress"`` (withhold items).
    delta:
        Interval half-width; defaults to the original median gap, held
        fixed so before/after estimates are comparable.
    max_parameter:
        Cap on the searched bin width / bin size; defaults to the
        transaction count (bin) or domain size (quantile).
    """
    if strategy not in ("bin", "quantile", "suppress"):
        raise DataError(f"unknown protection strategy {strategy!r}")
    profile_counts = {item: source.item_count(item) for item in source.domain}
    profile = FrequencyProfile(profile_counts, source.n_transactions)
    if delta is None:
        groups = FrequencyGroups.from_source(profile)
        if len(groups) < 2:
            raise DataError("single frequency group: pass delta explicitly")
        delta = groups.median_gap()
    budget = tolerance * len(profile.domain)
    before = _interval_estimate(profile, delta)

    if strategy == "suppress":
        result = suppress_most_exposed(profile, tolerance, delta=delta)
        return ProtectionPlan(
            strategy=strategy,
            parameter=result.n_suppressed,
            estimate_before=before,
            estimate_after=result.residual_estimate,
            release=result,
        )

    transform = bin_counts if strategy == "bin" else quantile_bin
    if max_parameter is None:
        max_parameter = (
            profile.n_transactions if strategy == "bin" else len(profile.domain)
        )

    def estimate_at(parameter: int) -> tuple[float, BinnedRelease]:
        release = transform(profile, parameter)
        return _interval_estimate(release.profile, delta), release

    if before <= budget:
        release = transform(profile, 1)
        return ProtectionPlan(
            strategy=strategy,
            parameter=1,
            estimate_before=before,
            estimate_after=before,
            release=release,
        )

    # Doubling search for a sufficient parameter, then bisection for the
    # smallest one.  Binning is monotone in expectation but snapping can
    # jitter locally, so the bisection keeps the best sufficient value.
    parameter = 2
    estimate, release = estimate_at(parameter)
    while estimate > budget and parameter < max_parameter:
        parameter = min(parameter * 2, max_parameter)
        estimate, release = estimate_at(parameter)
    if estimate > budget:
        raise DataError(
            f"no {strategy} parameter up to {max_parameter} meets tolerance {tolerance}"
        )
    low, high = parameter // 2, parameter
    best = (high, estimate, release)
    while high - low > 1:
        mid = (low + high) // 2
        mid_estimate, mid_release = estimate_at(mid)
        if mid_estimate <= budget:
            high = mid
            best = (mid, mid_estimate, mid_release)
        else:
            low = mid
    parameter, estimate, release = best
    return ProtectionPlan(
        strategy=strategy,
        parameter=parameter,
        estimate_before=before,
        estimate_after=estimate,
        release=release,
    )

"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the specific failure mode when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataError",
    "EmptyDatabaseError",
    "InvalidTransactionError",
    "FormatError",
    "BeliefError",
    "InvalidIntervalError",
    "DomainMismatchError",
    "GraphError",
    "InfeasibleMatchingError",
    "NotAChainError",
    "SimulationError",
    "RecipeError",
    "SolverError",
    "BudgetExceeded",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataError(ReproError):
    """A problem with a transaction database or its contents."""


class EmptyDatabaseError(DataError):
    """An operation that requires transactions was given an empty database."""


class InvalidTransactionError(DataError):
    """A transaction violates the model (empty, or items outside the domain)."""


class FormatError(DataError):
    """A serialized dataset (e.g. a FIMI ``.dat`` file) could not be parsed."""


class BeliefError(ReproError):
    """A problem with a belief function."""


class InvalidIntervalError(BeliefError):
    """A belief interval violates ``0 <= low <= high <= 1``."""


class DomainMismatchError(BeliefError):
    """Two objects that must share an item domain do not."""


class GraphError(ReproError):
    """A problem with a consistent-mapping bipartite graph."""


class InfeasibleMatchingError(GraphError):
    """The bipartite graph admits no consistent perfect matching."""


class NotAChainError(GraphError):
    """A belief function expected to form a chain (paper, Section 4.2) does not."""


class SimulationError(ReproError):
    """The matching-swap simulator could not produce valid samples."""


class RecipeError(ReproError):
    """The Assess-Risk recipe was invoked with invalid inputs."""


class SolverError(ReproError):
    """A malformed observation or instance fed to the attacker workbench."""


class BudgetExceeded(ReproError):
    """A compute budget (deadline, sweep quota, or cancellation) ran out.

    Carries the best *partial* estimate computed before exhaustion (a
    :class:`repro.budget.PartialEstimate`, or ``None`` when nothing was
    ready) so anytime callers can degrade instead of failing outright.

    Subclasses :class:`ReproError` deliberately: budget exhaustion is
    deterministic for a given schedule, so the service layer's retry
    logic must never retry it.
    """

    def __init__(self, message: str, partial: object | None = None, reason: str = "deadline") -> None:
        super().__init__(message)
        self.partial = partial
        self.reason = reason

"""The O-estimate heuristic (paper, Section 5, Figure 5).

The O-estimate of the expected number of cracks is::

    OE(beta, D) = sum over compliant items x of 1 / O_x

where ``O_x`` is the outdegree of ``x`` in the consistent-mapping graph —
the number of anonymized items that can map to ``x``.  Under compliancy
the true edge ``(x', x)`` is among them, so ``1/O_x`` approximates the
probability that ``x`` is cracked.  For alpha-compliant belief functions
the sum runs over the compliant subset only (Section 5.3): a
non-compliant item can never be cracked by a consistent mapping.

The efficient implementation follows Figure 5: one pass to get observed
frequencies, a sort into frequency groups, then two binary searches plus
a prefix-sum lookup per item — ``O(|D| + n log n)`` overall.  Degree-1
propagation (Figure 7) can optionally be applied first, turning forced
pairs into certainties as in Figure 6(a).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Hashable

from repro.beliefs.function import BeliefFunction
from repro.graph.bipartite import MappingSpace, space_from_frequencies
from repro.graph.propagation import propagate_degree_one

__all__ = ["OEstimateResult", "o_estimate", "o_estimate_from_frequencies"]

Item = Hashable


@dataclass(frozen=True)
class OEstimateResult:
    """Result of an O-estimate computation.

    Attributes
    ----------
    value:
        The estimated expected number of cracks ``OE(beta, D)``.
    n:
        Domain size, so ``value / n`` is the expected *fraction* cracked.
    n_compliant:
        Number of items the estimate summed over.
    n_forced:
        Number of pairs fixed by degree-1 propagation (0 when propagation
        was not applied); forced true pairs contribute exactly 1 each.
    propagated:
        Whether Figure 7 propagation was applied before estimating.
    """

    value: float
    n: int
    n_compliant: int
    n_forced: int = 0
    propagated: bool = False

    @property
    def fraction(self) -> float:
        """Expected cracks as a fraction of the domain (Figure 11's y-axis)."""
        return self.value / self.n

    def within_tolerance(self, tolerance: float) -> bool:
        """Whether the estimate is inside the owner's tolerance ``tau``."""
        return self.value <= tolerance * self.n


def o_estimate(
    space: MappingSpace,
    compliant_indices: Iterable[int] | None = None,
    propagate: bool = False,
    interest: Iterable | None = None,
) -> OEstimateResult:
    """Compute the O-estimate on a mapping space.

    Parameters
    ----------
    space:
        The consistent-mapping space (frequency-based or explicit).
    compliant_indices:
        Item indices to sum over.  Defaults to the items on which the
        belief is actually compliant (true edge present) — the paper's
        definition for both the fully compliant and alpha-compliant cases.
    propagate:
        Apply degree-1 propagation (Figure 7) first.  Forced pairs count
        1 when true and 0 otherwise; remaining items use their reduced
        outdegrees.
    interest:
        Optional subset of *items* the owner cares about (Lemmas 2 and 4:
        e.g. the frequent items, or those with the highest margin).  The
        estimate then counts expected cracks among these items only; the
        reported ``n`` stays the full domain size.
    """
    if compliant_indices is None:
        compliant = set(int(i) for i in space.compliant_indices())
    else:
        compliant = set(int(i) for i in compliant_indices)
    if interest is not None:
        wanted = {space.item_index(item) for item in interest}
        compliant &= wanted

    if not propagate:
        outdegrees = space.outdegrees()
        value = float(sum(1.0 / outdegrees[i] for i in compliant if outdegrees[i] > 0))
        return OEstimateResult(
            value=value, n=space.n, n_compliant=len(compliant)
        )

    result = propagate_degree_one(space)
    value = 0.0
    for i, j in result.forced.items():
        if i in compliant and j == space.true_partner(i):
            value += 1.0
    for i, degree in result.remaining_outdegrees.items():
        if i not in compliant or degree <= 0:
            continue
        if space.true_partner(i) not in result.remaining_adjacency[i]:
            continue  # the true edge was pruned: x can no longer be cracked
        value += 1.0 / degree
    return OEstimateResult(
        value=value,
        n=space.n,
        n_compliant=len(compliant),
        n_forced=result.n_forced,
        propagated=True,
    )


def o_estimate_from_frequencies(
    belief: BeliefFunction,
    true_frequencies: Mapping[Item, float],
    propagate: bool = False,
) -> OEstimateResult:
    """Convenience wrapper: build the space from frequencies, then estimate.

    This is exactly the procedure of Figure 5: the owner knows the true
    frequencies (one database pass), forms the frequency groups of the
    anonymized items, and sums ``1/O_x`` using prefix sums.
    """
    space = space_from_frequencies(belief, true_frequencies)
    return o_estimate(space, propagate=propagate)

"""Exact expected-crack formulas for the two extremes (paper, Section 3).

* Lemma 1 — ignorant belief function: the space of mappings is the
  complete bipartite graph and ``E[X] = 1`` regardless of ``n``.
* Lemma 2 — restricted to a subset of interest ``I_1``:
  ``E[X] = n_1 / n``.
* Lemma 3 — compliant point-valued belief function: the graph splits
  into one complete bipartite component per frequency group, so
  ``E[X] = g`` (the number of distinct observed frequencies).
* Lemma 4 — point-valued, subset of interest: ``E[X] = sum c_i / n_i``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Hashable

from repro.data.frequency import FrequencyGroups
from repro.errors import DataError, DomainMismatchError

__all__ = [
    "expected_cracks_ignorant",
    "expected_cracks_point_valued",
    "expected_cracks_point_valued_subset",
]

Item = Hashable


def expected_cracks_ignorant(n: int, n_interest: int | None = None) -> float:
    """Expected cracks under the ignorant belief function (Lemmas 1–2).

    Parameters
    ----------
    n:
        Domain size ``|I|``.
    n_interest:
        Size of the subset of items the owner cares about (``|I_1|``);
        defaults to the whole domain, giving Lemma 1's ``E[X] = 1``.
    """
    if n <= 0:
        raise DataError(f"domain size must be positive, got {n}")
    if n_interest is None:
        return 1.0
    if not 0 <= n_interest <= n:
        raise DataError(f"subset size {n_interest} outside [0, {n}]")
    return n_interest / n


def expected_cracks_point_valued(frequencies: Mapping[Item, float] | FrequencyGroups) -> float:
    """Expected cracks under the compliant point-valued belief (Lemma 3).

    Equals ``g``, the number of distinct observed frequencies: each
    frequency group is a complete bipartite component contributing exactly
    one expected crack — items with equal frequency camouflage each other.
    """
    groups = frequencies if isinstance(frequencies, FrequencyGroups) else FrequencyGroups(dict(frequencies))
    return float(len(groups))


def expected_cracks_point_valued_subset(
    frequencies: Mapping[Item, float] | FrequencyGroups,
    interest: Iterable[Item],
) -> float:
    """Expected cracks of the items of interest, point-valued case (Lemma 4).

    ``E[X] = sum over groups of c_i / n_i`` where ``n_i`` is the group size
    and ``c_i`` the number of interesting items in the group.
    """
    groups = frequencies if isinstance(frequencies, FrequencyGroups) else FrequencyGroups(dict(frequencies))
    interest_set = frozenset(interest)
    covered = set()
    expected = 0.0
    for group in groups.groups:
        group_set = frozenset(group)
        wanted = interest_set & group_set
        covered.update(wanted)
        if wanted:
            expected += len(wanted) / len(group_set)
    missing = interest_set - covered
    if missing:
        raise DomainMismatchError(
            f"{len(missing)} item(s) of interest are not in the grouped domain"
        )
    return expected

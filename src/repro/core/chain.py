"""Chain interval belief functions (paper, Section 4.2 and Section 5.2).

A compliant interval belief function forms a *chain* when every belief
group admits either exactly one frequency group (an *exclusive* group) or
two successive frequency groups (a *shared* group).  For chains the paper
derives an exact expected-crack formula (Lemmas 5 and 6) and compares it
against the O-estimate, whose error ``Delta`` it tabulates in Section 5.2.

Note on Lemma 6 as printed: the first shared-group summand appears
without the square that Lemma 5 (its ``k = 2`` instance) requires; we use
the squared form, which reproduces both Lemma 5 and the paper's worked
example (``E[X] = 74/45`` for Figure 4(a)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymize.mapping import AnonymizedItem
from repro.errors import NotAChainError
from repro.graph.bipartite import FrequencyMappingSpace

__all__ = [
    "ChainSpec",
    "chain_expected_cracks",
    "chain_o_estimate",
    "chain_delta",
    "chain_percentage_error",
    "chain_matching_count",
    "space_from_chain",
    "chain_from_space",
]


@dataclass(frozen=True)
class ChainSpec:
    """Sizes describing a chain of length ``k`` (Figure 4(b)).

    Attributes
    ----------
    group_sizes:
        ``(n_1, ..., n_k)`` — sizes of the observed frequency groups.
    exclusive_sizes:
        ``(e_1, ..., e_k)`` — sizes of the exclusive belief groups.
    shared_sizes:
        ``(s_1, ..., s_{k-1})`` — sizes of the shared belief groups.
    """

    group_sizes: tuple[int, ...]
    exclusive_sizes: tuple[int, ...]
    shared_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        n, e, s = self.group_sizes, self.exclusive_sizes, self.shared_sizes
        k = len(n)
        if k == 0:
            raise NotAChainError("a chain needs at least one frequency group")
        if len(e) != k or len(s) != k - 1:
            raise NotAChainError(
                f"chain of length {k} needs {k} exclusive sizes and {k - 1} shared sizes"
            )
        if any(x < 0 for x in e) or any(x < 0 for x in s) or any(x <= 0 for x in n):
            raise NotAChainError("group sizes must be positive, e/s sizes non-negative")
        if sum(e) + sum(s) != sum(n):
            raise NotAChainError(
                f"belief-group sizes (sum {sum(e) + sum(s)}) must partition the "
                f"domain (sum of group sizes {sum(n)})"
            )
        # The split of each shared group between its two frequency groups
        # is forced by the size constraints (Section 4.2): validate it.
        for i, (c, d) in enumerate(zip(self.correct_to_lower(), self.correct_to_upper())):
            if c < 0 or d < 0:
                raise NotAChainError(
                    f"shared group #{i + 1} would need a negative split "
                    f"(c={c}, d={d}); sizes are not chain-consistent"
                )

    @property
    def k(self) -> int:
        """Chain length — the number of frequency groups."""
        return len(self.group_sizes)

    @property
    def n(self) -> int:
        """Domain size."""
        return sum(self.group_sizes)

    def correct_to_lower(self) -> tuple[int, ...]:
        """``c_i`` — items of shared group ``i`` truly in frequency group ``i``.

        Determined by the sizes via ``n_i = e_i + d_{i-1} + c_i``.
        """
        c: list[int] = []
        d_prev = 0
        for i in range(self.k - 1):
            c_i = self.group_sizes[i] - self.exclusive_sizes[i] - d_prev
            c.append(c_i)
            d_prev = self.shared_sizes[i] - c_i
        return tuple(c)

    def correct_to_upper(self) -> tuple[int, ...]:
        """``d_i`` — items of shared group ``i`` truly in frequency group ``i + 1``."""
        c = self.correct_to_lower()
        return tuple(s_i - c_i for s_i, c_i in zip(self.shared_sizes, c))


def chain_expected_cracks(spec: ChainSpec) -> float:
    """Exact expected cracks for a chain (Lemmas 5–6).

    ``E[X] = sum_j e_j/n_j + sum_i c_i^2/(s_i n_i) + sum_i d_i^2/(s_i n_{i+1})``.
    """
    n, e, s = spec.group_sizes, spec.exclusive_sizes, spec.shared_sizes
    expected = sum(e_j / n_j for e_j, n_j in zip(e, n))
    for i, (c_i, d_i) in enumerate(zip(spec.correct_to_lower(), spec.correct_to_upper())):
        if s[i] == 0:
            continue  # empty shared group contributes nothing
        expected += c_i * c_i / (s[i] * n[i])
        expected += d_i * d_i / (s[i] * n[i + 1])
    return expected


def chain_o_estimate(spec: ChainSpec) -> float:
    """The O-estimate for a chain (Section 5.2).

    ``OE = sum_j e_j/n_j + sum_j s_j/(n_j + n_{j+1})`` — every shared item
    has outdegree ``n_j + n_{j+1}``.
    """
    n, e, s = spec.group_sizes, spec.exclusive_sizes, spec.shared_sizes
    estimate = sum(e_j / n_j for e_j, n_j in zip(e, n))
    estimate += sum(s_j / (n[j] + n[j + 1]) for j, s_j in enumerate(s))
    return estimate


def chain_delta(spec: ChainSpec) -> float:
    """``Delta`` — exact value minus O-estimate (Section 5.2)."""
    return chain_expected_cracks(spec) - chain_o_estimate(spec)


def chain_percentage_error(spec: ChainSpec) -> float:
    """``|Delta|`` relative to the exact value, in percent (the §5.2 table)."""
    exact = chain_expected_cracks(spec)
    return abs(chain_delta(spec)) / exact * 100.0


def _upward_flows(spec: ChainSpec) -> tuple[int, ...]:
    """``t_i`` — shared-group-``i`` items every matching sends to group ``i+1``.

    Chains have no routing freedom in *counts*: filling group ``i``'s
    capacity forces ``t_i = s_i + e_i + t_{i-1} - n_i``.  Only *which*
    shared items go up, and the within-group bijections, vary across
    matchings — the fact behind :func:`chain_matching_count` and the
    exact sampler in :mod:`repro.simulation.exact`.
    """
    flows: list[int] = []
    t_prev = 0
    for i in range(spec.k - 1):
        t_i = spec.shared_sizes[i] + spec.exclusive_sizes[i] + t_prev - spec.group_sizes[i]
        if not 0 <= t_i <= spec.shared_sizes[i]:
            raise NotAChainError(
                f"boundary #{i + 1} needs an out-of-range upward flow t={t_i}"
            )
        flows.append(t_i)
        t_prev = t_i
    return tuple(flows)


def chain_matching_count(spec: ChainSpec) -> int:
    """Exact number of consistent crack mappings of a chain.

    ``count = prod_i C(s_i, t_i) * prod_g n_g!``: choose which shared
    items cross each boundary (counts are forced, see
    :func:`_upward_flows`), then pick the within-group bijections freely.
    Equals the permanent of the chain's adjacency matrix, at closed-form
    cost.
    """
    from math import comb, factorial

    count = 1
    for s_i, t_i in zip(spec.shared_sizes, _upward_flows(spec)):
        count *= comb(s_i, t_i)
    for n_g in spec.group_sizes:
        count *= factorial(n_g)
    return count


def space_from_chain(
    spec: ChainSpec, frequencies: tuple[float, ...] | None = None
) -> FrequencyMappingSpace:
    """Materialize a chain as a concrete mapping space.

    Builds items, anonymized items, observed frequencies and a compliant
    interval belief realizing exactly the chain structure: exclusive items
    get the point interval of their group's frequency, shared items get
    the interval spanning their two groups' frequencies.  Used to validate
    the closed forms against enumeration/simulation.

    Parameters
    ----------
    spec:
        The chain sizes.
    frequencies:
        The ``k`` increasing group frequencies; defaults to an even grid
        in ``(0, 1)``.
    """
    k = spec.k
    if frequencies is None:
        frequencies = tuple((g + 1) / (k + 1) for g in range(k))
    if len(frequencies) != k or any(
        not 0.0 <= f <= 1.0 for f in frequencies
    ) or list(frequencies) != sorted(set(frequencies)):
        raise NotAChainError("frequencies must be k distinct increasing values in [0, 1]")

    observed: list[float] = []
    for g, size in enumerate(spec.group_sizes):
        observed.extend([frequencies[g]] * size)
    n = spec.n
    anonymized = tuple(AnonymizedItem(j + 1) for j in range(n))

    # Anonymized indices of each group, consumed as true partners are dealt.
    cursor = 0
    group_slots: list[list[int]] = []
    for size in spec.group_sizes:
        group_slots.append(list(range(cursor, cursor + size)))
        cursor += size

    items: list[str] = []
    intervals: list[tuple[float, float]] = []
    pairing: list[int] = []

    def add_item(name: str, interval: tuple[float, float], true_group: int) -> None:
        items.append(name)
        intervals.append(interval)
        pairing.append(group_slots[true_group].pop())

    for g in range(k):
        for idx in range(spec.exclusive_sizes[g]):
            add_item(f"E{g + 1}.{idx + 1}", (frequencies[g], frequencies[g]), g)
    c, d = spec.correct_to_lower(), spec.correct_to_upper()
    for g in range(k - 1):
        interval = (frequencies[g], frequencies[g + 1])
        for idx in range(c[g]):
            add_item(f"S{g + 1}.lo{idx + 1}", interval, g)
        for idx in range(d[g]):
            add_item(f"S{g + 1}.hi{idx + 1}", interval, g + 1)

    return FrequencyMappingSpace(
        items=items,
        anonymized=anonymized,
        observed=observed,
        intervals=intervals,
        true_partner_of=pairing,
    )


def chain_from_space(space: FrequencyMappingSpace) -> ChainSpec:
    """Detect chain structure in a mapping space and extract its sizes.

    Raises :class:`~repro.errors.NotAChainError` when some belief group
    admits more than two frequency groups, two non-successive groups, or
    the sizes are not chain-consistent.
    """
    partition = space.belief_groups()
    k = len(space.groups)
    if not partition.is_chain(k):
        raise NotAChainError("the belief groups do not form a chain")
    exclusive = [0] * k
    shared = [0] * (k - 1)
    for group in partition:
        g_lo, g_hi = group.group_range
        if g_hi - g_lo == 1:
            exclusive[g_lo] += len(group.items)
        else:
            shared[g_lo] += len(group.items)
    return ChainSpec(
        group_sizes=tuple(int(c) for c in space.groups.counts),
        exclusive_sizes=tuple(exclusive),
        shared_sizes=tuple(shared),
    )

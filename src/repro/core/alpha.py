"""alpha-compliant analysis (paper, Sections 5.3 and 6.2).

The recipe evaluates the O-estimate over a *range* of degrees of
compliancy: for each ``alpha``, a random ``ceil(alpha * n)``-subset of
items is compliant and only those contribute ``1/O_x``.  Averaging over
several random runs, the expected estimate as a function of ``alpha`` is
used to find ``alpha_max`` — the largest degree of compliancy for which
the expected cracks stay within the owner's tolerance ``tau``.

Each run draws one random permutation of the compliant items and takes
the first ``ceil(alpha * n)`` of it as the compliant subset.  Along a
single permutation the subsets are *nested*, which is exactly the
partial-order requirement of Lemma 10 that makes the paper's binary
search sound; it also means each run's estimate is a prefix sum, so the
whole alpha-curve of a run costs ``O(n)``.

Both the paper's binary search (:func:`alpha_max_binary_search`) and the
exact inversion of the averaged step function (:func:`alpha_max`) are
provided; they agree to the search tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import RecipeError
from repro.graph.bipartite import MappingSpace

__all__ = [
    "AlphaCurve",
    "o_estimate_alpha",
    "compliance_prefix_sums",
    "alpha_curve",
    "alpha_max",
    "alpha_max_binary_search",
]


def _compliant_inverse_outdegrees(
    space: MappingSpace, interest: Iterable | None = None
) -> np.ndarray:
    """Per-compliant-item contributions ``1/O_x``.

    With *interest* (Lemmas 2 and 4), items outside the subset contribute
    0 — they still occupy compliancy "slots" when alpha-subsets are
    drawn, but their cracks do not count against the owner's budget.
    """
    outdegrees = space.outdegrees()
    compliant = space.compliant_indices()
    degrees = outdegrees[compliant]
    if np.any(degrees <= 0):
        raise RecipeError(
            "a compliant item has outdegree 0 — the base belief function is inconsistent"
        )
    contributions = 1.0 / degrees
    if interest is not None:
        wanted = {space.item_index(item) for item in interest}
        mask = np.array([int(i) in wanted for i in compliant])
        contributions = contributions * mask
    return contributions


def compliance_prefix_sums(
    space: MappingSpace,
    runs: int = 5,
    rng: np.random.Generator | None = None,
    interest: Iterable | None = None,
) -> np.ndarray:
    """Per-run prefix sums of ``1/O_x`` along random item permutations.

    ``result[r, c]`` is run ``r``'s O-estimate when exactly ``c`` items are
    compliant.  Row ``r`` is non-decreasing in ``c`` (Lemma 10), and
    ``result[:, n_compliant]`` equals the fully compliant O-estimate.
    With *interest*, only the subset's cracks are counted (Lemma 4).
    """
    if runs <= 0:
        raise RecipeError(f"need at least one run, got {runs}")
    rng = np.random.default_rng() if rng is None else rng
    inverse = _compliant_inverse_outdegrees(space, interest=interest)
    prefix = np.zeros((runs, len(inverse) + 1), dtype=np.float64)
    for r in range(runs):
        shuffled = rng.permutation(inverse)
        prefix[r, 1:] = np.cumsum(shuffled)
    return prefix


@dataclass(frozen=True)
class AlphaCurve:
    """O-estimates as a function of the degree of compliancy (Figure 11).

    Attributes
    ----------
    alphas:
        The evaluated degrees of compliancy.
    means, stds:
        Mean and sample standard deviation of the O-estimate across runs
        at each alpha (in *expected cracks*, not fraction).
    n:
        Domain size (divide by it for Figure 11's fraction axis).
    """

    alphas: tuple[float, ...]
    means: tuple[float, ...]
    stds: tuple[float, ...]
    n: int

    @property
    def fractions(self) -> tuple[float, ...]:
        """Mean expected cracks as fractions of the domain size."""
        return tuple(m / self.n for m in self.means)


def _counts_for_alphas(alphas: Sequence[float], n: int) -> list[int]:
    counts = []
    for alpha in alphas:
        if not 0.0 <= alpha <= 1.0:
            raise RecipeError(f"alpha must be in [0, 1], got {alpha}")
        counts.append(math.ceil(alpha * n))
    return counts


def o_estimate_alpha(
    space: MappingSpace,
    alpha: float,
    runs: int = 5,
    rng: np.random.Generator | None = None,
) -> float:
    """Mean O-estimate at a single degree of compliancy (Section 6.2)."""
    curve = alpha_curve(space, [alpha], runs=runs, rng=rng)
    return curve.means[0]


def alpha_curve(
    space: MappingSpace,
    alphas: Sequence[float],
    runs: int = 5,
    rng: np.random.Generator | None = None,
) -> AlphaCurve:
    """Evaluate the O-estimate across degrees of compliancy (Figure 11).

    The compliant subset at each alpha is a random subset of the items on
    which the *base* belief is compliant; subsets are nested within each
    run, satisfying Lemma 10's partial order.
    """
    prefix = compliance_prefix_sums(space, runs=runs, rng=rng)
    counts = _counts_for_alphas(alphas, space.n)
    n_compliant = prefix.shape[1] - 1
    means, stds = [], []
    for count in counts:
        # The base belief may itself be compliant on fewer than n items;
        # alpha applies to the domain, capped by the available ones.
        count = min(count, n_compliant)
        column = prefix[:, count]
        means.append(float(column.mean()))
        stds.append(float(column.std(ddof=1)) if prefix.shape[0] > 1 else 0.0)
    return AlphaCurve(
        alphas=tuple(float(a) for a in alphas),
        means=tuple(means),
        stds=tuple(stds),
        n=space.n,
    )


def alpha_max(
    space: MappingSpace,
    tolerance: float,
    runs: int = 5,
    rng: np.random.Generator | None = None,
    interest: Iterable | None = None,
) -> float:
    """Largest alpha with mean O-estimate within tolerance (exact inversion).

    Computes the averaged step function over all compliant-count values
    and inverts it directly — equivalent to the limit of the paper's
    binary search as its tolerance goes to 0.  With *interest*, the
    tolerance budget is ``tolerance * |interest|`` and only the subset's
    cracks are counted.
    """
    if not 0.0 <= tolerance <= 1.0:
        raise RecipeError(f"tolerance must be in [0, 1], got {tolerance}")
    basis = space.n if interest is None else len(set(interest))
    prefix = compliance_prefix_sums(space, runs=runs, rng=rng, interest=interest)
    mean_curve = prefix.mean(axis=0)
    budget = tolerance * basis
    admissible = np.flatnonzero(mean_curve <= budget + 1e-12)
    best_count = int(admissible[-1]) if admissible.size else 0
    return best_count / space.n


def alpha_max_binary_search(
    space: MappingSpace,
    tolerance: float,
    runs: int = 5,
    rng: np.random.Generator | None = None,
    precision: float = 1e-3,
) -> float:
    """The paper's binary search for alpha_max (Figure 8, steps 8–9).

    Kept as a faithful alternative to :func:`alpha_max`; the shared
    per-run permutations make the evaluated function monotone, so the
    search converges to the same answer up to *precision*.
    """
    if not 0.0 <= tolerance <= 1.0:
        raise RecipeError(f"tolerance must be in [0, 1], got {tolerance}")
    prefix = compliance_prefix_sums(space, runs=runs, rng=rng)
    mean_curve = prefix.mean(axis=0)
    n = space.n
    budget = tolerance * n

    def estimate(alpha: float) -> float:
        count = min(math.ceil(alpha * n), len(mean_curve) - 1)
        return float(mean_curve[count])

    low, high = 0.0, 1.0
    if estimate(1.0) <= budget:
        return 1.0
    if estimate(0.0) > budget:
        return 0.0
    while high - low > precision:
        mid = (low + high) / 2
        if estimate(mid) <= budget:
            low = mid
        else:
            high = mid
    return low

"""The paper's primary contribution: expected-crack analysis.

* :mod:`repro.core.exact` — closed forms for the two extremes
  (Lemmas 1–4): ignorant and compliant point-valued belief functions.
* :mod:`repro.core.chain` — chain interval belief functions
  (Lemmas 5–6) and the chain O-estimate / Delta error of Section 5.2.
* :mod:`repro.core.oestimate` — the O-estimate heuristic (Figure 5),
  optionally combined with degree-1 propagation (Figure 7).
* :mod:`repro.core.alpha` — alpha-compliant analysis (Section 5.3):
  random compliant-subset models, alpha curves and ``alpha_max``.
"""

from repro.core.alpha import (
    AlphaCurve,
    alpha_curve,
    alpha_max,
    alpha_max_binary_search,
    o_estimate_alpha,
)
from repro.core.chain import (
    ChainSpec,
    chain_delta,
    chain_expected_cracks,
    chain_from_space,
    chain_matching_count,
    chain_o_estimate,
    chain_percentage_error,
    space_from_chain,
)
from repro.core.exact import (
    expected_cracks_ignorant,
    expected_cracks_point_valued,
    expected_cracks_point_valued_subset,
)
from repro.core.oestimate import OEstimateResult, o_estimate, o_estimate_from_frequencies

__all__ = [
    "expected_cracks_ignorant",
    "expected_cracks_point_valued",
    "expected_cracks_point_valued_subset",
    "ChainSpec",
    "chain_expected_cracks",
    "chain_o_estimate",
    "chain_delta",
    "chain_percentage_error",
    "chain_matching_count",
    "chain_from_space",
    "space_from_chain",
    "OEstimateResult",
    "o_estimate",
    "o_estimate_from_frequencies",
    "AlphaCurve",
    "alpha_curve",
    "alpha_max",
    "alpha_max_binary_search",
    "o_estimate_alpha",
]

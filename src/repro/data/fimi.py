"""Reading and writing FIMI ``.dat`` transaction files.

The paper's experiments (Section 7.1) use datasets from the UCI KDD and
FIMI repositories, distributed in the FIMI workshop's plain-text format:
one transaction per line, items as whitespace-separated non-negative
integers.  This module lets real FIMI files be dropped into the library
unchanged; the calibrated synthetic benchmarks of
:mod:`repro.datasets.benchmarks` are used when the originals are not
available.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.data.database import TransactionDatabase
from repro.errors import FormatError

__all__ = ["read_fimi", "write_fimi", "iter_fimi_lines", "scan_fimi_profile"]

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def iter_fimi_lines(path: PathLike) -> Iterator[frozenset]:
    """Yield transactions from a FIMI ``.dat`` (optionally gzipped) file.

    Blank lines are skipped.  Raises :class:`~repro.errors.FormatError` on
    non-integer tokens, with the offending line number in the message.
    """
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            tokens = line.split()
            if not tokens:
                continue
            try:
                items = frozenset(int(token) for token in tokens)
            except ValueError as exc:
                raise FormatError(f"{path}:{lineno}: non-integer item token ({exc})") from exc
            yield items


def read_fimi(path: PathLike, domain: Iterable[int] | None = None) -> TransactionDatabase:
    """Load a FIMI ``.dat`` file into a :class:`TransactionDatabase`.

    Parameters
    ----------
    path:
        The ``.dat`` or ``.dat.gz`` file.
    domain:
        Optional explicit item universe; defaults to the union of all
        transactions read.
    """
    return TransactionDatabase(iter_fimi_lines(path), domain=domain)


def scan_fimi_profile(path: PathLike, domain: Iterable[int] | None = None):
    """Stream a FIMI file into a counts-only frequency profile.

    One pass, memory proportional to the item domain rather than the
    transaction count — every frequency-based analysis in the library
    (frequency groups, O-estimates, the whole recipe) runs off the
    returned :class:`~repro.data.database.FrequencyProfile`, so arbitrarily
    large files can be assessed without materializing transactions.
    """
    from collections import Counter

    from repro.data.database import FrequencyProfile

    counts: Counter = Counter()
    n_transactions = 0
    for transaction in iter_fimi_lines(path):
        n_transactions += 1
        counts.update(transaction)
    if domain is not None:
        for item in domain:
            counts.setdefault(int(item), 0)
    if n_transactions == 0:
        raise FormatError(f"{path}: no transactions found")
    return FrequencyProfile(dict(counts), n_transactions)


def write_fimi(db: TransactionDatabase, path: PathLike) -> None:
    """Write *db* in FIMI format (one sorted transaction per line).

    All items must be integers — the FIMI format cannot represent anything
    else.
    """
    for transaction in db:
        for item in transaction:
            if not isinstance(item, int):
                raise FormatError(f"FIMI format requires integer items, got {item!r}")
    with _open_text(path, "w") as handle:
        for transaction in db:
            handle.write(" ".join(str(item) for item in sorted(transaction)))
            handle.write("\n")

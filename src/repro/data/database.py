"""Transaction databases and frequency profiles.

The paper (Section 2.1) models a database ``D`` as a sequence of
transactions, each a non-empty subset of a universe of items ``I``.  The
frequency of an item is the fraction of transactions that contain it.

Two concrete representations are provided:

:class:`TransactionDatabase`
    A fully materialized database.  Exact, supports transaction-level
    operations (sampling, mining, anonymization), and is the default for
    tests, examples and small/medium experiments.

:class:`FrequencyProfile`
    A counts-only view (item -> number of containing transactions).  Every
    analysis in the paper — frequency groups, O-estimates, the recipe —
    consumes only per-item frequencies, so the profile is a sufficient and
    much cheaper substrate for large parameter sweeps.  Per-item sampling
    marginals are exactly hypergeometric, which
    :func:`repro.data.sampling.sample_profile` exploits.

Both satisfy the :class:`FrequencySource` protocol.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Mapping
from typing import Hashable, Protocol, runtime_checkable

from repro.errors import EmptyDatabaseError, InvalidTransactionError

__all__ = ["Item", "Transaction", "FrequencySource", "TransactionDatabase", "FrequencyProfile"]

Item = Hashable
Transaction = frozenset


@runtime_checkable
class FrequencySource(Protocol):
    """Anything that can report an item domain and per-item frequencies."""

    @property
    def domain(self) -> frozenset:
        """The universe of items ``I``."""

    @property
    def n_transactions(self) -> int:
        """The number of transactions ``|D|``."""

    def item_count(self, item: Item) -> int:
        """Number of transactions containing *item* (0 if absent)."""

    def frequency(self, item: Item) -> float:
        """Fraction of transactions containing *item*."""

    def frequencies(self) -> dict:
        """Mapping of every domain item to its frequency."""


class TransactionDatabase:
    """A materialized sequence of transactions over an item domain.

    Parameters
    ----------
    transactions:
        An iterable of item collections.  Each transaction must be
        non-empty; duplicate items within a transaction are collapsed.
    domain:
        Optional explicit universe ``I``.  When given, every transaction
        must draw its items from it; items of the domain never seen in a
        transaction simply have frequency 0.  When omitted, the domain is
        the union of all transactions.

    Examples
    --------
    >>> db = TransactionDatabase([[1, 2], [2, 3], [1, 2, 3]])
    >>> sorted(db.domain)
    [1, 2, 3]
    >>> db.frequency(2)
    1.0
    """

    __slots__ = ("_transactions", "_domain", "_counts")

    def __init__(self, transactions: Iterable[Iterable[Item]], domain: Iterable[Item] | None = None):
        materialized: list[frozenset] = []
        for index, raw in enumerate(transactions):
            transaction = frozenset(raw)
            if not transaction:
                raise InvalidTransactionError(f"transaction #{index} is empty")
            materialized.append(transaction)
        self._transactions: tuple[frozenset, ...] = tuple(materialized)

        seen: set = set()
        for transaction in self._transactions:
            seen.update(transaction)
        if domain is None:
            self._domain = frozenset(seen)
        else:
            self._domain = frozenset(domain)
            stray = seen - self._domain
            if stray:
                sample = sorted(map(repr, list(stray)[:5]))
                raise InvalidTransactionError(
                    f"{len(stray)} item(s) outside the declared domain, e.g. {', '.join(sample)}"
                )

        counts: Counter = Counter()
        for transaction in self._transactions:
            counts.update(transaction)
        self._counts = counts

    # -- FrequencySource ------------------------------------------------

    @property
    def domain(self) -> frozenset:
        """The universe of items ``I``."""
        return self._domain

    @property
    def n_transactions(self) -> int:
        """The number of transactions ``|D|``."""
        return len(self._transactions)

    def item_count(self, item: Item) -> int:
        """Number of transactions containing *item*."""
        return self._counts.get(item, 0)

    def frequency(self, item: Item) -> float:
        """Fraction of transactions containing *item* (paper, Section 2.1)."""
        if not self._transactions:
            raise EmptyDatabaseError("frequency is undefined on an empty database")
        return self._counts.get(item, 0) / len(self._transactions)

    def frequencies(self) -> dict:
        """Mapping of every domain item to its frequency."""
        if not self._transactions:
            raise EmptyDatabaseError("frequencies are undefined on an empty database")
        m = len(self._transactions)
        return {item: self._counts.get(item, 0) / m for item in self._domain}

    # -- sequence behaviour ----------------------------------------------

    @property
    def transactions(self) -> tuple[frozenset, ...]:
        """The transactions, in original order."""
        return self._transactions

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> frozenset:
        return self._transactions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return self._transactions == other._transactions and self._domain == other._domain

    def __hash__(self) -> int:
        return hash((self._transactions, self._domain))

    def __repr__(self) -> str:
        return f"TransactionDatabase(n_transactions={len(self._transactions)}, n_items={len(self._domain)})"

    # -- conversions ------------------------------------------------------

    def to_profile(self) -> "FrequencyProfile":
        """Collapse to a counts-only :class:`FrequencyProfile`."""
        counts = {item: self._counts.get(item, 0) for item in self._domain}
        return FrequencyProfile(counts, self.n_transactions)

    def restrict(self, items: Iterable[Item]) -> "TransactionDatabase":
        """Project every transaction onto *items*, dropping emptied ones."""
        keep = frozenset(items)
        projected = [t & keep for t in self._transactions]
        return TransactionDatabase((t for t in projected if t), domain=keep & self._domain)


class FrequencyProfile:
    """A counts-only frequency view of a transaction database.

    Parameters
    ----------
    counts:
        Mapping of item -> number of transactions containing it.  The keys
        define the domain.
    n_transactions:
        Total number of transactions the counts were taken over.  Every
        count must lie in ``[0, n_transactions]``.
    """

    __slots__ = ("_counts", "_n_transactions", "_domain")

    def __init__(self, counts: Mapping[Item, int], n_transactions: int):
        if n_transactions <= 0:
            raise EmptyDatabaseError("a frequency profile needs at least one transaction")
        for item, count in counts.items():
            if not 0 <= count <= n_transactions:
                raise InvalidTransactionError(
                    f"count {count} for item {item!r} outside [0, {n_transactions}]"
                )
        self._counts = dict(counts)
        self._n_transactions = int(n_transactions)
        self._domain = frozenset(self._counts)

    @classmethod
    def from_frequencies(cls, frequencies: Mapping[Item, float], n_transactions: int) -> "FrequencyProfile":
        """Build a profile from fractional frequencies by rounding to counts."""
        counts = {item: round(freq * n_transactions) for item, freq in frequencies.items()}
        return cls(counts, n_transactions)

    # -- FrequencySource ------------------------------------------------

    @property
    def domain(self) -> frozenset:
        """The universe of items ``I``."""
        return self._domain

    @property
    def n_transactions(self) -> int:
        """The number of transactions the counts were taken over."""
        return self._n_transactions

    def item_count(self, item: Item) -> int:
        """Number of transactions containing *item*."""
        return self._counts.get(item, 0)

    def frequency(self, item: Item) -> float:
        """Fraction of transactions containing *item*."""
        return self._counts.get(item, 0) / self._n_transactions

    def frequencies(self) -> dict:
        """Mapping of every domain item to its frequency."""
        return {item: count / self._n_transactions for item, count in self._counts.items()}

    # -- misc --------------------------------------------------------------

    @property
    def counts(self) -> dict:
        """A copy of the item -> count mapping."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._domain)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyProfile):
            return NotImplemented
        return self._counts == other._counts and self._n_transactions == other._n_transactions

    def __hash__(self) -> int:
        return hash((frozenset(self._counts.items()), self._n_transactions))

    def __repr__(self) -> str:
        return f"FrequencyProfile(n_items={len(self._domain)}, n_transactions={self._n_transactions})"

"""Transaction-database substrate (paper, Section 2.1).

This subpackage provides the data model the rest of the library is built
on: transaction databases over an item domain, item-frequency computation
and frequency-group analysis, FIMI ``.dat`` I/O, and transaction sampling
(used by the Similarity-by-Sampling procedure of Section 7.4).
"""

from repro.data.database import FrequencyProfile, FrequencySource, TransactionDatabase
from repro.data.fimi import read_fimi, scan_fimi_profile, write_fimi
from repro.data.frequency import FrequencyGroups, GapStatistics, frequency_table
from repro.data.sampling import sample_profile, sample_transactions
from repro.data.stats import DatabaseStatistics, describe

__all__ = [
    "TransactionDatabase",
    "FrequencyProfile",
    "FrequencySource",
    "frequency_table",
    "FrequencyGroups",
    "GapStatistics",
    "read_fimi",
    "write_fimi",
    "scan_fimi_profile",
    "sample_transactions",
    "sample_profile",
    "DatabaseStatistics",
    "describe",
]

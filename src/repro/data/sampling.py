"""Sampling transactions — the substrate for Similarity-by-Sampling.

Section 7.4 of the paper simulates a hacker's "similar data" by drawing
samples ``D' subset D`` of the owner's database and building belief
functions from the sampled frequencies.  Two paths are provided:

:func:`sample_transactions`
    Draw a without-replacement sample of the transactions of a
    materialized :class:`~repro.data.database.TransactionDatabase`.

:func:`sample_profile`
    The counts-only equivalent for a
    :class:`~repro.data.database.FrequencyProfile`.  When ``s`` of ``m``
    transactions are sampled without replacement, the number of sampled
    transactions containing an item with count ``c`` is exactly
    ``Hypergeometric(m, c, s)`` — so per-item sampled counts can be drawn
    directly without materializing transactions.  All per-item quantities
    (sampled frequencies, sampled gaps, compliancy checks) have exactly
    the right marginal law; only cross-item correlations are ignored,
    which the averaged compliancy curves of Figure 12 do not consume.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import FrequencyProfile, TransactionDatabase
from repro.errors import DataError

__all__ = ["sample_transactions", "sample_profile", "resolve_sample_size"]


def resolve_sample_size(n_transactions: int, fraction: float) -> int:
    """Number of transactions in a *fraction* sample (at least 1)."""
    if not 0.0 < fraction <= 1.0:
        raise DataError(f"sample fraction must be in (0, 1], got {fraction}")
    return max(1, round(fraction * n_transactions))


def sample_transactions(
    db: TransactionDatabase,
    fraction: float,
    rng: np.random.Generator | None = None,
) -> TransactionDatabase:
    """Sample a fraction of *db*'s transactions without replacement.

    The sampled database keeps the full original domain, so items that do
    not appear in the sample have frequency 0 — exactly the view a hacker
    with a partial dataset would have.
    """
    rng = np.random.default_rng() if rng is None else rng
    size = resolve_sample_size(db.n_transactions, fraction)
    indices = rng.choice(db.n_transactions, size=size, replace=False)
    picked = [db[int(i)] for i in indices]
    return TransactionDatabase(picked, domain=db.domain)


def sample_profile(
    profile: FrequencyProfile,
    fraction: float,
    rng: np.random.Generator | None = None,
) -> FrequencyProfile:
    """Sample a frequency profile via exact per-item hypergeometric draws.

    Equivalent in per-item marginal law to sampling ``fraction * m``
    transactions without replacement and re-counting.
    """
    rng = np.random.default_rng() if rng is None else rng
    m = profile.n_transactions
    size = resolve_sample_size(m, fraction)
    items = sorted(profile.domain, key=repr)
    counts = np.array([profile.item_count(item) for item in items], dtype=np.int64)
    sampled = rng.hypergeometric(ngood=counts, nbad=m - counts, nsample=size)
    return FrequencyProfile(dict(zip(items, (int(c) for c in sampled))), size)

"""Frequency groups and gap statistics (paper, Sections 3.2, 6.1, Figure 9).

The paper groups items by their *observed frequency* in the (anonymized)
database: items with equal frequency are mutually indistinguishable to a
hacker who only knows frequencies, so each **frequency group** provides
camouflage to its members (Lemma 3).  The *gaps* between successive group
frequencies drive the recipe's choice of interval width ``delta_med`` (the
median gap, Section 6.1).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.data.database import FrequencySource, Item
from repro.errors import DataError

__all__ = ["frequency_table", "FrequencyGroups", "GapStatistics"]


def frequency_table(source: FrequencySource) -> dict:
    """Return the item -> frequency mapping of *source*.

    Thin convenience wrapper so call sites read like the paper
    ("compute the frequency of every item with a single database pass").
    """
    return source.frequencies()


@dataclass(frozen=True)
class GapStatistics:
    """Summary of the gaps between successive frequency groups (Figure 9)."""

    mean: float
    median: float
    minimum: float
    maximum: float

    @classmethod
    def from_gaps(cls, gaps: Sequence[float]) -> "GapStatistics":
        if not gaps:
            raise DataError("gap statistics need at least two frequency groups")
        ordered = sorted(gaps)
        k = len(ordered)
        if k % 2:
            median = ordered[k // 2]
        else:
            median = (ordered[k // 2 - 1] + ordered[k // 2]) / 2
        return cls(
            mean=math.fsum(ordered) / k,
            median=median,
            minimum=ordered[0],
            maximum=ordered[-1],
        )


class FrequencyGroups:
    """Items partitioned by observed frequency, sorted by frequency.

    Parameters
    ----------
    frequencies:
        Mapping of item -> frequency in ``[0, 1]``.

    Attributes
    ----------
    frequencies_sorted:
        The distinct frequencies ``f_1 < f_2 < ... < f_k``.
    groups:
        ``groups[i]`` is the tuple of items whose frequency is
        ``frequencies_sorted[i]``.
    """

    __slots__ = ("_freqs", "_groups", "_group_of_item")

    def __init__(self, frequencies: dict):
        if not frequencies:
            raise DataError("cannot build frequency groups over an empty domain")
        by_freq: dict[float, list] = defaultdict(list)
        for item, freq in frequencies.items():
            if not 0.0 <= freq <= 1.0:
                raise DataError(f"frequency {freq} of item {item!r} outside [0, 1]")
            by_freq[freq].append(item)
        self._freqs: tuple[float, ...] = tuple(sorted(by_freq))
        self._groups: tuple[tuple, ...] = tuple(
            tuple(sorted(by_freq[f], key=repr)) for f in self._freqs
        )
        self._group_of_item: dict[Item, int] = {}
        for index, group in enumerate(self._groups):
            for item in group:
                self._group_of_item[item] = index

    @classmethod
    def from_source(cls, source: FrequencySource) -> "FrequencyGroups":
        """Build groups straight from a database or profile."""
        return cls(source.frequencies())

    # -- basic structure ---------------------------------------------------

    @property
    def frequencies_sorted(self) -> tuple[float, ...]:
        """The distinct group frequencies in increasing order."""
        return self._freqs

    @property
    def groups(self) -> tuple[tuple, ...]:
        """The item groups, aligned with :attr:`frequencies_sorted`."""
        return self._groups

    @property
    def sizes(self) -> tuple[int, ...]:
        """Group sizes ``n_1, ..., n_k``."""
        return tuple(len(g) for g in self._groups)

    def __len__(self) -> int:
        """The number of distinct frequency groups ``g`` (Lemma 3)."""
        return len(self._groups)

    def group_index(self, item: Item) -> int:
        """Index of the group containing *item*."""
        try:
            return self._group_of_item[item]
        except KeyError:
            raise DataError(f"item {item!r} is not in the grouped domain") from None

    def group_frequency(self, item: Item) -> float:
        """The observed frequency shared by *item*'s group."""
        return self._freqs[self.group_index(item)]

    # -- paper statistics ---------------------------------------------------

    @property
    def n_singletons(self) -> int:
        """Number of size-1 groups ('Size 1 Gps.' column of Figure 9)."""
        return sum(1 for g in self._groups if len(g) == 1)

    def gaps(self) -> tuple[float, ...]:
        """Gaps ``f_{i+1} - f_i`` between successive group frequencies."""
        return tuple(b - a for a, b in zip(self._freqs, self._freqs[1:]))

    def gap_statistics(self) -> GapStatistics:
        """Mean/median/min/max gap (Figure 9, lower table)."""
        return GapStatistics.from_gaps(self.gaps())

    def median_gap(self) -> float:
        """The paper's ``delta_med`` — the median frequency gap (Section 6.1)."""
        return self.gap_statistics().median

    def mean_gap(self) -> float:
        """The mean frequency gap (the paper warns this under-estimates risk)."""
        return self.gap_statistics().mean

    def __repr__(self) -> str:
        return f"FrequencyGroups(n_groups={len(self._groups)}, n_items={len(self._group_of_item)})"

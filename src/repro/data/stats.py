"""Database statistics — the owner's first look at the data.

Collects the quantities the paper's analysis pivots on (domain size,
transaction counts, frequency-group structure, gap statistics) together
with standard workload descriptors (density, transaction lengths) into
one summary object, used by the CLI and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.database import FrequencySource, TransactionDatabase
from repro.data.frequency import FrequencyGroups, GapStatistics

__all__ = ["DatabaseStatistics", "describe"]


@dataclass(frozen=True)
class DatabaseStatistics:
    """A one-object summary of a transaction database or profile.

    Transaction-length fields are ``None`` for counts-only profiles.
    Gap statistics are ``None`` when there are fewer than two frequency
    groups.
    """

    n_items: int
    n_transactions: int
    n_groups: int
    n_singleton_groups: int
    density: float
    min_frequency: float
    max_frequency: float
    gap_statistics: GapStatistics | None
    min_transaction_length: int | None = None
    mean_transaction_length: float | None = None
    max_transaction_length: int | None = None

    def to_text(self) -> str:
        """A terminal-friendly rendering."""
        lines = [
            f"items                : {self.n_items}",
            f"transactions         : {self.n_transactions}",
            f"density              : {self.density:.4f}",
            f"frequency range      : [{self.min_frequency:.5f}, {self.max_frequency:.5f}]",
            f"frequency groups     : {self.n_groups} "
            f"({self.n_singleton_groups} singletons)",
        ]
        if self.gap_statistics is not None:
            stats = self.gap_statistics
            lines.append(
                "group gaps           : "
                f"mean={stats.mean:.6f} median={stats.median:.6f} "
                f"min={stats.minimum:.6f} max={stats.maximum:.6f}"
            )
        if self.mean_transaction_length is not None:
            lines.append(
                "transaction length   : "
                f"min={self.min_transaction_length} "
                f"mean={self.mean_transaction_length:.2f} "
                f"max={self.max_transaction_length}"
            )
        return "\n".join(lines)


def describe(source: FrequencySource) -> DatabaseStatistics:
    """Compute :class:`DatabaseStatistics` for a database or profile."""
    frequencies = source.frequencies()
    groups = FrequencyGroups(frequencies)
    gap_statistics = groups.gap_statistics() if len(groups) >= 2 else None
    n = len(frequencies)
    total_occurrences = sum(
        source.item_count(item) for item in source.domain
    )
    density = total_occurrences / (n * source.n_transactions)

    min_length = mean_length = max_length = None
    if isinstance(source, TransactionDatabase):
        lengths = [len(transaction) for transaction in source]
        min_length = min(lengths)
        max_length = max(lengths)
        mean_length = sum(lengths) / len(lengths)

    return DatabaseStatistics(
        n_items=n,
        n_transactions=source.n_transactions,
        n_groups=len(groups),
        n_singleton_groups=groups.n_singletons,
        density=density,
        min_frequency=min(frequencies.values()),
        max_frequency=max(frequencies.values()),
        gap_statistics=gap_statistics,
        min_transaction_length=min_length,
        mean_transaction_length=mean_length,
        max_transaction_length=max_length,
    )

"""Per-item risk profiles.

The O-estimate decomposes over items (``OE = sum 1/O_x``), so the risk
has an exact per-item attribution: an item's crack probability under the
estimate is ``1/O_x`` when the belief is compliant on it and 0
otherwise.  :class:`RiskProfile` materializes that attribution, ranks
the exposed items, and renders owner-readable reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace

__all__ = ["ItemRisk", "RiskProfile"]


@dataclass(frozen=True)
class ItemRisk:
    """Risk attribution for one item.

    Attributes
    ----------
    item:
        The original item.
    outdegree:
        ``O_x`` — anonymized items that may map to it.
    compliant:
        Whether the hacker's interval contains the true frequency.
    crack_probability:
        ``1/O_x`` if compliant else 0 — the O-estimate's attribution.
    frequency:
        The item's true frequency when known (frequency spaces), else
        ``None``.
    """

    item: object
    outdegree: int
    compliant: bool
    crack_probability: float
    frequency: float | None = None

    @property
    def surely_cracked(self) -> bool:
        """Certain identification under the estimate (``O_x = 1``, compliant)."""
        return self.compliant and self.outdegree == 1


class RiskProfile:
    """The full per-item risk attribution of a mapping space."""

    def __init__(self, items: list[ItemRisk], n: int):
        self._items = sorted(
            items, key=lambda r: (-r.crack_probability, repr(r.item))
        )
        self._n = n

    @classmethod
    def from_space(cls, space: MappingSpace) -> "RiskProfile":
        """Attribute the O-estimate of *space* to its items."""
        outdegrees = space.outdegrees()
        compliant = set(int(i) for i in space.compliant_indices())
        risks = []
        for i in range(space.n):
            degree = int(outdegrees[i])
            is_compliant = i in compliant
            frequency = None
            if isinstance(space, FrequencyMappingSpace):
                frequency = float(space.observed[space.true_partner(i)])
            risks.append(
                ItemRisk(
                    item=space.items[i],
                    outdegree=degree,
                    compliant=is_compliant,
                    crack_probability=1.0 / degree if is_compliant and degree else 0.0,
                    frequency=frequency,
                )
            )
        return cls(risks, space.n)

    # -- aggregates ---------------------------------------------------------

    @property
    def items(self) -> tuple[ItemRisk, ...]:
        """All items, most exposed first."""
        return tuple(self._items)

    @property
    def expected_cracks(self) -> float:
        """The O-estimate this profile decomposes."""
        return sum(risk.crack_probability for risk in self._items)

    @property
    def expected_fraction(self) -> float:
        """Expected cracks as a fraction of the domain."""
        return self.expected_cracks / self._n

    @property
    def n_surely_cracked(self) -> int:
        """Items identified with certainty under the estimate."""
        return sum(1 for risk in self._items if risk.surely_cracked)

    @property
    def n_noncompliant(self) -> int:
        """Items the hacker guessed wrong (never crackable consistently)."""
        return sum(1 for risk in self._items if not risk.compliant)

    def top_exposed(self, k: int = 10) -> tuple[ItemRisk, ...]:
        """The ``k`` items with the highest crack probability."""
        return tuple(self._items[:k])

    def probability_histogram(self, bin_edges: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.999, 1.0)) -> dict:
        """Counts of items per crack-probability band."""
        probabilities = np.array([risk.crack_probability for risk in self._items])
        histogram = {}
        for low, high in zip(bin_edges, bin_edges[1:]):
            label = f"({low:.2f}, {high:.2f}]"
            histogram[label] = int(((probabilities > low) & (probabilities <= high)).sum())
        histogram[f"== 0.00"] = int((probabilities == 0.0).sum())
        return histogram

    # -- rendering ------------------------------------------------------------

    def to_markdown(self, top_k: int = 10) -> str:
        """A markdown report for the data owner."""
        lines = [
            "# Disclosure risk profile",
            "",
            f"* domain size: **{self._n}** items",
            f"* expected cracks (O-estimate): **{self.expected_cracks:.2f}** "
            f"({self.expected_fraction:.1%} of the domain)",
            f"* identified with certainty: **{self.n_surely_cracked}**",
            f"* protected by wrong guesses (non-compliant): **{self.n_noncompliant}**",
            "",
            f"## Top {top_k} exposed items",
            "",
            "| item | frequency | outdegree | crack probability |",
            "|---|---|---|---|",
        ]
        for risk in self.top_exposed(top_k):
            frequency = "-" if risk.frequency is None else f"{risk.frequency:.4f}"
            lines.append(
                f"| {risk.item!r} | {frequency} | {risk.outdegree} "
                f"| {risk.crack_probability:.0%} |"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return (
            f"RiskProfile(n={self._n}, expected_cracks={self.expected_cracks:.2f}, "
            f"sure={self.n_surely_cracked})"
        )

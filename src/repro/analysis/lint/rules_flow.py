"""Whole-program rule families: CC (races), FS005 (budgets), DT004 (taint).

These rules consume one shared :class:`~repro.analysis.flow.FlowProgram`
per run (see :class:`~repro.analysis.lint.engine.FlowRule`) and so only
fire on whole-tree runs — ``repro-lint`` in CI, ``lint_paths`` in the
test suite — never on single-file or ``--changed-only`` runs, where the
call graph would be a fragment and every "unreachable"/"unlocked"
conclusion a lie.

Each CC/DT004 violation carries a structured ``witness`` in the JSON
report: the shared field plus the two conflicting call chains (CC), or
the source-to-sink path (DT004), so a finding can be replayed by hand
instead of taken on faith.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.lint.engine import (
    FileContext,
    FlowRule,
    Violation,
    register,
)

__all__ = ["SharedFieldRaceRule", "GlobalRaceRule", "BudgetCoverageRule", "TaintFlowRule"]


def _context_for(program, path: str) -> FileContext | None:
    for ctx in program.contexts:
        if ctx.path == path:
            return ctx
    return None


@register
class SharedFieldRaceRule(FlowRule):
    id = "CC001"
    family = "concurrency"
    summary = "shared instance field reachable outside its guarding lock"

    def check_flow(self, program) -> Iterator[tuple[FileContext, Violation]]:
        for report in program.locks.races():
            chain = " -> ".join(report.witness()["accesses"][1]["call_chain"])
            yield report.ctx, Violation(
                path=report.ctx.path,
                line=report.node_line,
                col=report.node_col,
                rule=self.id,
                message=(
                    f"field {report.field_name} is written holding "
                    f"{sorted(report.first_locks) or 'no locks'} but also "
                    f"accessed at line {report.second.line} holding "
                    f"{sorted(report.second_locks) or 'no locks'} "
                    f"(disjoint locksets; second chain: {chain}); guard both "
                    "with one lock or suppress with the happens-before "
                    "argument"
                ),
                witness=report.witness(),
            )


@register
class GlobalRaceRule(FlowRule):
    id = "CC002"
    family = "concurrency"
    summary = "module global mutated without a consistent guarding lock"

    def check_flow(self, program) -> Iterator[tuple[FileContext, Violation]]:
        for report in program.locks.global_races():
            yield report.ctx, Violation(
                path=report.ctx.path,
                line=report.node_line,
                col=report.node_col,
                rule=self.id,
                message=(
                    f"module global {report.field_name} is rebound at line "
                    f"{report.first.line} and accessed at line "
                    f"{report.second.line} with disjoint locksets; guard "
                    "both sides with one lock or suppress with the "
                    "happens-before argument"
                ),
                witness=report.witness(),
            )


@register
class BudgetCoverageRule(FlowRule):
    id = "FS005"
    family = "fault-safety"
    summary = "entry-reachable loop with no budget poll on any call path"

    def check_flow(self, program) -> Iterator[tuple[FileContext, Violation]]:
        coverage = program.budget
        for finding in coverage.findings():
            if finding.covered:
                continue
            info = program.graph.functions[finding.function]
            chain = " -> ".join(finding.entry_chain)
            yield info.ctx, Violation(
                path=info.ctx.path,
                line=finding.node.lineno,
                col=finding.node.col_offset,
                rule=self.id,
                message=(
                    f"loop in {finding.function} is reachable from a "
                    f"deadline-bearing entry point ({chain}) but no call "
                    "path to it polls a ComputeBudget; thread a budget "
                    "through the chain or poll in the loop"
                ),
                witness={
                    "function": finding.function,
                    "entry_chain": list(finding.entry_chain),
                },
            )


@register
class TaintFlowRule(FlowRule):
    id = "DT004"
    family = "determinism"
    summary = "nondeterminism source flows into a fingerprint/artifact sink"

    def check_flow(self, program) -> Iterator[tuple[FileContext, Violation]]:
        for finding in program.taint.findings:
            ctx = _context_for(program, finding.path)
            if ctx is None:
                continue
            yield ctx, Violation(
                path=finding.path,
                line=finding.line,
                col=0,
                rule=self.id,
                message=(
                    f"value derived from {finding.source.label} (line "
                    f"{finding.source.line}) reaches {finding.sink}; "
                    "fingerprints, cache keys and artifacts must be pure "
                    "functions of request content"
                ),
                witness=finding.witness(),
            )

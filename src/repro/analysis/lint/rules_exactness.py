"""Exactness rules: the exact-counting core computes in Python integers.

The paper's Section 4-5 guarantees (exact permanents, exact crack laws)
hold only while :data:`~repro.analysis.lint.engine.EXACT_MODULES` do
their counting in arbitrary-precision integers — a float Ryser sum at
``n = 22`` cancels catastrophically, and a float creeping into a DP
state silently turns "exact" into "approximately exact".  Floats are
legal only at documented boundaries (probability laws, cost heuristics,
the public ``float`` API edge), each marked with a justified
suppression comment that ``--format json`` reports as the audit trail.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import (
    EXACT_MODULES,
    FileContext,
    Rule,
    Violation,
    register,
)

__all__ = ["EXACT_MATH_ALLOWLIST", "NUMPY_FLOAT_ATTRS"]

#: ``math`` members that stay in exact integers.
EXACT_MATH_ALLOWLIST = frozenset(
    {"comb", "perm", "factorial", "gcd", "lcm", "isqrt", "prod"}
)

#: ``numpy`` members that produce (or are) floats.
NUMPY_FLOAT_ATTRS = frozenset(
    {
        "float16",
        "float32",
        "float64",
        "float128",
        "half",
        "single",
        "double",
        "longdouble",
        "divide",
        "true_divide",
        "mean",
        "average",
        "exp",
        "log",
        "log2",
        "log10",
        "sqrt",
        "inf",
        "nan",
    }
)

_NUMPY_NAMES = ("np", "numpy")


def _applies(ctx: FileContext) -> bool:
    return ctx.module in EXACT_MODULES


def _is_numpy_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in _NUMPY_NAMES
    )


@register
class FloatLiteralRule(Rule):
    id = "EX001"
    family = "exactness"
    summary = "float literal in an exact-integer module"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, (float, complex)
            ):
                yield ctx.violation(
                    self,
                    node,
                    f"float literal {node.value!r} in exact-integer module "
                    f"{ctx.module}; count in Python ints (suppress only at a "
                    "documented boundary)",
                )


@register
class TrueDivisionRule(Rule):
    id = "EX002"
    family = "exactness"
    summary = "true division in an exact-integer module"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield ctx.violation(
                    self,
                    node,
                    "true division '/' yields a float; use Fraction, '//', or "
                    "defer the ratio to a documented boundary",
                )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                yield ctx.violation(
                    self,
                    node,
                    "'/=' yields a float; use Fraction or an explicit boundary",
                )


@register
class InexactMathRule(Rule):
    id = "EX003"
    family = "exactness"
    summary = "non-integer math.* member in an exact-integer module"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "math"
                and node.attr not in EXACT_MATH_ALLOWLIST
            ):
                yield ctx.violation(
                    self,
                    node,
                    f"math.{node.attr} is not exact-integer arithmetic "
                    f"(allowed: {', '.join(sorted(EXACT_MATH_ALLOWLIST))})",
                )


@register
class NumpyFloatRule(Rule):
    id = "EX004"
    family = "exactness"
    summary = "float-producing numpy usage or float() cast"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if _is_numpy_attr(node) and node.attr in NUMPY_FLOAT_ATTRS:
                    prefix = node.value.id if isinstance(node.value, ast.Name) else "np"
                    yield ctx.violation(
                        self,
                        node,
                        f"{prefix}.{node.attr} is a float dtype/op in an "
                        "exact-integer module",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                yield ctx.violation(
                    self,
                    node,
                    "float(...) cast in an exact-integer module; mark the "
                    "documented boundary with a suppression",
                )
            elif (
                isinstance(node, ast.keyword)
                and node.arg == "dtype"
                and isinstance(node.value, ast.Name)
                and node.value.id == "float"
            ):
                yield ctx.violation(
                    self,
                    node.value,
                    "float dtype in an exact-integer module",
                )

"""Rule engine of ``repro-lint``: files, suppressions, and the run loop.

The linter enforces the code-level invariants the reproduction's
guarantees rest on (see ``docs/analysis.md``):

* **exactness** — the exact-counting modules compute in Python integers;
  every float is a documented boundary;
* **determinism** — fingerprints, cache artifacts and serialized JSON
  never depend on wall-clock time, process entropy or set iteration
  order;
* **fault-safety** — nothing swallows
  :class:`~repro.service.faults.InjectedCrash`, and service-layer
  persistence routes through ``save_json_atomic``;
* **layering** — packages import strictly downward along the
  ``data → mining/anonymize/beliefs → graph → … → service`` order.

Rules are :class:`Rule` subclasses registered in :data:`REGISTRY`
(populated by the ``rules_*`` modules).  Violations can be suppressed in
source with an audited comment::

    x = 1.0  # repro-lint: disable=EX001 -- documented float boundary

Directives (``IDS`` is a comma-separated rule list or ``all``):

``# repro-lint: disable=IDS``
    Suppress on the comment's own line.
``# repro-lint: disable-next-line=IDS``
    Suppress on the following line.
``# repro-lint: disable-file=IDS``
    Suppress everywhere in the file.
``# repro-lint: disable-function=IDS``
    On a ``def`` line: suppress throughout that function's body.

Everything after ``--`` in a directive is a free-form justification;
write one — suppressions are the audit trail of deliberate exceptions.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Union

__all__ = [
    "Violation",
    "Suppression",
    "FileContext",
    "Project",
    "Rule",
    "ProjectRule",
    "FlowRule",
    "REGISTRY",
    "register",
    "analyze_source",
    "lint_paths",
    "iter_python_files",
    "EXACT_MODULES",
    "DETERMINISM_MODULES",
    "LAYERS",
]

PathLike = Union[str, Path]

#: Modules whose counting core must stay in exact Python integers
#: (the paper's Section 4-5 guarantees: permanents and crack laws are
#: exact, not float approximations).
EXACT_MODULES = frozenset(
    {
        "repro.graph.permanent",
        "repro.graph.kernels",
        "repro.graph.intervaldp",
        "repro.graph.blocks",
        "repro.graph.exact",
        "repro.graph.refine",
    }
)

#: Modules feeding content-addressed fingerprints, cache artifacts or
#: serialized JSON — anything nondeterministic here silently poisons the
#: service cache and breaks byte-identical batch replay.
DETERMINISM_MODULES = frozenset(
    {
        "repro.service.fingerprint",
        "repro.service.cache",
        "repro.service.engine",
        "repro.service.pool",
        "repro.service.crack",
        "repro.io",
        "repro.attack.solver.events",
    }
)

#: Layer of each top-level package of ``repro`` (and of the root package
#: itself, keyed ``"repro"``).  Imports must point at a strictly lower
#: layer; same-layer packages are independent siblings.
LAYERS: dict[str, int] = {
    "errors": 0,
    "budget": 1,
    "data": 1,
    "mining": 2,
    "anonymize": 2,
    "beliefs": 2,
    "datasets": 2,
    "graph": 3,
    "core": 4,
    "simulation": 5,
    "analysis": 6,
    "protect": 6,
    "attack": 7,
    "recipe": 7,
    "repro": 8,  # the root package re-exports up through recipe/attack
    "io": 8,
    "service": 9,
    "cli": 10,
    "extensions": 10,
}


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit, pinned to a file position.

    ``witness`` carries the flow families' structured evidence (the two
    conflicting call chains of a CC race, a taint path) and is excluded
    from ordering/equality — it is a payload, not an identity.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    witness: dict | None = field(default=None, compare=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One suppressed hit, kept for the audit trail (``--format json``)."""

    violation: Violation
    justification: str | None


_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*"
    r"(?P<kind>disable(?:-next-line|-file|-function)?)\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
    r"(?:\s+--\s*(?P<why>.*\S))?\s*$"
)


class FileContext:
    """One parsed file plus its suppression tables and parent links."""

    def __init__(self, path: str, source: str, module: str | None = None):
        self.path = path
        self.source = source
        self.module = module
        #: Set by :class:`Project`: whether this run includes the
        #: whole-program flow pass (FS004 defers to FS005 when it does).
        self.flow_enabled = False
        self.tree = ast.parse(source, filename=path)
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self._line_rules: dict[int, set[str]] = {}
        self._file_rules: set[str] = set()
        self._function_rules: list[tuple[int, int, set[str]]] = []
        self._justifications: dict[tuple[int, str], str] = {}
        self._collect_directives()

    # -- suppression plumbing ---------------------------------------------

    def _collect_directives(self) -> None:
        function_lines: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            comments = []
        for line, text in comments:
            match = _DIRECTIVE.search(text)
            if match is None:
                continue
            ids = {part.strip() for part in match.group("ids").split(",")}
            ids = {"all" if part == "*" else part for part in ids if part}
            kind = match.group("kind")
            why = match.group("why")
            if kind == "disable":
                target_line = line
                self._line_rules.setdefault(target_line, set()).update(ids)
            elif kind == "disable-next-line":
                target_line = line + 1
                self._line_rules.setdefault(target_line, set()).update(ids)
            elif kind == "disable-file":
                target_line = 0
                self._file_rules.update(ids)
            else:  # disable-function
                target_line = line
                function_lines.setdefault(line, set()).update(ids)
            if why:
                for rule_id in ids:
                    self._justifications[(target_line, rule_id)] = why
        if function_lines:
            for node in ast.walk(self.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    ids = function_lines.get(node.lineno)
                    if ids:
                        self._function_rules.append(
                            (node.lineno, node.end_lineno or node.lineno, ids)
                        )

    def _matches(self, rules: set[str], rule_id: str) -> bool:
        return "all" in rules or rule_id in rules

    def suppression_for(self, rule_id: str, line: int) -> tuple[bool, str | None]:
        """Whether ``rule_id`` is suppressed at ``line`` (+ justification)."""
        if self._matches(self._file_rules, rule_id):
            return True, self._justifications.get((0, rule_id))
        on_line = self._line_rules.get(line)
        if on_line is not None and self._matches(on_line, rule_id):
            return True, self._justifications.get((line, rule_id))
        for start, end, rules in self._function_rules:
            if start <= line <= end and self._matches(rules, rule_id):
                return True, self._justifications.get((start, rule_id))
        return False, None

    # -- convenience for rules --------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def violation(self, rule: "Rule", node: ast.AST, message: str) -> Violation:
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.id,
            message=message,
        )


class Rule:
    """A per-file check.  Subclasses yield raw (unfiltered) violations."""

    id: str = ""
    family: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A whole-tree check run after every file has been parsed."""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[tuple[FileContext, Violation]]:
        raise NotImplementedError


class FlowRule(ProjectRule):
    """A rule over the whole-program dataflow pass (``repro.analysis.flow``).

    Flow rules share one :class:`~repro.analysis.flow.FlowProgram` —
    call graph, lockset, budget-coverage and taint results — built once
    per :meth:`Project.run` when flow is enabled (the default for
    ``repro-lint``; ``--changed-only``/``--no-flow`` runs skip it).
    """

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[tuple[FileContext, Violation]]:
        return iter(())

    def check_flow(
        self, program: "object"
    ) -> Iterator[tuple[FileContext, Violation]]:
        raise NotImplementedError


#: All registered rules, id -> instance.  The ``rules_*`` modules
#: populate this at import time via :func:`register`.
REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY`."""
    rule = rule_cls()
    if not rule.id or not rule.family:
        raise ValueError(f"rule {rule_cls.__name__} needs an id and a family")
    if rule.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    REGISTRY[rule.id] = rule
    return rule_cls


def _ensure_rules_loaded() -> None:
    # Deferred so engine <-> rules_* imports stay acyclic.
    from repro.analysis.lint import (  # noqa: F401
        rules_determinism,
        rules_exactness,
        rules_faults,
        rules_flow,
        rules_layering,
    )


@dataclass
class LintResult:
    """Everything one run produced."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Suppression] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[Violation] = field(default_factory=list)
    #: Call-graph / coverage / taint statistics of the flow pass (the
    #: ``flow`` block of ``BENCH_lint.json``); ``None`` on no-flow runs.
    flow_stats: dict | None = None

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors


class Project:
    """A set of files linted together (needed for layering rules).

    *flow* controls the whole-program pass: the flow rule families
    (CC/FS005/DT004) only make sense when the project holds the whole
    tree, so single-file helpers (:func:`analyze_source`) and
    ``--changed-only`` runs disable it — and FS004, the per-file
    fallback FS005 supersedes, runs exactly when flow does not.
    """

    def __init__(self, flow: bool = True) -> None:
        _ensure_rules_loaded()
        self.flow = flow
        self.contexts: list[FileContext] = []
        self.result = LintResult()

    def add_source(self, source: str, path: str, module: str | None = None) -> None:
        """Add an in-memory file (the test hook; also used by the CLI)."""
        try:
            ctx = FileContext(path, source, module)
            ctx.flow_enabled = self.flow
            self.contexts.append(ctx)
        except SyntaxError as exc:
            self.result.parse_errors.append(
                Violation(
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule="PARSE",
                    message=f"syntax error: {exc.msg}",
                )
            )
        self.result.files_scanned += 1

    def add_file(self, path: PathLike) -> None:
        file_path = Path(path)
        self.add_source(
            file_path.read_text(encoding="utf-8"),
            str(file_path),
            module_name_for(file_path),
        )

    def run(self) -> LintResult:
        """Run every registered rule; returns the accumulated result."""
        for ctx in self.contexts:
            for rule in REGISTRY.values():
                if isinstance(rule, ProjectRule):
                    continue
                for violation in rule.check(ctx):
                    self._record(ctx, violation)
        for rule in REGISTRY.values():
            if isinstance(rule, ProjectRule) and not isinstance(rule, FlowRule):
                for ctx, violation in rule.check_project(self.contexts):
                    self._record(ctx, violation)
        if self.flow and self.contexts:
            # Deferred import: the flow package sits on top of this one.
            from repro.analysis.flow import FlowProgram

            program = FlowProgram(self.contexts)
            for rule in REGISTRY.values():
                if isinstance(rule, FlowRule):
                    for ctx, violation in rule.check_flow(program):
                        self._record(ctx, violation)
            self.result.flow_stats = program.stats()
        self.result.violations.sort()
        self.result.suppressed.sort(key=lambda s: s.violation)
        return self.result

    def _record(self, ctx: FileContext, violation: Violation) -> None:
        suppressed, why = ctx.suppression_for(violation.rule, violation.line)
        if suppressed:
            self.result.suppressed.append(Suppression(violation, why))
        else:
            self.result.violations.append(violation)


def module_name_for(path: Path) -> str | None:
    """Dotted module name when *path* lies in a ``src/repro`` tree."""
    parts = path.resolve().parts
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "repro" and anchor > 0 and parts[anchor - 1] == "src":
            dotted = list(parts[anchor:-1]) + [path.stem]
            if dotted[-1] == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted)
    return None


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Yield every ``*.py`` file under *paths*, skipping caches."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for file_path in sorted(path.rglob("*.py")):
                if "__pycache__" in file_path.parts:
                    continue
                if any(part.startswith(".") for part in file_path.parts):
                    continue
                yield file_path


def lint_paths(paths: Iterable[PathLike], flow: bool = True) -> LintResult:
    """Lint every Python file under *paths* with all registered rules."""
    project = Project(flow=flow)
    for file_path in iter_python_files(paths):
        project.add_file(file_path)
    return project.run()


def analyze_source(
    source: str, module: str | None = None, path: str = "<memory>"
) -> LintResult:
    """Lint one in-memory file (per-file rules plus single-file layering).

    Single-file runs are per-file by construction, so the whole-program
    flow pass is off and FS004 (the per-file budget heuristic) is live.
    """
    project = Project(flow=False)
    project.add_source(source, path, module)
    return project.run()

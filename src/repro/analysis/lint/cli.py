"""``repro-lint``: run the invariant analyzer over source trees.

Exit status (stable, scripts may rely on it): **0** when clean, **1**
when violations or parse errors were found, **2** on usage errors (a
missing path, ``--changed-only`` outside a git checkout).  ``--format
json`` emits a machine-readable report (per-rule counts, the
suppression audit trail, flow statistics and per-violation witnesses) —
the schema ``BENCH_lint.json`` snapshots; ``--dot FILE`` writes the
measured package import graph in Graphviz syntax.

``--changed-only`` lints only the files ``git`` reports as modified or
untracked — the fast local loop.  Changed-only (and ``--no-flow``) runs
skip the whole-program families (CC/FS005/DT004 need the full call
graph) and run the per-file FS004 heuristic instead; CI always runs the
full tree.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.lint.engine import (
    REGISTRY,
    LintResult,
    Project,
    iter_python_files,
)
from repro.analysis.lint.rules_layering import layering_dot

__all__ = ["main", "build_parser", "result_to_json", "changed_files"]

DEFAULT_PATHS = ("src", "benchmarks", "tests")

#: Human summaries for report ids emitted outside the registry (the
#: layering project rule reports LY002-LY004 under its siblings' ids).
_EXTRA_SUMMARIES = {
    "LY002": "lazy import against the layer order",
    "LY003": "module-level import cycle",
    "LY004": "package with no layer assignment",
    "PARSE": "file failed to parse",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analyzer for the repro invariants "
        "(exactness, determinism, fault-safety, layering).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src benchmarks tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--dot",
        metavar="FILE",
        default=None,
        help="also write the package import graph as Graphviz DOT",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files git reports changed/untracked under the "
        "given paths (per-file rules only; implies --no-flow)",
    )
    parser.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the whole-program flow families (CC/FS005/DT004) and "
        "run the per-file FS004 heuristic instead",
    )
    return parser


def rule_summary(rule_id: str) -> str:
    rule = REGISTRY.get(rule_id)
    if rule is not None:
        return rule.summary
    return _EXTRA_SUMMARIES.get(rule_id, "")


def result_to_json(result: LintResult) -> dict:
    """The ``--format json`` payload (the BENCH_lint.json schema)."""
    counts: dict[str, int] = {}
    for violation in result.violations + result.parse_errors:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    suppressed_counts: dict[str, int] = {}
    for suppression in result.suppressed:
        rule = suppression.violation.rule
        suppressed_counts[rule] = suppressed_counts.get(rule, 0) + 1
    families: dict[str, int] = {}
    for rule in REGISTRY.values():
        families[rule.family] = families.get(rule.family, 0) + 1
    return {
        "schema_version": 2,
        "files_scanned": result.files_scanned,
        "clean": result.clean,
        "rules_registered": sorted(REGISTRY),
        "rule_families": dict(sorted(families.items())),
        "flow": result.flow_stats,
        "violation_counts": dict(sorted(counts.items())),
        "suppressed_counts": dict(sorted(suppressed_counts.items())),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "message": v.message,
                **({"witness": v.witness} if v.witness is not None else {}),
            }
            for v in result.violations + result.parse_errors
        ],
        "suppressed": [
            {
                "path": s.violation.path,
                "line": s.violation.line,
                "rule": s.violation.rule,
                "justification": s.justification,
            }
            for s in result.suppressed
        ],
    }


def changed_files(paths: Sequence[str]) -> list[Path] | None:
    """Python files git reports modified or untracked under *paths*.

    Returns ``None`` when git is unavailable (not a repository) — the
    caller maps that to exit code 2.
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD", "--"],
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    candidates = {
        line.strip()
        for out in (diff.stdout, untracked.stdout)
        for line in out.splitlines()
        if line.strip().endswith(".py")
    }
    scoped = {file.resolve() for file in iter_python_files(paths)}
    return sorted(
        path for raw in candidates if (path := Path(raw)).resolve() in scoped
    )


def _render_text(result: LintResult, stream) -> None:
    for violation in result.parse_errors + result.violations:
        print(violation.render(), file=stream)
    if result.clean:
        print(
            f"repro-lint: {result.files_scanned} files clean "
            f"({len(result.suppressed)} audited suppressions)",
            file=stream,
        )
    else:
        total = len(result.violations) + len(result.parse_errors)
        print(
            f"repro-lint: {total} violations in {result.files_scanned} files",
            file=stream,
        )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage error, 0 on --help; keep callable.
        return 0 if not exc.code else 2
    if options.list_rules:
        project = Project()  # forces rule registration
        del project
        for rule_id in sorted(REGISTRY):
            rule = REGISTRY[rule_id]
            print(f"{rule_id}  [{rule.family}]  {rule.summary}")
        return 0
    missing = [path for path in options.paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-lint: path does not exist: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    flow = not (options.no_flow or options.changed_only)
    project = Project(flow=flow)
    if options.changed_only:
        files = changed_files(options.paths)
        if files is None:
            print(
                "repro-lint: --changed-only requires a git checkout",
                file=sys.stderr,
            )
            return 2
        for file_path in files:
            project.add_file(file_path)
    else:
        for file_path in iter_python_files(options.paths):
            project.add_file(file_path)
    result = project.run()
    if options.dot is not None:
        Path(options.dot).write_text(
            layering_dot(project.contexts), encoding="utf-8"
        )
    if options.format == "json":
        json.dump(result_to_json(result), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        _render_text(result, sys.stdout)
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""``repro-lint``: run the invariant analyzer over source trees.

Exit status: 0 when clean, 1 when violations (or parse errors) were
found, 2 on usage errors.  ``--format json`` emits a machine-readable
report (per-rule counts plus the suppression audit trail) — the schema
``BENCH_lint.json`` snapshots; ``--dot FILE`` writes the measured
package import graph in Graphviz syntax.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.lint.engine import (
    REGISTRY,
    LintResult,
    Project,
    iter_python_files,
)
from repro.analysis.lint.rules_layering import layering_dot

__all__ = ["main", "build_parser", "result_to_json"]

DEFAULT_PATHS = ("src", "benchmarks", "tests")

#: Human summaries for report ids emitted outside the registry (the
#: layering project rule reports LY002-LY004 under its siblings' ids).
_EXTRA_SUMMARIES = {
    "LY002": "lazy import against the layer order",
    "LY003": "module-level import cycle",
    "LY004": "package with no layer assignment",
    "PARSE": "file failed to parse",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analyzer for the repro invariants "
        "(exactness, determinism, fault-safety, layering).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src benchmarks tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--dot",
        metavar="FILE",
        default=None,
        help="also write the package import graph as Graphviz DOT",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def rule_summary(rule_id: str) -> str:
    rule = REGISTRY.get(rule_id)
    if rule is not None:
        return rule.summary
    return _EXTRA_SUMMARIES.get(rule_id, "")


def result_to_json(result: LintResult) -> dict:
    """The ``--format json`` payload (the BENCH_lint.json schema)."""
    counts: dict[str, int] = {}
    for violation in result.violations + result.parse_errors:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    suppressed_counts: dict[str, int] = {}
    for suppression in result.suppressed:
        rule = suppression.violation.rule
        suppressed_counts[rule] = suppressed_counts.get(rule, 0) + 1
    return {
        "schema_version": 1,
        "files_scanned": result.files_scanned,
        "clean": result.clean,
        "rules_registered": sorted(REGISTRY),
        "violation_counts": dict(sorted(counts.items())),
        "suppressed_counts": dict(sorted(suppressed_counts.items())),
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule,
                "message": v.message,
            }
            for v in result.violations + result.parse_errors
        ],
        "suppressed": [
            {
                "path": s.violation.path,
                "line": s.violation.line,
                "rule": s.violation.rule,
                "justification": s.justification,
            }
            for s in result.suppressed
        ],
    }


def _render_text(result: LintResult, stream) -> None:
    for violation in result.parse_errors + result.violations:
        print(violation.render(), file=stream)
    if result.clean:
        print(
            f"repro-lint: {result.files_scanned} files clean "
            f"({len(result.suppressed)} audited suppressions)",
            file=stream,
        )
    else:
        total = len(result.violations) + len(result.parse_errors)
        print(
            f"repro-lint: {total} violations in {result.files_scanned} files",
            file=stream,
        )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage error, 0 on --help; keep callable.
        return 0 if not exc.code else 2
    if options.list_rules:
        project = Project()  # forces rule registration
        del project
        for rule_id in sorted(REGISTRY):
            rule = REGISTRY[rule_id]
            print(f"{rule_id}  [{rule.family}]  {rule.summary}")
        return 0
    missing = [path for path in options.paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-lint: path does not exist: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    project = Project()
    for file_path in iter_python_files(options.paths):
        project.add_file(file_path)
    result = project.run()
    if options.dot is not None:
        Path(options.dot).write_text(
            layering_dot(project.contexts), encoding="utf-8"
        )
    if options.format == "json":
        json.dump(result_to_json(result), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        _render_text(result, sys.stdout)
    return 0 if result.clean else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Determinism rules: fingerprints and cache artifacts must be replayable.

The service layer's contract (PRs 1-2) is that equal fingerprints mean
byte-identical results, whether a request runs inline, through one
worker or fanned out across four.  That breaks the moment the modules in
:data:`~repro.analysis.lint.engine.DETERMINISM_MODULES` read wall-clock
time, draw unseeded randomness, or let a ``set``'s iteration order reach
a serialized payload.  ``time.perf_counter``/``time.monotonic`` stay
legal — durations are metrics, not content.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import (
    DETERMINISM_MODULES,
    FileContext,
    Rule,
    Violation,
    register,
)

__all__ = ["UNSEEDED_RANDOM_FNS", "WALL_CLOCK_CALLS"]

#: ``random``-module functions driven by the hidden global RNG state.
UNSEEDED_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "gauss",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "getrandbits",
        "randbytes",
        "betavariate",
        "expovariate",
        "normalvariate",
    }
)

#: ``(module, attribute)`` calls that read wall clock or OS entropy.
WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
        ("os", "urandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
    }
)

_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "next"})
_ORDER_SAFE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset", "bool"}
)


def _applies(ctx: FileContext) -> bool:
    return ctx.module in DETERMINISM_MODULES


def _attr_chain_tail(node: ast.AST) -> tuple[str, str] | None:
    """``("module-ish", "attr")`` for ``a.b`` / ``a.b.c`` call targets."""
    if not isinstance(node, ast.Attribute):
        return None
    if isinstance(node.value, ast.Name):
        return node.value.id, node.attr
    if isinstance(node.value, ast.Attribute):
        return node.value.attr, node.attr
    return None


@register
class UnseededRandomRule(Rule):
    id = "DT001"
    family = "determinism"
    summary = "unseeded global RNG in a determinism-critical module"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = _attr_chain_tail(node.func)
            if tail is None:
                continue
            base, attr = tail
            if base == "random" and attr in UNSEEDED_RANDOM_FNS:
                yield ctx.violation(
                    self,
                    node,
                    f"random.{attr}() uses the hidden global RNG; thread an "
                    "explicit fingerprint-seeded generator instead",
                )
            elif base == "random" and attr == "Random" and not node.args:
                yield ctx.violation(
                    self,
                    node,
                    "random.Random() with no seed is entropy-seeded; derive "
                    "the seed from the request fingerprint",
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                yield ctx.violation(
                    self,
                    node,
                    "default_rng() with no seed is entropy-seeded; use "
                    "derived_seed(fingerprint)",
                )
            elif base == "random" and attr in {
                "rand",
                "randn",
                "random_sample",
            }:
                # np.random.<legacy global> — base is the middle attr.
                yield ctx.violation(
                    self,
                    node,
                    f"np.random.{attr}() uses the legacy global numpy RNG",
                )


@register
class WallClockRule(Rule):
    id = "DT002"
    family = "determinism"
    summary = "wall-clock or OS-entropy read in a determinism-critical module"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = _attr_chain_tail(node.func)
            if tail is None:
                continue
            if tail in WALL_CLOCK_CALLS:
                base, attr = tail
                yield ctx.violation(
                    self,
                    node,
                    f"{base}.{attr}() is nondeterministic input; fingerprints "
                    "and artifacts must derive from request content only "
                    "(perf_counter/monotonic are fine for durations)",
                )


@register
class SetIterationRule(Rule):
    id = "DT003"
    family = "determinism"
    summary = "iteration over a set in a determinism-critical module"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _applies(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not self._is_set_expr(node):
                continue
            consumer = self._ordered_consumer(ctx, node)
            if consumer is not None:
                yield ctx.violation(
                    self,
                    node,
                    f"set iteration order is arbitrary but feeds {consumer}; "
                    "wrap in sorted(...) before it can reach a fingerprint "
                    "or serialized payload",
                )

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _ordered_consumer(self, ctx: FileContext, node: ast.AST) -> str | None:
        parent = ctx.parent(node)
        if isinstance(parent, ast.For) and parent.iter is node:
            return "a for loop"
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            return "a comprehension"
        if isinstance(parent, ast.Call) and node in parent.args:
            func = parent.func
            if isinstance(func, ast.Name):
                if func.id in _ORDER_SENSITIVE_CALLS:
                    return f"{func.id}(...)"
                return None  # sorted()/len()/... are order-safe
            if isinstance(func, ast.Attribute) and func.attr in ("join", "extend"):
                return f".{func.attr}(...)"
        return None

"""Fault-safety rules: injected crashes must behave like real crashes.

The fault harness (:mod:`repro.service.faults`) derives
``InjectedCrash`` from :class:`BaseException` precisely so ordinary
``except Exception`` recovery code cannot absorb it — a simulated
``kill -9`` has to unwind, or the durability tests prove nothing.  These
rules keep that property: no bare ``except``, no ``except
BaseException`` that fails to re-raise, and no service-layer persistence
that bypasses ``save_json_atomic`` (a plain ``json.dump`` to an open
file is exactly the torn-write the atomic path exists to prevent).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.engine import FileContext, Rule, Violation, register

_BASE_EXC_NAMES = frozenset({"BaseException", "InjectedCrash"})
_WRITE_MODES = frozenset("wax")

#: Module prefixes whose loops are deadline-relevant hot paths: these are
#: the compute kernels a request :class:`~repro.budget.ComputeBudget`
#: must be able to interrupt (anytime assessment, ISSUE 5).
_BUDGET_MODULE_PREFIXES = ("repro.simulation", "repro.graph", "repro.attack")

#: Method names that count as budget polling inside a loop body.
_BUDGET_CALL_NAMES = frozenset({"checkpoint", "poll", "tick", "sweep_tick"})


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """Exception class names a handler catches (flattening tuples)."""
    node = handler.type
    if node is None:
        return set()
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    names = set()
    for element in elements:
        if isinstance(element, ast.Name):
            names.add(element.id)
        elif isinstance(element, ast.Attribute):
            names.add(element.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when every path that matters re-raises the caught exception.

    Approximated as: the handler body contains a ``raise`` statement that
    is either bare or raises the bound exception name.  A handler that
    raises a *different* exception still swallows the original type.
    """
    for node in ast.walk(handler):
        if not isinstance(node, ast.Raise):
            continue
        if node.exc is None:
            return True
        if (
            handler.name is not None
            and isinstance(node.exc, ast.Name)
            and node.exc.id == handler.name
        ):
            return True
    return False


@register
class BareExceptRule(Rule):
    id = "FS001"
    family = "fault-safety"
    summary = "bare except clause"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.violation(
                    self,
                    node,
                    "bare 'except:' catches BaseException and can swallow "
                    "InjectedCrash; catch Exception (or narrower) instead",
                )


@register
class SwallowedBaseExceptionRule(Rule):
    id = "FS002"
    family = "fault-safety"
    summary = "except BaseException without a re-raise"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _handler_names(node) & _BASE_EXC_NAMES
            if caught and not _reraises(node):
                name = sorted(caught)[0]
                yield ctx.violation(
                    self,
                    node,
                    f"'except {name}' without re-raise swallows injected "
                    "crashes; re-raise, or suppress with a justification if "
                    "the conversion to a value is the point",
                )


@register
class UnsafePersistenceRule(Rule):
    id = "FS003"
    family = "fault-safety"
    summary = "service-layer write that bypasses save_json_atomic"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.module is None or not ctx.module.startswith("repro.service."):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_json_dump(node):
                yield ctx.violation(
                    self,
                    node,
                    "json.dump to an open file can tear on crash; route "
                    "service persistence through save_json_atomic",
                )
            elif self._is_write_open(node):
                yield ctx.violation(
                    self,
                    node,
                    "open(..., 'w'/'a'/'x') in the service layer; route "
                    "artifact writes through save_json_atomic",
                )
            elif self._is_write_text(node):
                yield ctx.violation(
                    self,
                    node,
                    ".write_text() is not atomic; route service persistence "
                    "through save_json_atomic",
                )

    @staticmethod
    def _is_json_dump(node: ast.Call) -> bool:
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "dump"
            and isinstance(func.value, ast.Name)
            and func.value.id == "json"
        )

    @staticmethod
    def _is_write_open(node: ast.Call) -> bool:
        if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
            return False
        mode: ast.expr | None = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return False  # default mode is 'r'
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and bool(set(mode.value) & _WRITE_MODES)
        )

    @staticmethod
    def _is_write_text(node: ast.Call) -> bool:
        return isinstance(node.func, ast.Attribute) and node.func.attr in (
            "write_text",
            "write_bytes",
        )


@register
class UnbudgetedHotLoopRule(Rule):
    id = "FS004"
    family = "fault-safety"
    summary = "hot-path loop that never polls a compute budget"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.flow_enabled:
            # Whole-program runs prove budget coverage interprocedurally
            # (FS005); the per-file heuristic would re-flag every loop
            # whose budget discipline lives in its callers.
            return
        if ctx.module is None or not ctx.module.startswith(_BUDGET_MODULE_PREFIXES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.While):
                kind = "while loop"
            elif isinstance(node, ast.For) and self._is_shifted_range(node.iter):
                kind = "for loop over a shifted range"
            else:
                continue
            if not self._polls_budget(node):
                yield ctx.violation(
                    self,
                    node,
                    f"{kind} in a deadline-relevant hot path never polls a "
                    "compute budget; thread a ComputeBudget checkpoint into "
                    "the loop (or suppress with a justification when the "
                    "iteration count is provably small)",
                )

    @staticmethod
    def _is_shifted_range(iterator: ast.expr) -> bool:
        """``range(...)`` whose argument contains a ``<<`` (2**n trips)."""
        if not (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Name)
            and iterator.func.id == "range"
        ):
            return False
        return any(
            isinstance(inner, ast.BinOp) and isinstance(inner.op, ast.LShift)
            for argument in iterator.args
            for inner in ast.walk(argument)
        )

    @staticmethod
    def _polls_budget(loop: ast.AST) -> bool:
        """True when the loop's subtree touches a budget or polls one.

        Accepted evidence: any name (or attribute) containing "budget"
        — the conventional spelling for threaded ComputeBudget/DPBudget
        parameters — or a call to ``checkpoint`` / ``poll`` / ``tick`` /
        ``sweep_tick``.
        """
        for node in ast.walk(loop):
            if isinstance(node, ast.Name) and "budget" in node.id.lower():
                return True
            if isinstance(node, ast.Attribute) and "budget" in node.attr.lower():
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _BUDGET_CALL_NAMES
            ):
                return True
        return False

"""Layering rules: packages import strictly downward.

The intended architecture is a DAG of layers
(``data → mining/anonymize/beliefs → graph → simulation → recipe →
service``, full map in :data:`~repro.analysis.lint.engine.LAYERS`): an
import must point at a strictly lower layer.  Two known upcalls exist —
``graph.marginals`` reaches up to :mod:`repro.core` /
:mod:`repro.simulation` for the strategy ladder — and both are *lazy*
(function-level) imports carrying an audited LY002 suppression; a
module-level upward import (LY001) or a cycle in the module-level graph
(LY003) is always an error.  ``layering_dot`` renders the measured
package graph for ``repro-lint --dot``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.lint.engine import (
    LAYERS,
    FileContext,
    ProjectRule,
    Violation,
    register,
)

__all__ = ["ImportEdge", "collect_imports", "layering_dot"]


@dataclass(frozen=True)
class ImportEdge:
    """One ``repro.*`` import found in a source file."""

    source_module: str
    target_module: str
    line: int
    col: int
    lazy: bool  # inside a function body (deferred at import time)

    @property
    def source_package(self) -> str:
        return _package_of(self.source_module)

    @property
    def target_package(self) -> str:
        return _package_of(self.target_module)


def _package_of(module: str) -> str:
    """Top-level package key of a dotted ``repro`` module name."""
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) == 1:
        return parts[0]
    return parts[1]


def _is_lazy(ctx: FileContext, node: ast.AST) -> bool:
    parent = ctx.parent(node)
    while parent is not None:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return True
        parent = ctx.parent(parent)
    return False


def _resolve_relative(ctx_module: str, level: int, module: str | None) -> str | None:
    """Absolute target of a ``from . import x``-style import."""
    parts = ctx_module.split(".")
    if level > len(parts):
        return None
    base = parts[: len(parts) - level] if level else parts
    if module:
        base = base + module.split(".")
    return ".".join(base) if base else None


def collect_imports(ctx: FileContext) -> list[ImportEdge]:
    """Every ``repro.*`` import in *ctx*, with position and laziness."""
    if ctx.module is None:
        return []
    edges = []
    for node in ast.walk(ctx.tree):
        targets: list[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                resolved = _resolve_relative(ctx.module, node.level, node.module)
                if resolved is not None:
                    targets = [resolved]
            elif node.module is not None:
                targets = [node.module]
        else:
            continue
        lazy = _is_lazy(ctx, node)
        for target in targets:
            if target == "repro" or target.startswith("repro."):
                edges.append(
                    ImportEdge(
                        source_module=ctx.module,
                        target_module=target,
                        line=node.lineno,
                        col=node.col_offset,
                        lazy=lazy,
                    )
                )
    return edges


def _find_cycle(graph: dict[str, set[str]]) -> list[str] | None:
    """One cycle in *graph* as ``[a, b, ..., a]``, or ``None``."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack: list[str] = []

    def visit(node: str) -> list[str] | None:
        color[node] = GRAY
        stack.append(node)
        for neighbor in sorted(graph.get(node, ())):
            if color.get(neighbor, WHITE) == GRAY:
                return stack[stack.index(neighbor) :] + [neighbor]
            if color.get(neighbor, WHITE) == WHITE:
                found = visit(neighbor)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for start in sorted(graph):
        if color[start] == WHITE:
            found = visit(start)
            if found is not None:
                return found
    return None


@register
class LayeringRule(ProjectRule):
    id = "LY001"
    family = "layering"
    summary = "module-level import against the layer order"

    #: Sibling ids reported through this project rule.
    LAZY_ID = "LY002"
    CYCLE_ID = "LY003"
    UNKNOWN_ID = "LY004"

    def check_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[tuple[FileContext, Violation]]:
        module_graph: dict[str, set[str]] = {}
        for ctx in contexts:
            for edge in collect_imports(ctx):
                src_pkg, dst_pkg = edge.source_package, edge.target_package
                for package, position in ((src_pkg, "source"), (dst_pkg, "target")):
                    if package not in LAYERS:
                        yield ctx, Violation(
                            path=ctx.path,
                            line=edge.line,
                            col=edge.col,
                            rule=self.UNKNOWN_ID,
                            message=(
                                f"{position} package '{package}' has no layer "
                                "assignment; add it to LAYERS in "
                                "repro.analysis.lint.engine"
                            ),
                        )
                if src_pkg not in LAYERS or dst_pkg not in LAYERS:
                    continue
                if not edge.lazy:
                    module_graph.setdefault(edge.source_module, set()).add(
                        edge.target_module
                    )
                if src_pkg == dst_pkg:
                    continue
                if LAYERS[dst_pkg] >= LAYERS[src_pkg]:
                    direction = (
                        "same-layer" if LAYERS[dst_pkg] == LAYERS[src_pkg] else "upward"
                    )
                    rule_id = self.LAZY_ID if edge.lazy else self.id
                    hint = (
                        "lazy upcalls need an audited suppression"
                        if edge.lazy
                        else "invert the dependency or move the shared code down"
                    )
                    yield ctx, Violation(
                        path=ctx.path,
                        line=edge.line,
                        col=edge.col,
                        rule=rule_id,
                        message=(
                            f"{direction} import {src_pkg} (layer "
                            f"{LAYERS[src_pkg]}) -> {dst_pkg} (layer "
                            f"{LAYERS[dst_pkg]}); {hint}"
                        ),
                    )
        cycle = _find_cycle(module_graph)
        if cycle is not None:
            culprit = cycle[0]
            ctx = next((c for c in contexts if c.module == culprit), contexts[0])
            yield ctx, Violation(
                path=ctx.path,
                line=1,
                col=0,
                rule=self.CYCLE_ID,
                message=(
                    "module-level import cycle: " + " -> ".join(cycle)
                ),
            )


def layering_dot(contexts: Sequence[FileContext]) -> str:
    """The measured package import graph in Graphviz DOT syntax."""
    edges: set[tuple[str, str, bool]] = set()
    packages: set[str] = set()
    for ctx in contexts:
        for edge in collect_imports(ctx):
            src_pkg, dst_pkg = edge.source_package, edge.target_package
            packages.update((src_pkg, dst_pkg))
            if src_pkg != dst_pkg:
                edges.add((src_pkg, dst_pkg, edge.lazy))
    lines = ["digraph layering {", "  rankdir=BT;"]
    for package in sorted(packages):
        layer = LAYERS.get(package)
        label = package if layer is None else f"{package}\\nlayer {layer}"
        lines.append(f'  "{package}" [label="{label}"];')
    for src, dst, lazy in sorted(edges):
        style = ' [style=dashed, label="lazy"]' if lazy else ""
        lines.append(f'  "{src}" -> "{dst}"{style};')
    lines.append("}")
    return "\n".join(lines) + "\n"

"""``repro-lint``: static analysis of the reproduction's invariants.

Four rule families guard what the tests can only probe pointwise:
exactness (EX*), determinism (DT*), fault-safety (FS*) and layering
(LY*).  See ``docs/analysis.md`` for the rationale and the suppression
grammar, and :mod:`repro.analysis.lint.engine` for the machinery.
"""

from repro.analysis.lint.engine import (
    DETERMINISM_MODULES,
    EXACT_MODULES,
    LAYERS,
    REGISTRY,
    FileContext,
    LintResult,
    Project,
    ProjectRule,
    Rule,
    Suppression,
    Violation,
    analyze_source,
    lint_paths,
)

__all__ = [
    "DETERMINISM_MODULES",
    "EXACT_MODULES",
    "LAYERS",
    "REGISTRY",
    "FileContext",
    "LintResult",
    "Project",
    "ProjectRule",
    "Rule",
    "Suppression",
    "Violation",
    "analyze_source",
    "lint_paths",
]

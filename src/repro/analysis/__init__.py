"""Owner-facing risk reporting on top of the core estimators.

Turns a mapping space into per-item risk accounting
(:class:`~repro.analysis.profile.RiskProfile`) and decision-support
curves (:mod:`repro.analysis.curves`): which items drive the O-estimate,
how the risk responds to the interval width, and how ``alpha_max`` moves
with the owner's tolerance.
"""

from repro.analysis.curves import delta_sensitivity, tolerance_curve
from repro.analysis.profile import ItemRisk, RiskProfile

__all__ = ["ItemRisk", "RiskProfile", "tolerance_curve", "delta_sensitivity"]

"""Nondeterminism taint: wall-clock and entropy must never reach content.

The determinism contract (equal fingerprints ⇒ byte-identical
artifacts) dies the moment a value derived from ``time.time()``, an
unseeded RNG, ``os.urandom`` or a ``set``'s iteration order flows into
a fingerprint, a cache key, or a serialized artifact.  PR 4's DT001-003
flag the *reads* inside the determinism-critical modules; this analysis
follows the *values* anywhere in the program:

* **sources** — the DT002 wall-clock/entropy table, the DT001 unseeded
  RNG calls, and set iteration order (a ``for`` over a set, or
  ``list(set(...))``);
* **propagation** — a forward dataflow over each function's CFG (the
  :mod:`.dataflow` fixpoint), plus call summaries so taint crosses
  function boundaries: which parameters reach the return value, whether
  the return is tainted outright, and which parameters fall into a sink
  inside the callee;
* **sinks** — calls into fingerprint construction (any project function
  named ``*fingerprint*``), ``save_json_atomic`` payloads, and
  ``AssessmentCache.put``;
* **sanitizers** — ``sorted``/``len``/``sum``/``min``/``max`` and
  friends cut set-order taint (their result no longer depends on the
  order), and a handful of obviously order-free conversions.

``time.perf_counter``/``monotonic`` are not sources — durations are
metrics, not content — mirroring DT002's allowance.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from repro.analysis.flow.callgraph import CallGraph, CallSite, FunctionInfo
from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.dataflow import ForwardAnalysis, solve
from repro.analysis.lint.rules_determinism import (
    UNSEEDED_RANDOM_FNS,
    WALL_CLOCK_CALLS,
    _attr_chain_tail,
)

__all__ = ["TaintFinding", "TaintAnalysis"]

_SANITIZERS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "bool", "int", "abs", "round"}
)

_MAX_ROUNDS = 6


@dataclass(frozen=True)
class Taint:
    """Where a tainted value came from.

    ``kind`` is ``"source"`` for a concrete nondeterminism read and
    ``"param"`` for the symbolic taint used to build call summaries.
    """

    kind: str
    label: str
    path: str
    line: int
    param: int = -1
    chain: tuple[str, ...] = ()


@dataclass(frozen=True)
class TaintFinding:
    """A nondeterminism source that reaches a sink."""

    function: str
    path: str
    line: int
    source: Taint
    sink: str

    def witness(self) -> dict:
        return {
            "source": {
                "label": self.source.label,
                "path": self.source.path,
                "line": self.source.line,
            },
            "sink": self.sink,
            "call_chain": list(self.source.chain) + [self.function],
        }


@dataclass
class _Summary:
    returns_params: set[int] = field(default_factory=set)
    returns_source: Taint | None = None
    #: param index -> sink name the parameter falls into inside the callee.
    param_sinks: dict[int, str] = field(default_factory=dict)

    def key(self) -> tuple:
        return (
            frozenset(self.returns_params),
            self.returns_source,
            frozenset(self.param_sinks.items()),
        )


def _prefer(current: Taint | None, candidate: Taint | None) -> Taint | None:
    """Merge two taints: a concrete source beats a symbolic param.

    A value touched by both (``payload + str(stamp)``) must surface the
    nondeterminism *source* — that is what findings report; the param
    taint only feeds summaries.
    """
    if candidate is None:
        return current
    if current is None or (current.kind != "source" and candidate.kind == "source"):
        return candidate
    return current


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _source_of(node: ast.Call, path: str) -> Taint | None:
    tail = _attr_chain_tail(node.func)
    if tail is None:
        return None
    base, attr = tail
    if tail in WALL_CLOCK_CALLS:
        return Taint("source", f"{base}.{attr}()", path, node.lineno)
    if base == "random" and attr in UNSEEDED_RANDOM_FNS:
        return Taint("source", f"random.{attr}()", path, node.lineno)
    if base == "random" and attr == "Random" and not node.args:
        return Taint("source", "random.Random()", path, node.lineno)
    if attr == "default_rng" and not node.args and not node.keywords:
        return Taint("source", "default_rng()", path, node.lineno)
    return None


class _FunctionTaint(ForwardAnalysis[dict]):
    """Forward taint over one function; states map local name -> Taint."""

    def __init__(self, analysis: "TaintAnalysis", info: FunctionInfo):
        self.analysis = analysis
        self.info = info
        self.sites_by_node = {
            id(site.node): site
            for site in analysis.graph.call_sites.get(info.qualname, ())
        }
        self.findings: list[TaintFinding] = []
        self.summary = _Summary()
        args = info.node.args
        self.params = [
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]

    # -- lattice ----------------------------------------------------------

    def initial(self) -> dict:
        state = {}
        for index, name in enumerate(self.params):
            if name == "self":
                continue
            state[name] = Taint("param", name, self.info.ctx.path, 0, param=index)
        return state

    def join(self, left: dict, right: dict) -> dict:
        merged = dict(right)
        merged.update(left)
        return merged

    # -- expression taint -------------------------------------------------

    def expr_taint(self, node: ast.AST, state: dict) -> Taint | None:
        if isinstance(node, ast.Name):
            return state.get(node.id)
        if isinstance(node, ast.Call):
            return self._call_taint(node, state)
        if _is_set_expr(node):
            return None  # a set itself is fine; *ordering* it is the source
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expr(generator.iter):
                    return Taint(
                        "source",
                        "set iteration order",
                        self.info.ctx.path,
                        node.lineno,
                    )
        best: Taint | None = None
        for child in ast.iter_child_nodes(node):
            best = _prefer(best, self.expr_taint(child, state))
            if best is not None and best.kind == "source":
                return best
        return best

    def _call_taint(self, node: ast.Call, state: dict) -> Taint | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SANITIZERS:
            return None
        source = _source_of(node, self.info.ctx.path)
        if source is not None:
            return source
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and node.args
            and _is_set_expr(node.args[0])
        ):
            return Taint(
                "source", "set iteration order", self.info.ctx.path, node.lineno
            )
        arg_taints = [self.expr_taint(arg, state) for arg in node.args]
        site = self.sites_by_node.get(id(node))
        if site is not None:
            for callee in site.callees:
                summary = self.analysis.summaries.get(callee)
                if summary is None:
                    continue
                if summary.returns_source is not None:
                    returned = summary.returns_source
                    if self.info.qualname not in returned.chain:
                        returned = replace(
                            returned, chain=returned.chain + (callee,)
                        )
                    return returned
                for index in summary.returns_params:
                    taint = self._arg_taint(node, index, callee, arg_taints, state)
                    if taint is not None:
                        return taint
        # Fall back: a call on a tainted receiver/argument keeps taint
        # (str(t), t.isoformat(), "%s" % t ...).
        best: Taint | None = None
        for taint in arg_taints:
            best = _prefer(best, taint)
        if isinstance(func, ast.Attribute) and (
            best is None or best.kind != "source"
        ):
            best = _prefer(best, self.expr_taint(func.value, state))
        return best

    def _arg_taint(
        self,
        node: ast.Call,
        index: int,
        callee: str,
        arg_taints: list[Taint | None],
        state: dict,
    ) -> Taint | None:
        target = self.analysis.graph.functions.get(callee)
        # self occupies summary index 0 of a method but is not an
        # argument at the call site.
        skip_self = 1 if target is not None and _has_self(target) else 0
        position = index - skip_self
        if 0 <= position < len(arg_taints):
            return arg_taints[position]
        if target is not None:
            names = _param_names(target)
            for keyword in node.keywords:
                if index < len(names) and names[index] == keyword.arg:
                    return self.expr_taint(keyword.value, state)
        return None

    # -- transfer ---------------------------------------------------------

    def transfer(self, statement: ast.stmt, state: dict) -> dict:
        if isinstance(statement, ast.Assign):
            taint = self.expr_taint(statement.value, state)
            return self._store(statement.targets, taint, state)
        if isinstance(statement, ast.AugAssign):
            taint = self.expr_taint(statement.value, state)
            if taint is None and isinstance(statement.target, ast.Name):
                taint = state.get(statement.target.id)
            return self._store([statement.target], taint, state)
        if isinstance(statement, ast.AnnAssign) and statement.value is not None:
            taint = self.expr_taint(statement.value, state)
            return self._store([statement.target], taint, state)
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            taint = self.expr_taint(statement.iter, state)
            if taint is None and _is_set_expr(statement.iter):
                taint = Taint(
                    "source",
                    "set iteration order",
                    self.info.ctx.path,
                    statement.lineno,
                )
            return self._store([statement.target], taint, state)
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            new_state = state
            for item in statement.items:
                if item.optional_vars is None:
                    continue
                taint = self.expr_taint(item.context_expr, state)
                new_state = self._store([item.optional_vars], taint, new_state)
            return new_state
        return state

    def _store(
        self, targets: Sequence[ast.expr], taint: Taint | None, state: dict
    ) -> dict:
        new_state = dict(state)
        for target in targets:
            for name_node in self._target_names(target):
                if taint is None:
                    new_state.pop(name_node, None)
                else:
                    new_state[name_node] = taint
        return new_state

    @staticmethod
    def _target_names(target: ast.expr) -> Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from _FunctionTaint._target_names(element)

    # -- observation: sinks and returns -----------------------------------

    def observe(self, statement: ast.stmt, state: dict) -> None:
        if isinstance(statement, ast.Return) and statement.value is not None:
            taint = self.expr_taint(statement.value, state)
            if taint is not None:
                if taint.kind == "param":
                    self.summary.returns_params.add(taint.param)
                elif self.summary.returns_source is None:
                    self.summary.returns_source = taint
            # No early return: ``return fingerprint(x)`` is a sink call.
        for node in ast.walk(statement):
            if isinstance(node, ast.Call):
                self._check_sink(node, state)

    def _check_sink(self, node: ast.Call, state: dict) -> None:
        sink = self.analysis.sink_name(node, self.sites_by_node.get(id(node)))
        if sink is not None:
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            best: Taint | None = None
            for expr in arguments:
                best = _prefer(best, self.expr_taint(expr, state))
            if best is not None:
                self._record(node, best, sink)
                return
        # Summary-carried sinks: an argument that the callee forwards
        # into a sink of its own.
        site = self.sites_by_node.get(id(node))
        if site is None:
            return
        for callee in site.callees:
            summary = self.analysis.summaries.get(callee)
            if summary is None or not summary.param_sinks:
                continue
            target = self.analysis.graph.functions.get(callee)
            names = _param_names(target) if target is not None else []
            skip_self = 1 if target is not None and _has_self(target) else 0
            for index, inner_sink in summary.param_sinks.items():
                expr: ast.expr | None = None
                position = index - skip_self
                if 0 <= position < len(node.args):
                    expr = node.args[position]
                else:
                    for keyword in node.keywords:
                        if index < len(names) and names[index] == keyword.arg:
                            expr = keyword.value
                if expr is None:
                    continue
                taint = self.expr_taint(expr, state)
                if taint is not None:
                    self._record(node, taint, inner_sink, via=callee)
                    return

    def _record(
        self, node: ast.Call, taint: Taint, sink: str, via: str | None = None
    ) -> None:
        if taint.kind == "param":
            # Not a finding here — record it so callers inherit the sink.
            self.summary.param_sinks.setdefault(taint.param, sink)
            return
        self.findings.append(
            TaintFinding(
                function=self.info.qualname,
                path=self.info.ctx.path,
                line=node.lineno,
                source=taint,
                sink=sink if via is None else f"{sink} (via {via})",
            )
        )


def _has_self(info: FunctionInfo) -> bool:
    names = _param_names(info)
    return bool(names) and names[0] == "self"


def _param_names(info: FunctionInfo) -> list[str]:
    args = info.node.args
    return [arg.arg for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


class TaintAnalysis:
    """Whole-program taint run: summaries to fixpoint, then findings."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, _Summary] = {}
        self.sinks = self._discover_sinks()
        self.findings: list[TaintFinding] = []
        self._run()

    def _discover_sinks(self) -> dict[str, str]:
        sinks: dict[str, str] = {}
        for qualname, info in self.graph.functions.items():
            if info.name == "save_json_atomic" or "fingerprint" in info.name.lower():
                sinks[qualname] = info.name
            elif qualname.endswith("AssessmentCache.put"):
                sinks[qualname] = "AssessmentCache.put"
        return sinks

    def sink_name(self, node: ast.Call, site: CallSite | None) -> str | None:
        if site is not None:
            for callee in site.callees:
                if callee in self.sinks:
                    return self.sinks[callee]
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is not None and (
            name == "save_json_atomic" or "fingerprint" in name.lower()
        ):
            return name
        return None

    def _run(self) -> None:
        ordered = sorted(self.graph.functions)
        for _ in range(_MAX_ROUNDS):
            changed = False
            findings: list[TaintFinding] = []
            for qualname in ordered:
                info = self.graph.functions[qualname]
                runner = _FunctionTaint(self, info)
                cfg = build_cfg(info.node)
                solve(cfg, runner, observe=runner.observe)
                findings.extend(runner.findings)
                previous = self.summaries.get(qualname)
                if previous is None or previous.key() != runner.summary.key():
                    self.summaries[qualname] = runner.summary
                    changed = True
            self.findings = findings
            if not changed:
                break
        # Deduplicate by (site, sink): the fixpoint may rediscover the
        # same flow in every round.
        unique: dict[tuple, TaintFinding] = {}
        for finding in self.findings:
            unique.setdefault((finding.path, finding.line, finding.sink), finding)
        self.findings = sorted(
            unique.values(), key=lambda f: (f.path, f.line, f.sink)
        )

    def stats(self) -> dict[str, int]:
        return {
            "sinks": len(self.sinks),
            "tainted_returns": sum(
                1 for s in self.summaries.values() if s.returns_source is not None
            ),
            "findings": len(self.findings),
        }

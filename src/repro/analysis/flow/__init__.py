"""Whole-program dataflow layer under ``repro-lint`` (stdlib ``ast`` only).

Where :mod:`repro.analysis.lint` checks one file at a time, this package
sees the project: a call graph (:mod:`.callgraph`), per-function CFGs
(:mod:`.cfg`), a fixpoint framework (:mod:`.dataflow`), and on top of
them the three whole-program analyses the CC/FS005/DT004 lint families
report from — lockset race detection (:mod:`.locks`), interprocedural
budget coverage (:mod:`.budgetcov`) and nondeterminism taint
(:mod:`.taint`).  See ``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.flow.budgetcov import DEFAULT_ENTRY_POINTS, BudgetCoverage
from repro.analysis.flow.callgraph import CallGraph, build_call_graph
from repro.analysis.flow.locks import LockAnalysis
from repro.analysis.flow.taint import TaintAnalysis
from repro.analysis.lint.engine import FileContext

__all__ = [
    "FlowProgram",
    "CONCURRENCY_SCOPE",
    "THREAD_ROOT_SUFFIXES",
    "build_call_graph",
    "BudgetCoverage",
    "LockAnalysis",
    "TaintAnalysis",
    "DEFAULT_ENTRY_POINTS",
]

#: Modules whose classes the lockset analysis models: the service tier,
#: plus the solver that crack sessions share across request threads.
CONCURRENCY_SCOPE = ("repro.service", "repro.attack.solver")

#: Functions that run concurrently even without an explicit
#: ``threading.Thread(target=...)`` spawn: both HTTP front ends call
#: ``ServiceCore.dispatch`` from many handler threads at once.
THREAD_ROOT_SUFFIXES = (
    "ServiceCore.dispatch",
    "._AssessmentHandler.do_GET",
    "._AssessmentHandler.do_POST",
)


class FlowProgram:
    """One whole-program analysis pass shared by every flow rule."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts = contexts
        self.graph: CallGraph = build_call_graph(contexts)
        self._locks: LockAnalysis | None = None
        self._budget: BudgetCoverage | None = None
        self._taint: TaintAnalysis | None = None

    def thread_roots(self) -> list[str]:
        roots = set(self.graph.thread_targets)
        for qualname in self.graph.functions:
            if qualname.endswith(THREAD_ROOT_SUFFIXES):
                roots.add(qualname)
        return sorted(roots)

    @property
    def locks(self) -> LockAnalysis:
        if self._locks is None:
            self._locks = LockAnalysis(
                self.contexts,
                self.graph,
                roots=self.thread_roots(),
                scope_prefixes=CONCURRENCY_SCOPE,
            )
        return self._locks

    @property
    def budget(self) -> BudgetCoverage:
        if self._budget is None:
            self._budget = BudgetCoverage(self.graph)
        return self._budget

    @property
    def taint(self) -> TaintAnalysis:
        if self._taint is None:
            self._taint = TaintAnalysis(self.graph)
        return self._taint

    def stats(self) -> dict:
        """The ``BENCH_lint.json`` flow block."""
        return {
            "call_graph": self.graph.stats(),
            "thread_roots": len(self.thread_roots()),
            "budget_coverage": self.budget.stats(),
            "taint": self.taint.stats(),
        }

"""Project-wide call graph over the lint engine's parsed files.

The graph is *name-resolved where it can be, name-matched where it
cannot*: a bare ``f(...)`` resolves to the ``f`` defined or imported in
the calling module; ``self.m(...)`` resolves to method ``m`` of the
enclosing class; ``ClassName(...)`` resolves to ``ClassName.__init__``;
``self.attr.m(...)`` and ``local.m(...)`` resolve precisely when the
receiver's type is known from a ``= ClassName(...)`` assignment; and any
remaining ``obj.m(...)`` over-approximates to *every* project function
named ``m``.  Over-approximation is the right default for the analyses
built on top (reachability, lockset propagation, budget coverage): a
spurious edge can only make them more conservative, a missing edge
would make them wrong.  Two deliberate exceptions keep the fallback
from drowning the graph: dunder names never match by name (or every
``super().__init__()`` would edge to every constructor in the project),
and ubiquitous container/str/lock method names (``get``, ``append``,
``release``…) never match by name when the receiver's type is unknown —
real calls to project methods with those names go through a receiver
the type inference resolves.

Nodes are qualified names ``module.Class.method`` / ``module.func``
(nested functions get their lexical path).  Bodies of nested ``def``s
belong to the nested function, not to the one that defines it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.analysis.lint.engine import FileContext

__all__ = ["FunctionInfo", "CallSite", "CallGraph", "build_call_graph"]

#: Method names so common on builtin containers/strings/locks that an
#: untyped ``obj.m()`` matching them by name would wire, e.g., every
#: ``headers.get(...)`` to ``AssessmentCache.get``.  Calls to *project*
#: methods with these names resolve through the receiver-type inference
#: instead.
_UBIQUITOUS_METHODS = frozenset({
    "get", "put", "append", "extend", "add", "pop", "update", "items",
    "keys", "values", "setdefault", "popitem", "clear", "copy", "read",
    "write", "close", "join", "split", "strip", "encode", "decode",
    "format", "sort", "insert", "remove", "discard", "acquire",
    "release", "wait", "set", "is_set", "start", "cancel", "send",
})


@dataclass
class FunctionInfo:
    """One function or method known to the project."""

    qualname: str
    module: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class CallSite:
    """One call expression inside a function body."""

    caller: str
    node: ast.Call
    callees: tuple[str, ...]

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class CallGraph:
    """Functions, resolved call edges, and thread-spawn targets."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)
    call_sites: dict[str, list[CallSite]] = field(default_factory=dict)
    #: Qualnames passed as ``target=`` to ``threading.Thread`` (the
    #: statically known extra thread entry points).
    thread_targets: set[str] = field(default_factory=set)
    #: name -> every qualname with that final name (the by-name fallback).
    by_name: dict[str, set[str]] = field(default_factory=dict)
    #: ``module.Class.attr`` -> class qualname, inferred from
    #: ``self.attr = SomeClass(...)`` assignments anywhere in the class.
    attr_types: dict[str, str] = field(default_factory=dict)

    def callees(self, qualname: str) -> set[str]:
        return self.edges.get(qualname, set())

    def callers(self, qualname: str) -> set[str]:
        return {
            caller
            for caller, callees in self.edges.items()
            if qualname in callees
        }

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Every function reachable from *roots* along call edges."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def stats(self) -> dict[str, int]:
        return {
            "functions": len(self.functions),
            "edges": sum(len(callees) for callees in self.edges.values()),
            "thread_targets": len(self.thread_targets),
        }


def body_statements(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body, *excluding* nested function/class bodies."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _collect_functions(ctx: FileContext) -> Iterator[FunctionInfo]:
    module = ctx.module or ctx.path

    def visit(nodes: Sequence[ast.stmt], prefix: str, class_name: str | None):
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                yield FunctionInfo(
                    qualname=qualname,
                    module=module,
                    name=node.name,
                    class_name=class_name,
                    node=node,
                    ctx=ctx,
                )
                yield from visit(node.body, qualname, class_name)
            elif isinstance(node, ast.ClassDef):
                yield from visit(node.body, f"{prefix}.{node.name}", node.name)

    yield from visit(ctx.tree.body, module, None)


def _import_map(ctx: FileContext) -> dict[str, str]:
    """Local name -> dotted target for ``import``/``from ... import``."""
    mapping: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mapping[local] = alias.name
    return mapping


def _enclosing_class_prefix(info: FunctionInfo) -> str | None:
    """``module.Class`` for a method (or a function nested in one)."""
    if info.class_name is None:
        return None
    parts = info.qualname.split(".")
    # .../Class/method[/nested...] -> find the class segment.
    for index in range(len(parts) - 1, 0, -1):
        if parts[index] == info.class_name:
            return ".".join(parts[: index + 1])
    return None


class _Resolver:
    """Resolves one module's call expressions to project qualnames."""

    def __init__(self, graph: CallGraph, ctx: FileContext):
        self.graph = graph
        self.module = ctx.module or ctx.path
        self.imports = _import_map(ctx)
        self._local_types: dict[str, dict[str, str]] = {}

    def _by_name(self, name: str) -> tuple[str, ...]:
        if name.startswith("__") and name.endswith("__"):
            return ()  # super().__init__() must not fan out everywhere
        if name in _UBIQUITOUS_METHODS:
            return ()
        return tuple(sorted(self.graph.by_name.get(name, ())))

    def _as_function_or_init(self, qualname: str) -> str | None:
        if qualname in self.graph.functions:
            return qualname
        init = f"{qualname}.__init__"
        if init in self.graph.functions:
            return init
        return None

    def class_of(self, name: str, caller: FunctionInfo) -> str | None:
        """The class qualname ``name`` denotes in *caller*'s scope."""
        prefix = caller.qualname.rsplit(".", 1)[0]
        for scope in (prefix, self.module):
            if f"{scope}.{name}.__init__" in self.graph.functions:
                return f"{scope}.{name}"
        target = self.imports.get(name)
        if target is not None and f"{target}.__init__" in self.graph.functions:
            return target
        return None

    def _constructed_type(
        self, value: ast.expr, caller: FunctionInfo
    ) -> str | None:
        """Class qualname when *value* is ``SomeClass(...)``."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name):
            return self.class_of(func.id, caller)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            target = self.imports.get(func.value.id)
            if target is not None:
                qualname = f"{target}.{func.attr}"
                if f"{qualname}.__init__" in self.graph.functions:
                    return qualname
        return None

    def local_types(self, caller: FunctionInfo) -> dict[str, str]:
        """Local name -> class qualname from ``x = SomeClass(...)``."""
        cached = self._local_types.get(caller.qualname)
        if cached is not None:
            return cached
        types: dict[str, str] = {}
        for node in body_statements(caller.node):
            if isinstance(node, ast.Assign):
                inferred = self._constructed_type(node.value, caller)
                if inferred is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = inferred
            elif isinstance(node, ast.withitem):
                inferred = self._constructed_type(node.context_expr, caller)
                if inferred is not None and isinstance(
                    node.optional_vars, ast.Name
                ):
                    types[node.optional_vars.id] = inferred
        self._local_types[caller.qualname] = types
        return types

    def _typed_method(self, type_qualname: str, attr: str) -> tuple[str, ...]:
        candidate = f"{type_qualname}.{attr}"
        if candidate in self.graph.functions:
            return (candidate,)
        return ()  # known type, unknown method (inherited/stdlib): no edge

    def resolve(self, call: ast.Call, caller: FunctionInfo) -> tuple[str, ...]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, caller)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self":
                return self._resolve_self_method(func.attr, caller)
            if isinstance(value, ast.Name):
                # module-alias call (np.foo, threading.Thread), a typed
                # local, or an unknown object; precision in that order.
                target = self.imports.get(value.id)
                if target is not None:
                    resolved = self._as_function_or_init(f"{target}.{func.attr}")
                    if resolved is not None:
                        return (resolved,)
                    return ()
                local_type = self.local_types(caller).get(value.id)
                if local_type is not None:
                    return self._typed_method(local_type, func.attr)
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                class_prefix = _enclosing_class_prefix(caller)
                if class_prefix is not None:
                    attr_type = self.graph.attr_types.get(
                        f"{class_prefix}.{value.attr}"
                    )
                    if attr_type is not None:
                        return self._typed_method(attr_type, func.attr)
            return self._by_name(func.attr)
        return ()

    def _resolve_name(self, name: str, caller: FunctionInfo) -> tuple[str, ...]:
        # A sibling defined lexically above (nested scope first).
        prefix = caller.qualname.rsplit(".", 1)[0]
        for scope in (prefix, self.module):
            resolved = self._as_function_or_init(f"{scope}.{name}")
            if resolved is not None:
                return (resolved,)
        target = self.imports.get(name)
        if target is not None:
            resolved = self._as_function_or_init(target)
            if resolved is not None:
                return (resolved,)
            return ()
        return ()

    def _resolve_self_method(
        self, attr: str, caller: FunctionInfo
    ) -> tuple[str, ...]:
        class_prefix = _enclosing_class_prefix(caller)
        if class_prefix is not None:
            candidate = f"{class_prefix}.{attr}"
            if candidate in self.graph.functions:
                return (candidate,)
        return self._by_name(attr)

    def thread_target(self, call: ast.Call, caller: FunctionInfo) -> tuple[str, ...]:
        """Resolve ``threading.Thread(target=...)``-style spawn targets."""
        func = call.func
        is_thread = (
            isinstance(func, ast.Name) and func.id == "Thread"
        ) or (
            isinstance(func, ast.Attribute)
            and func.attr == "Thread"
        )
        # ``executor.submit`` is deliberately NOT a spawn site: the only
        # submit in the tree targets a ProcessPoolExecutor, and a worker
        # *process* shares no memory with the server threads.
        is_executor = isinstance(func, ast.Attribute) and func.attr == "run_in_executor"
        targets: list[ast.expr] = []
        if is_thread:
            targets = [kw.value for kw in call.keywords if kw.arg == "target"]
        elif is_executor and len(call.args) >= 2:
            # loop.run_in_executor(None, f, ...) runs f on a thread.
            targets = [call.args[1]]
        resolved: list[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                resolved.extend(self._resolve_name(target.id, caller))
            elif isinstance(target, ast.Attribute):
                value = target.value
                if isinstance(value, ast.Name) and value.id == "self":
                    resolved.extend(self._resolve_self_method(target.attr, caller))
                else:
                    resolved.extend(self._by_name(target.attr))
        return tuple(resolved)


def build_call_graph(contexts: Sequence[FileContext]) -> CallGraph:
    """Build the project call graph from every parsed file."""
    graph = CallGraph()
    for ctx in contexts:
        for info in _collect_functions(ctx):
            graph.functions[info.qualname] = info
            graph.by_name.setdefault(info.name, set()).add(info.qualname)
    resolvers: list[tuple[FileContext, _Resolver]] = [
        (ctx, _Resolver(graph, ctx)) for ctx in contexts
    ]
    # Receiver-type pass: record ``self.attr = SomeClass(...)`` before
    # resolving calls, so ``self.attr.m()`` edges precisely.
    for ctx, resolver in resolvers:
        for info in graph.functions.values():
            if info.ctx is not ctx:
                continue
            class_prefix = _enclosing_class_prefix(info)
            if class_prefix is None:
                continue
            for node in body_statements(info.node):
                if not isinstance(node, ast.Assign):
                    continue
                inferred = resolver._constructed_type(node.value, info)
                if inferred is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        graph.attr_types[f"{class_prefix}.{target.attr}"] = (
                            inferred
                        )
    for ctx, resolver in resolvers:
        module = ctx.module or ctx.path
        for info in graph.functions.values():
            if info.module != module or info.ctx is not ctx:
                continue
            sites: list[CallSite] = []
            callees: set[str] = set()
            for node in body_statements(info.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolver.resolve(node, info)
                sites.append(CallSite(info.qualname, node, resolved))
                callees.update(resolved)
                graph.thread_targets.update(resolver.thread_target(node, info))
            graph.edges[info.qualname] = callees
            graph.call_sites[info.qualname] = sites
    return graph

"""Per-function control-flow graphs over raw ``ast`` statements.

A :class:`ControlFlowGraph` is a list of basic blocks (each a run of
statements with no internal branching) plus successor edges.  The
translation handles the structured statements that matter for fixpoint
analyses over this codebase — ``if``/``while``/``for`` (with ``else``
and ``break``/``continue``), ``try``/``except``/``finally`` (edges from
the protected block to every handler), ``with`` (transparent), and
``return``/``raise`` (edges to the exit block).  Match statements and
the rest of the long tail fall back to "straight-line": conservative
for a may-analysis, which is the only kind built on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]


@dataclass
class BasicBlock:
    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)


class ControlFlowGraph:
    """Blocks + edges; block 0 is the entry, block 1 the (empty) exit."""

    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []
        self.entry = self._new_block()
        self.exit = self._new_block()

    def _new_block(self) -> int:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)

    def predecessors(self, index: int) -> list[int]:
        return [b.index for b in self.blocks if index in b.successors]


class _Builder:
    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        # (break_target, continue_target) stack for loops.
        self._loops: list[tuple[int, int]] = []

    def build(self, body: list[ast.stmt]) -> ControlFlowGraph:
        last = self._sequence(body, self.cfg.entry)
        self.cfg._edge(last, self.cfg.exit)
        return self.cfg

    # Returns the block where control continues after *body*.
    def _sequence(self, body: list[ast.stmt], current: int) -> int:
        for stmt in body:
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: int) -> int:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cfg.blocks[current].statements.append(stmt)
            after = cfg._new_block()
            then_block = cfg._new_block()
            cfg._edge(current, then_block)
            cfg._edge(self._sequence(stmt.body, then_block), after)
            if stmt.orelse:
                else_block = cfg._new_block()
                cfg._edge(current, else_block)
                cfg._edge(self._sequence(stmt.orelse, else_block), after)
            else:
                cfg._edge(current, after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = cfg._new_block()
            cfg.blocks[head].statements.append(stmt)
            cfg._edge(current, head)
            after = cfg._new_block()
            body_block = cfg._new_block()
            cfg._edge(head, body_block)
            cfg._edge(head, after)  # condition false / iterator exhausted
            self._loops.append((after, head))
            cfg._edge(self._sequence(stmt.body, body_block), head)
            self._loops.pop()
            if stmt.orelse:
                else_block = cfg._new_block()
                cfg._edge(head, else_block)
                cfg._edge(self._sequence(stmt.orelse, else_block), after)
            return after
        if isinstance(stmt, ast.Try):
            body_end = self._sequence(stmt.body, current)
            after = cfg._new_block()
            handler_entries: list[int] = []
            for handler in stmt.handlers:
                handler_block = cfg._new_block()
                handler_entries.append(handler_block)
                # Any statement of the protected block may raise into the
                # handler; one edge from the (single merged) body suffices
                # for a may-analysis, plus one from the entry of the try.
                cfg._edge(current, handler_block)
                cfg._edge(body_end, handler_block)
                cfg._edge(self._sequence(handler.body, handler_block), after)
            if stmt.orelse:
                else_block = cfg._new_block()
                cfg._edge(body_end, else_block)
                cfg._edge(self._sequence(stmt.orelse, else_block), after)
            else:
                cfg._edge(body_end, after)
            if stmt.finalbody:
                final_block = cfg._new_block()
                cfg._edge(after, final_block)
                after = cfg._new_block()
                cfg._edge(self._sequence(stmt.finalbody, final_block), after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.blocks[current].statements.append(stmt)
            inner = cfg._new_block()
            cfg._edge(current, inner)
            after = cfg._new_block()
            cfg._edge(self._sequence(stmt.body, inner), after)
            return after
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[current].statements.append(stmt)
            cfg._edge(current, cfg.exit)
            return cfg._new_block()  # unreachable continuation
        if isinstance(stmt, ast.Break) and self._loops:
            cfg._edge(current, self._loops[-1][0])
            return cfg._new_block()
        if isinstance(stmt, ast.Continue) and self._loops:
            cfg._edge(current, self._loops[-1][1])
            return cfg._new_block()
        cfg.blocks[current].statements.append(stmt)
        return current


def build_cfg(node: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """The control-flow graph of one function body."""
    return _Builder().build(node.body)

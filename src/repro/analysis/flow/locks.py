"""Eraser-style lockset analysis over the service tier.

For every class in the concurrency scope (``repro.service.*`` plus the
solver the crack sessions share across requests) the detector:

1. finds the *synchronization attributes* (``self._lock =
   threading.Lock()`` and friends in ``__init__``) and the *shared
   fields* — instance attributes written outside ``__init__``;
2. computes, for every field access, the set of locks held: the lexical
   ``with``-stack of the access, unioned with every lock the caller
   chain holds at the call site (propagated along the call graph from
   the thread roots);
3. reports a field when two accesses — at least one a write, from two
   root-reachable call chains — can hold *disjoint* locksets.  The
   classic lockset refinement: a consistent guarding lock makes every
   pairwise intersection non-empty, so an empty intersection is a
   schedule where both threads touch the field at once.

Locks are identified by *name*, not object (``self._lock`` of class C,
a module-level lock, or a local whose name ends in ``lock``/``cond``) —
the standard static approximation: name-equality of locks is assumed,
which under-reports only when two distinct lock objects share a
spelling on purpose (the per-session locks in ``crack.py``, where the
sharing is exactly the point: one session's accesses all go through
that session's lock).

Every finding carries a structured witness: the field, both accesses,
the locks each holds, and the two conflicting call chains from a thread
root — enough to replay the schedule by hand.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo, body_statements
from repro.analysis.lint.engine import FileContext

__all__ = ["FieldAccess", "RaceReport", "LockAnalysis"]

#: threading factory names whose product is a synchronization object
#: (not shared *data* — excluded from the shared-field universe).
_SYNC_FACTORIES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "local",
    }
)

#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "discard",
        "add",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "move_to_end",
    }
)

#: Cap on distinct incoming locksets tracked per function; beyond it the
#: contexts are collapsed to their intersection (sound: a smaller held
#: set can only create more reports, never hide one).
_MAX_CONTEXTS = 8


@dataclass(frozen=True)
class FieldAccess:
    """One read or write of a shared field inside a method body."""

    function: str
    path: str
    line: int
    kind: str  # "read" | "write"
    lexical_locks: frozenset[str]


@dataclass
class RaceReport:
    """A field with two conflicting, disjointly-locked accesses."""

    field_name: str  # "module.Class.attr"
    ctx: FileContext
    node_line: int
    node_col: int
    first: FieldAccess
    first_locks: frozenset[str]
    first_chain: tuple[str, ...]
    second: FieldAccess
    second_locks: frozenset[str]
    second_chain: tuple[str, ...]

    def witness(self) -> dict:
        def one(access: FieldAccess, locks: frozenset[str], chain: tuple[str, ...]):
            return {
                "function": access.function,
                "path": access.path,
                "line": access.line,
                "kind": access.kind,
                "locks_held": sorted(locks),
                "call_chain": list(chain) + [access.function],
            }

        return {
            "field": self.field_name,
            "accesses": [
                one(self.first, self.first_locks, self.first_chain),
                one(self.second, self.second_locks, self.second_chain),
            ],
        }


def _is_sync_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name in _SYNC_FACTORIES


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassModel:
    """Sync attributes and shared mutable fields of one class."""

    def __init__(self, qualname: str, ctx: FileContext, node: ast.ClassDef):
        self.qualname = qualname
        self.ctx = ctx
        self.node = node
        self.sync_attrs: set[str] = set()
        self.init_only: set[str] = set()
        #: field -> list of (method qualname, access node, kind)
        self.accesses: dict[str, list[tuple[str, ast.expr, str]]] = {}


class LockAnalysis:
    """Run the lockset analysis; iterate :meth:`races` for the reports."""

    def __init__(
        self,
        contexts: Sequence[FileContext],
        graph: CallGraph,
        roots: Sequence[str],
        scope_prefixes: tuple[str, ...],
    ) -> None:
        self.contexts = contexts
        self.graph = graph
        self.roots = list(roots)
        self.scope_prefixes = scope_prefixes
        self._classes: dict[str, _ClassModel] = {}
        self._module_locks: dict[str, set[str]] = {}
        #: function -> {held lockset -> one call chain that produced it}
        self._fn_contexts: dict[str, dict[frozenset[str], tuple[str, ...]]] = {}
        self._collect_classes()
        self._propagate_contexts()

    # -- scope ------------------------------------------------------------

    def _in_scope(self, module: str | None) -> bool:
        if module is None:
            return False
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope_prefixes
        )

    # -- class + field discovery ------------------------------------------

    def _collect_classes(self) -> None:
        for ctx in self.contexts:
            module = ctx.module or ctx.path
            if not self._in_scope(ctx.module):
                continue
            self._module_locks[module] = {
                target.id
                for stmt in ctx.tree.body
                if isinstance(stmt, ast.Assign) and _is_sync_call(stmt.value)
                for target in stmt.targets
                if isinstance(target, ast.Name)
            }
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    qualname = f"{module}.{stmt.name}"
                    self._classes[qualname] = self._model_class(qualname, ctx, stmt)

    def _model_class(
        self, qualname: str, ctx: FileContext, node: ast.ClassDef
    ) -> _ClassModel:
        model = _ClassModel(qualname, ctx, node)
        writes_outside_init: set[str] = set()
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            method_qual = f"{qualname}.{item.name}"
            in_init = item.name == "__init__"
            for stmt in body_statements(item):
                for attr, access_node, kind in self._field_events(stmt):
                    if in_init and kind == "write":
                        if _is_sync_call(getattr(stmt, "value", None)):
                            model.sync_attrs.add(attr)
                        model.init_only.add(attr)
                        continue
                    if kind == "write":
                        writes_outside_init.add(attr)
                    model.accesses.setdefault(attr, []).append(
                        (method_qual, access_node, kind)
                    )
        # Shared = written after construction and not a sync object.
        shared = writes_outside_init - model.sync_attrs
        model.accesses = {
            attr: events for attr, events in model.accesses.items() if attr in shared
        }
        return model

    @staticmethod
    def _field_events(stmt: ast.AST) -> Iterator[tuple[str, ast.expr, str]]:
        """(attr, node, kind) for every ``self.X`` touch in *stmt*."""
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                yield from LockAnalysis._store_events(target)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            yield from LockAnalysis._store_events(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                yield from LockAnalysis._store_events(target)
        elif isinstance(stmt, ast.Call):
            attr = None
            if isinstance(stmt.func, ast.Attribute):
                attr = _self_attr(stmt.func.value)
                if attr is not None and stmt.func.attr in _MUTATORS:
                    yield attr, stmt.func.value, "write"
        elif isinstance(stmt, ast.Attribute) and isinstance(stmt.ctx, ast.Load):
            attr = _self_attr(stmt)
            if attr is not None:
                yield attr, stmt, "read"

    @staticmethod
    def _store_events(target: ast.expr) -> Iterator[tuple[str, ast.expr, str]]:
        attr = _self_attr(target)
        if attr is not None:
            yield attr, target, "write"
        elif isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None:
                yield attr, target.value, "write"
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from LockAnalysis._store_events(element)

    # -- lock tokens ------------------------------------------------------

    def _lock_token(self, expr: ast.expr, info: FunctionInfo) -> str | None:
        """The lock name a ``with`` item holds, or ``None``."""
        attr = _self_attr(expr)
        if attr is not None:
            owner = self._owning_class(info)
            if owner is not None and attr in owner.sync_attrs:
                return f"{owner.qualname}.{attr}"
            if "lock" in attr.lower() or "cond" in attr.lower():
                return f"self.{attr}"
            return None
        if isinstance(expr, ast.Name):
            module_locks = self._module_locks.get(info.module, set())
            if expr.id in module_locks:
                return f"{info.module}.{expr.id}"
            if "lock" in expr.id.lower() or "cond" in expr.id.lower():
                return f"local:{expr.id}"
            return None
        if isinstance(expr, ast.Attribute):
            tail = expr.attr.lower()
            if "lock" in tail or "cond" in tail:
                return f"local:{ast.unparse(expr)}"
        return None

    def _owning_class(self, info: FunctionInfo) -> _ClassModel | None:
        if info.class_name is None:
            return None
        parts = info.qualname.split(".")
        for index in range(len(parts) - 1, 0, -1):
            if parts[index] == info.class_name:
                return self._classes.get(".".join(parts[: index + 1]))
        return None

    def _lexical_locks(self, node: ast.AST, info: FunctionInfo) -> frozenset[str]:
        """Locks held at *node* by enclosing ``with`` statements."""
        held: set[str] = set()
        ctx = info.ctx
        previous: ast.AST = node
        current = ctx.parent(node)
        while current is not None and current is not info.node:
            if isinstance(current, (ast.With, ast.AsyncWith)) and not isinstance(
                previous, ast.withitem
            ):
                for item in current.items:
                    token = self._lock_token(item.context_expr, info)
                    if token is not None:
                        held.add(token)
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break  # nested function boundary: locks do not transfer
            previous, current = current, ctx.parent(current)
        return frozenset(held)

    # -- interprocedural context propagation ------------------------------

    def _propagate_contexts(self) -> None:
        worklist: list[str] = []
        for root in self.roots:
            if root not in self.graph.functions:
                continue
            contexts = self._fn_contexts.setdefault(root, {})
            if frozenset() not in contexts:
                contexts[frozenset()] = ()
                worklist.append(root)
        while worklist:
            caller = worklist.pop()
            info = self.graph.functions[caller]
            incoming = dict(self._fn_contexts.get(caller, {}))
            for site in self.graph.call_sites.get(caller, ()):
                if not site.callees:
                    continue
                lexical = self._lexical_locks(site.node, info)
                for callee in site.callees:
                    if callee not in self.graph.functions:
                        continue
                    target = self._fn_contexts.setdefault(callee, {})
                    changed = False
                    for held, chain in incoming.items():
                        new_held = held | lexical
                        if new_held not in target:
                            if len(target) >= _MAX_CONTEXTS:
                                collapsed = frozenset.intersection(
                                    new_held, *target.keys()
                                )
                                if collapsed not in target:
                                    target[collapsed] = chain + (caller,)
                                    changed = True
                            else:
                                target[new_held] = chain + (caller,)
                                changed = True
                    if changed:
                        worklist.append(callee)

    # -- the race check ---------------------------------------------------

    def _instances(
        self, model: _ClassModel, events: list[tuple[str, ast.expr, str]]
    ) -> list[tuple[FieldAccess, frozenset[str], tuple[str, ...]]]:
        out = []
        for method_qual, node, kind in events:
            info = self.graph.functions.get(method_qual)
            if info is None:
                continue
            contexts = self._fn_contexts.get(method_qual)
            if not contexts:
                continue  # never reached from a thread root
            lexical = self._lexical_locks(node, info)
            access = FieldAccess(
                function=method_qual,
                path=model.ctx.path,
                line=getattr(node, "lineno", 0),
                kind=kind,
                lexical_locks=lexical,
            )
            for held, chain in contexts.items():
                out.append((access, held | lexical, chain))
        return out

    def races(self) -> Iterator[RaceReport]:
        """One report per shared field with a disjointly-locked pair."""
        for qualname in sorted(self._classes):
            model = self._classes[qualname]
            for attr in sorted(model.accesses):
                events = model.accesses[attr]
                instances = self._instances(model, events)
                report = self._find_race(model, attr, instances)
                if report is not None:
                    yield report

    def _find_race(
        self,
        model: _ClassModel,
        attr: str,
        instances: list[tuple[FieldAccess, frozenset[str], tuple[str, ...]]],
    ) -> RaceReport | None:
        for first, first_locks, first_chain in instances:
            if first.kind != "write":
                continue
            for second, second_locks, second_chain in instances:
                if (first.function, first.line) == (second.function, second.line):
                    continue
                if first_locks & second_locks:
                    continue
                return RaceReport(
                    field_name=f"{model.qualname}.{attr}",
                    ctx=model.ctx,
                    node_line=first.line,
                    node_col=0,
                    first=first,
                    first_locks=first_locks,
                    first_chain=first_chain,
                    second=second,
                    second_locks=second_locks,
                    second_chain=second_chain,
                )
        return None

    # -- module globals ---------------------------------------------------

    def global_races(self) -> Iterator[RaceReport]:
        """Races on module globals written under ``global`` declarations."""
        for ctx in self.contexts:
            module = ctx.module or ctx.path
            if not self._in_scope(ctx.module):
                continue
            written: set[str] = set()
            for info in self.graph.functions.values():
                if info.module != module or info.ctx is not ctx:
                    continue
                declared: set[str] = set()
                for stmt in body_statements(info.node):
                    if isinstance(stmt, ast.Global):
                        declared.update(stmt.names)
                written_here = {
                    target.id
                    for stmt in body_statements(info.node)
                    if isinstance(stmt, ast.Assign)
                    for target in stmt.targets
                    if isinstance(target, ast.Name) and target.id in declared
                }
                written.update(written_here)
            sync_globals = self._module_locks.get(module, set())
            for name in sorted(written - sync_globals):
                instances = self._global_instances(ctx, module, name)
                report = self._find_global_race(ctx, module, name, instances)
                if report is not None:
                    yield report

    def _global_instances(
        self, ctx: FileContext, module: str, name: str
    ) -> list[tuple[FieldAccess, frozenset[str], tuple[str, ...]]]:
        out = []
        for info in self.graph.functions.values():
            if info.module != module or info.ctx is not ctx:
                continue
            contexts = self._fn_contexts.get(info.qualname)
            if not contexts:
                continue
            declared = any(
                isinstance(stmt, ast.Global) and name in stmt.names
                for stmt in body_statements(info.node)
            )
            for stmt in body_statements(info.node):
                if not isinstance(stmt, ast.Name) or stmt.id != name:
                    continue
                kind = (
                    "write"
                    if isinstance(stmt.ctx, (ast.Store, ast.Del)) and declared
                    else "read"
                )
                if isinstance(stmt.ctx, (ast.Store, ast.Del)) and not declared:
                    continue  # a local shadowing the global
                lexical = self._lexical_locks(stmt, info)
                access = FieldAccess(
                    function=info.qualname,
                    path=ctx.path,
                    line=stmt.lineno,
                    kind=kind,
                    lexical_locks=lexical,
                )
                for held, chain in contexts.items():
                    out.append((access, held | lexical, chain))
        return out

    def _find_global_race(
        self,
        ctx: FileContext,
        module: str,
        name: str,
        instances: list[tuple[FieldAccess, frozenset[str], tuple[str, ...]]],
    ) -> RaceReport | None:
        for first, first_locks, first_chain in instances:
            if first.kind != "write":
                continue
            for second, second_locks, second_chain in instances:
                if (first.function, first.line) == (second.function, second.line):
                    continue
                if first_locks & second_locks:
                    continue
                return RaceReport(
                    field_name=f"{module}.{name}",
                    ctx=ctx,
                    node_line=first.line,
                    node_col=0,
                    first=first,
                    first_locks=first_locks,
                    first_chain=first_chain,
                    second=second,
                    second_locks=second_locks,
                    second_chain=second_chain,
                )
        return None

"""A small forward fixpoint framework over :mod:`.cfg` graphs.

An analysis provides an initial state, a join, and a per-statement
transfer function; :func:`solve` runs the classic worklist iteration to
the least fixpoint.  Compound statements appear *shallowly* in their
block (an ``if`` contributes only its test, a ``with`` only its context
expressions — their bodies are separate blocks), so a transfer function
must not recurse into ``stmt.body``.

States must be treated as immutable by ``transfer`` (return a new state
when anything changes); ``join`` likewise returns a fresh state.
Termination is the analysis author's contract: the state lattice must
have finite height (every analysis here uses finite sets/dicts over
program names, which do).
"""

from __future__ import annotations

import ast
from typing import Callable, Generic, TypeVar

from repro.analysis.flow.cfg import ControlFlowGraph

__all__ = ["ForwardAnalysis", "solve"]

State = TypeVar("State")


class ForwardAnalysis(Generic[State]):
    """Subclass hook points for one forward may/must analysis."""

    def initial(self) -> State:
        raise NotImplementedError

    def join(self, left: State, right: State) -> State:
        raise NotImplementedError

    def equal(self, left: State, right: State) -> bool:
        return bool(left == right)

    def transfer(self, statement: ast.stmt, state: State) -> State:
        raise NotImplementedError


def solve(
    cfg: ControlFlowGraph,
    analysis: ForwardAnalysis[State],
    observe: Callable[[ast.stmt, State], None] | None = None,
) -> dict[int, State]:
    """Iterate to fixpoint; returns the state *entering* each block.

    *observe*, when given, is called once per (statement, state-before)
    pair on the final stable pass — the hook sink checks use.
    """
    states: dict[int, State] = {cfg.entry: analysis.initial()}
    worklist = [cfg.entry]
    while worklist:
        index = worklist.pop()
        state = states[index]
        for stmt in cfg.blocks[index].statements:
            state = analysis.transfer(stmt, state)
        for succ in cfg.blocks[index].successors:
            if succ not in states:
                states[succ] = state
                worklist.append(succ)
            else:
                merged = analysis.join(states[succ], state)
                if not analysis.equal(merged, states[succ]):
                    states[succ] = merged
                    worklist.append(succ)
    if observe is not None:
        for block in cfg.blocks:
            if block.index not in states:
                continue
            state = states[block.index]
            for stmt in block.statements:
                observe(stmt, state)
                state = analysis.transfer(stmt, state)
    return states

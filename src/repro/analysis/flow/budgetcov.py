"""Interprocedural budget coverage: every hot loop answers to a deadline.

PR 5's per-file FS004 rule could only see one function at a time, so
every loop whose budget discipline lives in its *callers* needed an
audited suppression.  This analysis replaces the module allowlist with
a whole-program proof.  A loop reachable from the deadline-bearing
entry points (``assess_risk``, the ``ServiceCore`` routes, the solver)
is **covered** when any of three facts holds:

``direct``
    the loop body itself touches a budget (FS004's own criterion:
    a ``*budget*`` name or a ``checkpoint``/``poll``/``tick``/
    ``sweep_tick`` call);

``callee``
    the loop body calls a function that transitively polls a budget —
    each iteration crosses a poll point even though the loop cannot
    see it;

``amortized``
    every call path from an entry point to the loop's function passes
    through budget-aware code: each reachable caller either carries
    budget evidence in its own body or is itself amortized-covered.
    This is the greatest fixpoint of "all my reachable callers are
    budget-aware", seeded pessimistically at the entry points — so a
    call chain that never threads a budget at all (the bug this family
    exists to catch) breaks the proof for everything below it.

Uncovered loops are FS005 violations; the per-criterion counts land in
``BENCH_lint.json`` so the proof's shape is itself snapshotted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.flow.callgraph import CallGraph, body_statements

__all__ = ["LoopFinding", "BudgetCoverage", "DEFAULT_ENTRY_POINTS"]

#: Suffix-matched entry points: code whose loops must answer to a
#: request deadline.  Resolved against the call graph, so absent names
#: (a trimmed tree, a test project) simply contribute nothing.
DEFAULT_ENTRY_POINTS = (
    "repro.recipe.assess.assess_risk",
    "repro.service.routes.ServiceCore.dispatch",
    "repro.service.engine.AssessmentEngine.assess_many",
    "repro.service.pool.run_batch",
    "repro.attack.solver.core.ConsistencySolver.bootstrap",
    "repro.attack.solver.core.ConsistencySolver.ingest",
)

_BUDGET_CALL_NAMES = frozenset({"checkpoint", "poll", "tick", "sweep_tick"})


def _budget_evidence(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """FS004's criterion over a whole function body (sans nested defs)."""
    for child in body_statements(node):
        if _node_touches_budget(child):
            return True
    return False


def _node_touches_budget(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and "budget" in node.id.lower():
        return True
    if isinstance(node, ast.Attribute) and "budget" in node.attr.lower():
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _BUDGET_CALL_NAMES
    ):
        return True
    return False


def _loop_nodes(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.While | ast.For]:
    for child in body_statements(node):
        if isinstance(child, ast.While):
            yield child
        elif isinstance(child, ast.For) and _is_shifted_range(child.iter):
            yield child


def _is_shifted_range(iterator: ast.expr) -> bool:
    if not (
        isinstance(iterator, ast.Call)
        and isinstance(iterator.func, ast.Name)
        and iterator.func.id == "range"
    ):
        return False
    return any(
        isinstance(inner, ast.BinOp) and isinstance(inner.op, ast.LShift)
        for argument in iterator.args
        for inner in ast.walk(argument)
    )


@dataclass
class LoopFinding:
    """One reachable loop and how (or whether) it is covered."""

    function: str
    node: ast.While | ast.For
    coverage: str | None  # "direct" | "callee" | "amortized" | None
    entry_chain: tuple[str, ...]

    @property
    def covered(self) -> bool:
        return self.coverage is not None


class BudgetCoverage:
    """Classify every entry-reachable loop; uncovered ones are findings."""

    def __init__(
        self,
        graph: CallGraph,
        entry_points: Sequence[str] = DEFAULT_ENTRY_POINTS,
    ) -> None:
        self.graph = graph
        self.entries = [name for name in entry_points if name in graph.functions]
        self._evidence = {
            qualname: _budget_evidence(info.node)
            for qualname, info in graph.functions.items()
        }
        self._reachable, self._chains = self._reach()
        self._polling = self._transitive_polling()
        self._amortized = self._amortized_set()

    # -- reachability with witness chains ---------------------------------

    def _reach(self) -> tuple[set[str], dict[str, tuple[str, ...]]]:
        chains: dict[str, tuple[str, ...]] = {}
        queue = list(self.entries)
        for entry in self.entries:
            chains.setdefault(entry, (entry,))
        index = 0
        while index < len(queue):
            current = queue[index]
            index += 1
            for callee in sorted(self.graph.callees(current)):
                if callee in chains or callee not in self.graph.functions:
                    continue
                chains[callee] = chains[current] + (callee,)
                queue.append(callee)
        return set(chains), chains

    # -- transitively polling functions -----------------------------------

    def _transitive_polling(self) -> set[str]:
        polling = {name for name, flag in self._evidence.items() if flag}
        changed = True
        while changed:
            changed = False
            for caller, callees in self.graph.edges.items():
                if caller in polling:
                    continue
                if callees & polling:
                    polling.add(caller)
                    changed = True
        return polling

    # -- amortized coverage (greatest fixpoint) ---------------------------

    def _amortized_set(self) -> set[str]:
        # Optimistic start: every reachable non-entry function is
        # amortized; repeatedly evict f when some reachable caller is
        # neither budget-aware nor itself (still) amortized.
        candidates = {
            name
            for name in self._reachable
            if name not in self.entries
        }
        callers: dict[str, set[str]] = {name: set() for name in self._reachable}
        for caller in self._reachable:
            for callee in self.graph.callees(caller):
                if callee in callers:
                    callers[callee].add(caller)
        changed = True
        while changed:
            changed = False
            for name in list(candidates):
                for caller in callers.get(name, ()):
                    if self._evidence.get(caller) or caller in candidates:
                        continue
                    candidates.discard(name)
                    changed = True
                    break
        return candidates

    # -- classification ---------------------------------------------------

    def findings(self) -> list[LoopFinding]:
        out: list[LoopFinding] = []
        for qualname in sorted(self._reachable):
            info = self.graph.functions[qualname]
            sites = self.graph.call_sites.get(qualname, [])
            for loop in _loop_nodes(info.node):
                coverage: str | None = None
                if any(_node_touches_budget(n) for n in ast.walk(loop)):
                    coverage = "direct"
                elif self._loop_calls_polling(loop, sites):
                    coverage = "callee"
                elif qualname in self._amortized:
                    coverage = "amortized"
                out.append(
                    LoopFinding(
                        function=qualname,
                        node=loop,
                        coverage=coverage,
                        entry_chain=self._chains[qualname],
                    )
                )
        return out

    def _loop_calls_polling(self, loop: ast.AST, sites) -> bool:
        for site in sites:
            node = site.node
            if node.lineno < loop.lineno or node.lineno > (loop.end_lineno or loop.lineno):
                continue
            if any(callee in self._polling for callee in site.callees):
                return True
        return False

    def stats(self) -> dict[str, int]:
        counts = {"direct": 0, "callee": 0, "amortized": 0, "uncovered": 0}
        for finding in self.findings():
            counts[finding.coverage or "uncovered"] += 1
        counts["entry_points"] = len(self.entries)
        counts["reachable_functions"] = len(self._reachable)
        return counts

"""Decision-support curves for the data owner.

Two sensitivity analyses that the recipe's point decision hides:

* :func:`tolerance_curve` — how ``alpha_max`` moves as the owner's
  tolerance varies (the recipe fixes one ``tau``; the curve shows the
  whole trade-off);
* :func:`delta_sensitivity` — how the fully compliant O-estimate decays
  as the assumed interval width grows (Lemma 8 guarantees monotonicity;
  the curve shows how fast camouflage builds up, and hence how sensitive
  the decision is to the ``delta_med`` choice).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.beliefs.builders import uniform_width_belief
from repro.core.alpha import compliance_prefix_sums
from repro.core.oestimate import o_estimate
from repro.errors import RecipeError
from repro.graph.bipartite import MappingSpace, space_from_frequencies

__all__ = ["TolerancePoint", "tolerance_curve", "DeltaPoint", "delta_sensitivity"]

Item = Hashable


@dataclass(frozen=True)
class TolerancePoint:
    """One point of the tolerance -> alpha_max curve."""

    tolerance: float
    alpha_max: float


def tolerance_curve(
    space: MappingSpace,
    tolerances: Sequence[float],
    runs: int = 5,
    rng: np.random.Generator | None = None,
) -> list[TolerancePoint]:
    """``alpha_max`` as a function of the owner's tolerance.

    All tolerances are answered from one set of per-run prefix sums, so
    the whole curve costs the same as a single ``alpha_max`` query and
    is exactly monotone in the tolerance.
    """
    for tolerance in tolerances:
        if not 0.0 <= tolerance <= 1.0:
            raise RecipeError(f"tolerance must be in [0, 1], got {tolerance}")
    prefix = compliance_prefix_sums(space, runs=runs, rng=rng)
    mean_curve = prefix.mean(axis=0)
    n = space.n
    points = []
    for tolerance in tolerances:
        admissible = np.flatnonzero(mean_curve <= tolerance * n + 1e-12)
        best = int(admissible[-1]) if admissible.size else 0
        points.append(TolerancePoint(tolerance=float(tolerance), alpha_max=best / n))
    return points


@dataclass(frozen=True)
class DeltaPoint:
    """One point of the width -> O-estimate curve."""

    delta: float
    estimate: float
    fraction: float


def delta_sensitivity(
    true_frequencies: Mapping[Item, float],
    deltas: Sequence[float],
) -> list[DeltaPoint]:
    """Fully compliant O-estimate as the interval half-width grows.

    Non-increasing in ``delta`` by Lemma 8.  A steep initial drop means
    small uncertainty already provides camouflage (dense datasets); a
    flat curve means isolated frequencies keep items exposed no matter
    the assumed width (sparse singleton-heavy datasets).
    """
    points = []
    for delta in deltas:
        belief = uniform_width_belief(true_frequencies, float(delta))
        space = space_from_frequencies(belief, true_frequencies)
        result = o_estimate(space)
        points.append(
            DeltaPoint(delta=float(delta), estimate=result.value, fraction=result.fraction)
        )
    return points

"""JSON persistence for owner-workflow artifacts.

A disclosure decision is an auditable act: the owner wants to file what
was assumed (the belief model), what was measured (the assessment), and
what was released (the profile, possibly protected).  This module
round-trips those artifacts through plain JSON:

* :class:`~repro.beliefs.function.BeliefFunction`
* :class:`~repro.data.database.FrequencyProfile`
* :class:`~repro.recipe.assess.RiskAssessment`

Items are serialized with a small tagged encoding so integer and string
items survive the trip (JSON object keys are always strings).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Union

from repro.beliefs.function import BeliefFunction
from repro.beliefs.interval import Interval
from repro.budget import PartialEstimate
from repro.core.oestimate import OEstimateResult
from repro.data.database import FrequencyProfile
from repro.errors import FormatError
from repro.recipe.assess import AttackSummary, Decision, RiskAssessment

__all__ = [
    "SCHEMA_VERSION",
    "belief_to_json",
    "belief_from_json",
    "profile_to_json",
    "profile_from_json",
    "assessment_to_json",
    "assessment_from_json",
    "save_json",
    "save_json_atomic",
    "load_json",
]

PathLike = Union[str, Path]

#: Version of the JSON artifact format.  Bump whenever a serialized shape
#: changes incompatibly; readers reject payloads from a *newer* format so
#: that caches (see :mod:`repro.service.cache`) never deserialize fields
#: they do not understand.  Payloads with no version key are treated as
#: version 1 (the pre-versioning format) and still load.
#: Version 3 added the ``INCONCLUSIVE`` decision and the
#: ``partial_estimate`` block (deadline-aware anytime assessment).
#: Version 4 added the ``attack`` block — ``forced_pairs``,
#: ``certified_cracks`` and the ``solver_reduction`` sub-object from the
#: attacker workbench (:mod:`repro.attack.solver`).  Version-3 payloads
#: still load; the field simply reads back as ``None``.
SCHEMA_VERSION = 4


def _check_schema(payload: dict) -> None:
    version = payload.get("schema_version", 1)
    if not isinstance(version, int) or version < 1:
        raise FormatError(f"malformed schema_version: {version!r}")
    if version > SCHEMA_VERSION:
        raise FormatError(
            f"artifact uses schema version {version}, "
            f"but this library only understands <= {SCHEMA_VERSION}"
        )


def _encode_item(item: object) -> list:
    if isinstance(item, bool) or not isinstance(item, (int, str)):
        raise FormatError(
            f"only int and str items are JSON-serializable, got {type(item).__name__}"
        )
    kind = "int" if isinstance(item, int) else "str"
    return [kind, str(item)]


def _decode_item(encoded: object) -> object:
    if (
        not isinstance(encoded, list)
        or len(encoded) != 2
        or encoded[0] not in ("int", "str")
    ):
        raise FormatError(f"malformed item encoding: {encoded!r}")
    kind, value = encoded
    return int(value) if kind == "int" else value


def belief_to_json(belief: BeliefFunction) -> dict:
    """A JSON-ready representation of a belief function."""
    return {
        "type": "belief_function",
        "schema_version": SCHEMA_VERSION,
        "intervals": [
            [_encode_item(item), interval.low, interval.high]
            for item, interval in sorted(belief.items(), key=lambda kv: repr(kv[0]))
        ],
    }


def belief_from_json(payload: dict) -> BeliefFunction:
    """Rebuild a belief function written by :func:`belief_to_json`."""
    if payload.get("type") != "belief_function":
        raise FormatError("payload is not a serialized belief function")
    _check_schema(payload)
    intervals = {}
    for entry in payload["intervals"]:
        if not isinstance(entry, list) or len(entry) != 3:
            raise FormatError(f"malformed interval entry: {entry!r}")
        item_encoded, low, high = entry
        intervals[_decode_item(item_encoded)] = Interval(float(low), float(high))
    return BeliefFunction(intervals)


def profile_to_json(profile: FrequencyProfile) -> dict:
    """A JSON-ready representation of a frequency profile."""
    return {
        "type": "frequency_profile",
        "schema_version": SCHEMA_VERSION,
        "n_transactions": profile.n_transactions,
        "counts": [
            [_encode_item(item), int(count)]
            for item, count in sorted(profile.counts.items(), key=lambda kv: repr(kv[0]))
        ],
    }


def profile_from_json(payload: dict) -> FrequencyProfile:
    """Rebuild a frequency profile written by :func:`profile_to_json`."""
    if payload.get("type") != "frequency_profile":
        raise FormatError("payload is not a serialized frequency profile")
    _check_schema(payload)
    counts = {}
    for entry in payload["counts"]:
        if not isinstance(entry, list) or len(entry) != 2:
            raise FormatError(f"malformed count entry: {entry!r}")
        item_encoded, count = entry
        counts[_decode_item(item_encoded)] = int(count)
    return FrequencyProfile(counts, int(payload["n_transactions"]))


def assessment_to_json(assessment: RiskAssessment) -> dict:
    """A JSON-ready representation of an Assess-Risk outcome."""
    estimate = assessment.interval_estimate
    return {
        "type": "risk_assessment",
        "schema_version": SCHEMA_VERSION,
        "decision": assessment.decision.name,
        "tolerance": assessment.tolerance,
        "n_items": assessment.n_items,
        "g": assessment.g,
        "delta": assessment.delta,
        "alpha_max": assessment.alpha_max,
        "interest": None
        if assessment.interest is None
        else [
            _encode_item(item)
            for item in sorted(assessment.interest, key=repr)
        ],
        "runs": assessment.runs,
        "exact_cracks": assessment.exact_cracks,
        "exact_strategy": assessment.exact_strategy,
        "interval_estimate": None
        if estimate is None
        else {
            "value": estimate.value,
            "n": estimate.n,
            "n_compliant": estimate.n_compliant,
            "n_forced": estimate.n_forced,
            "propagated": estimate.propagated,
        },
        "partial_estimate": None
        if assessment.partial_estimate is None
        else assessment.partial_estimate.to_json(),
        "attack": None
        if assessment.attack is None
        else {
            "forced_pairs": assessment.attack.forced_pairs,
            "certified_cracks": assessment.attack.certified_cracks,
            "solver_reduction": {
                "forbidden_edges": assessment.attack.forbidden_edges,
                "largest_block_before": assessment.attack.largest_block_before,
                "largest_block_after": assessment.attack.largest_block_after,
            },
        },
    }


def _attack_from_json(raw: object) -> AttackSummary | None:
    if raw is None:
        return None
    if not isinstance(raw, dict):
        raise FormatError(f"malformed attack block: {raw!r}")
    reduction = raw.get("solver_reduction")
    if not isinstance(reduction, dict):
        raise FormatError(f"malformed solver_reduction block: {reduction!r}")
    return AttackSummary(
        forced_pairs=int(raw["forced_pairs"]),
        certified_cracks=int(raw["certified_cracks"]),
        forbidden_edges=int(reduction["forbidden_edges"]),
        largest_block_before=int(reduction["largest_block_before"]),
        largest_block_after=int(reduction["largest_block_after"]),
    )


def assessment_from_json(payload: dict) -> RiskAssessment:
    """Rebuild an assessment written by :func:`assessment_to_json`."""
    if payload.get("type") != "risk_assessment":
        raise FormatError("payload is not a serialized risk assessment")
    _check_schema(payload)
    try:
        decision = Decision[payload["decision"]]
    except KeyError as exc:
        raise FormatError(f"unknown decision {payload.get('decision')!r}") from exc
    raw_estimate = payload.get("interval_estimate")
    estimate = (
        None
        if raw_estimate is None
        else OEstimateResult(
            value=float(raw_estimate["value"]),
            n=int(raw_estimate["n"]),
            n_compliant=int(raw_estimate["n_compliant"]),
            n_forced=int(raw_estimate.get("n_forced", 0)),
            propagated=bool(raw_estimate.get("propagated", False)),
        )
    )
    raw_interest = payload.get("interest")
    interest = (
        None
        if raw_interest is None
        else frozenset(_decode_item(entry) for entry in raw_interest)
    )
    return RiskAssessment(
        decision=decision,
        tolerance=float(payload["tolerance"]),
        n_items=int(payload["n_items"]),
        g=int(payload["g"]),
        delta=None if payload.get("delta") is None else float(payload["delta"]),
        interval_estimate=estimate,
        alpha_max=None if payload.get("alpha_max") is None else float(payload["alpha_max"]),
        interest=interest,
        runs=None if payload.get("runs") is None else int(payload["runs"]),
        exact_cracks=None
        if payload.get("exact_cracks") is None
        else float(payload["exact_cracks"]),
        exact_strategy=payload.get("exact_strategy"),
        partial_estimate=None
        if payload.get("partial_estimate") is None
        else PartialEstimate.from_json(payload["partial_estimate"]),
        attack=_attack_from_json(payload.get("attack")),
    )


def save_json(payload: dict, path: PathLike) -> None:
    """Write a serialized artifact to disk (pretty-printed, stable order)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def save_json_atomic(
    payload: dict,
    path: PathLike,
    fault_point: Callable[[str, Path], None] | None = None,
) -> None:
    """Write a serialized artifact so readers never see a torn file.

    The payload goes to a ``<name>.<random>.tmp`` sibling first (fsynced,
    so the rename is not reordered before the data reaches the disk) and
    is then moved over *path* with :func:`os.replace` — atomic on POSIX.
    A crash at any point leaves either the old artifact or an orphan
    ``*.tmp`` file, never a half-written JSON document at *path*.

    *fault_point*, when given, is called with ``("tmp", tmp_path)``
    (inside the open temp file, before the JSON is written) and
    ``("replace", tmp_path)`` (after the temp file is durable, before
    the rename) — the hook the service layer's fault-injection harness
    uses to simulate mid-write crashes and torn writes (the hook gets
    the temp path so a ``torn_write`` rule can truncate it).
    Ordinary exceptions clean the temp file up; a
    :class:`BaseException` (e.g. an injected crash) leaves it behind,
    exactly as a killed process would.
    """
    target = Path(path)
    handle_fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle_fd, "w", encoding="utf-8") as handle:
            if fault_point is not None:
                fault_point("tmp", Path(tmp_name))
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        if fault_point is not None:
            fault_point("replace", Path(tmp_name))
        os.replace(tmp_name, target)
    except Exception:
        # A survivable failure: don't leak the temp file.  BaseException
        # (simulated crash, KeyboardInterrupt) skips this on purpose.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_json(path: PathLike) -> dict:
    """Read a serialized artifact, with a library error on bad JSON."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except json.JSONDecodeError as exc:
        raise FormatError(f"{path}: invalid JSON ({exc})") from exc

"""ECLAT frequent-itemset mining (Zaki 2000).

The third classic miner, working on the *vertical* representation: each
item maps to the set of transaction ids containing it (its *tidset*),
and itemset supports come from tidset intersections.  Depth-first search
with tidset propagation; equivalent output to Apriori and FP-growth,
often fastest on dense data.
"""

from __future__ import annotations

from typing import Hashable

from repro.data.database import TransactionDatabase
from repro.errors import DataError
from repro.mining.itemsets import FrequentItemset

__all__ = ["eclat", "vertical_representation"]

Item = Hashable


def vertical_representation(db: TransactionDatabase) -> dict:
    """Item -> frozenset of transaction indices containing it (tidsets)."""
    tidsets: dict[Item, set[int]] = {}
    for tid, transaction in enumerate(db):
        for item in transaction:
            tidsets.setdefault(item, set()).add(tid)
    return {item: frozenset(tids) for item, tids in tidsets.items()}


def eclat(
    db: TransactionDatabase,
    min_support: float,
    max_size: int | None = None,
) -> list[FrequentItemset]:
    """Mine all itemsets with support at least *min_support* via ECLAT.

    Same contract and output as :func:`~repro.mining.apriori.apriori`.
    """
    if not 0.0 < min_support <= 1.0:
        raise DataError(f"min_support must be in (0, 1], got {min_support}")
    m = db.n_transactions
    threshold = min_support * m
    tidsets = vertical_representation(db)
    frequent_items = sorted(
        (item for item, tids in tidsets.items() if len(tids) >= threshold),
        key=lambda item: (len(tidsets[item]), repr(item)),
    )
    results: list[FrequentItemset] = []

    def explore(prefix: frozenset, prefix_tids: frozenset, candidates: list) -> None:
        for index, item in enumerate(candidates):
            tids = prefix_tids & tidsets[item] if prefix else tidsets[item]
            if len(tids) < threshold:
                continue
            itemset = prefix | {item}
            results.append(FrequentItemset(support=len(tids) / m, items=itemset))
            if max_size is not None and len(itemset) >= max_size:
                continue
            explore(itemset, tids, candidates[index + 1 :])

    explore(frozenset(), frozenset(), frequent_items)
    results.sort(key=lambda fi: (-fi.support, len(fi.items), sorted(map(repr, fi.items))))
    return results

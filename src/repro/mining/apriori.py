"""Apriori frequent-itemset mining (Agrawal, Imielinski, Swami 1993).

The classic level-wise algorithm the paper cites as the setting of its
risk analysis: generate candidate ``k``-itemsets by joining frequent
``(k-1)``-itemsets, prune candidates with an infrequent subset, then
count supports in one database pass per level.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from repro.data.database import TransactionDatabase
from repro.errors import DataError
from repro.mining.itemsets import FrequentItemset

__all__ = ["apriori"]


def _frequent_singletons(db: TransactionDatabase, min_support: float) -> dict:
    counts = {item: db.item_count(item) for item in db.domain}
    threshold = min_support * db.n_transactions
    return {
        frozenset([item]): count
        for item, count in counts.items()
        if count >= threshold and count > 0
    }


def _generate_candidates(frequent: set, size: int) -> set:
    """Join step + prune step of Apriori."""
    candidates = set()
    frequent_list = sorted(frequent, key=lambda s: sorted(map(repr, s)))
    for a_index, a in enumerate(frequent_list):
        for b in frequent_list[a_index + 1 :]:
            union = a | b
            if len(union) != size:
                continue
            if all(frozenset(subset) in frequent for subset in combinations(union, size - 1)):
                candidates.add(union)
    return candidates


def apriori(
    db: TransactionDatabase,
    min_support: float,
    max_size: int | None = None,
) -> list[FrequentItemset]:
    """Mine all itemsets with support at least *min_support*.

    Parameters
    ----------
    db:
        The transaction database.
    min_support:
        Support threshold as a fraction of transactions, in ``(0, 1]``.
    max_size:
        Optional cap on the itemset size explored.

    Returns
    -------
    All frequent itemsets, sorted by descending support then by size.
    """
    if not 0.0 < min_support <= 1.0:
        raise DataError(f"min_support must be in (0, 1], got {min_support}")
    m = db.n_transactions
    threshold = min_support * m
    results: list[FrequentItemset] = []

    level = _frequent_singletons(db, min_support)
    size = 1
    while level:
        results.extend(
            FrequentItemset(support=count / m, items=itemset)
            for itemset, count in level.items()
        )
        if max_size is not None and size >= max_size:
            break
        size += 1
        candidates = _generate_candidates(set(level), size)
        if not candidates:
            break
        counts: dict = defaultdict(int)
        for transaction in db:
            if len(transaction) < size:
                continue
            for candidate in candidates:
                if candidate <= transaction:
                    counts[candidate] += 1
        level = {
            itemset: count for itemset, count in counts.items() if count >= threshold
        }

    results.sort(key=lambda fi: (-fi.support, len(fi.items), sorted(map(repr, fi.items))))
    return results

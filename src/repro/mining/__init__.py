"""Frequent-set mining substrate (the paper's motivating task).

The paper's scenarios — mining as a service, mining for the common good —
release anonymized data *so that someone can mine it*.  This subpackage
provides the mining side: three classic frequent-itemset miners (Apriori,
FP-growth, ECLAT) over :class:`~repro.data.database.TransactionDatabase`,
association-rule generation, and the closed/maximal condensations.  The
examples use it to demonstrate that anonymization preserves every pattern
up to renaming (the property that makes it attractive, and risky).
"""

from repro.mining.apriori import apriori
from repro.mining.condense import closed_itemsets, maximal_itemsets
from repro.mining.eclat import eclat, vertical_representation
from repro.mining.fpgrowth import fp_growth
from repro.mining.itemsets import FrequentItemset, itemsets_equal_up_to_renaming, support
from repro.mining.rules import AssociationRule, generate_rules

__all__ = [
    "apriori",
    "fp_growth",
    "eclat",
    "vertical_representation",
    "FrequentItemset",
    "support",
    "itemsets_equal_up_to_renaming",
    "AssociationRule",
    "generate_rules",
    "closed_itemsets",
    "maximal_itemsets",
]

"""Itemset primitives shared by the miners."""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Hashable

from repro.data.database import TransactionDatabase
from repro.errors import DataError

__all__ = ["FrequentItemset", "support", "itemsets_equal_up_to_renaming"]

Item = Hashable


@dataclass(frozen=True, order=True)
class FrequentItemset:
    """A frequent itemset with its support (fraction of transactions)."""

    support: float
    items: frozenset

    def __post_init__(self) -> None:
        if not self.items:
            raise DataError("a frequent itemset cannot be empty")
        if not 0.0 <= self.support <= 1.0:
            raise DataError(f"support {self.support} outside [0, 1]")

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, item: Item) -> bool:
        return item in self.items


def support(db: TransactionDatabase, itemset: Iterable[Item]) -> float:
    """Fraction of transactions containing every item of *itemset*."""
    wanted = frozenset(itemset)
    if not wanted:
        raise DataError("support of the empty itemset is undefined here")
    hits = sum(1 for transaction in db if wanted <= transaction)
    return hits / db.n_transactions


def itemsets_equal_up_to_renaming(
    original: Iterable[FrequentItemset],
    anonymized: Iterable[FrequentItemset],
    mapping: Mapping[Item, Item],
) -> bool:
    """Whether two mining results coincide after renaming through *mapping*.

    Used to demonstrate the paper's premise: anonymization does not
    perturb data characteristics, so mining the released database yields
    the original patterns with items renamed.
    """
    renamed = {
        (itemset.support, frozenset(mapping[item] for item in itemset.items))
        for itemset in original
    }
    observed = {(itemset.support, itemset.items) for itemset in anonymized}
    return renamed == observed

"""FP-growth frequent-itemset mining (Han, Pei, Yin 2000).

A pattern-growth miner used as the faster alternative to Apriori in the
examples and to cross-check mining results in tests.  Builds an FP-tree
(prefix tree over support-ordered transactions with a header table of
sibling links) and mines it recursively through conditional trees.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable

from repro.data.database import TransactionDatabase
from repro.errors import DataError
from repro.mining.itemsets import FrequentItemset

__all__ = ["fp_growth"]

Item = Hashable


class _Node:
    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Item, parent: "_Node | None"):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict = {}
        self.link: "_Node | None" = None


class _Tree:
    """An FP-tree with its header table."""

    def __init__(self):
        self.root = _Node(None, None)
        self.header: dict = {}
        self.tails: dict = {}

    def insert(self, items: Iterable[Item], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item, node)
                node.children[item] = child
                if item in self.tails:
                    self.tails[item].link = child
                else:
                    self.header[item] = child
                self.tails[item] = child
            child.count += count
            node = child

    def prefix_paths(self, item: Item) -> list[tuple[list, int]]:
        """Conditional pattern base: (path above the node, node count)."""
        paths = []
        node = self.header.get(item)
        while node is not None:
            path = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            path.reverse()
            if path:
                paths.append((path, node.count))
            node = node.link
        return paths

    def item_counts(self) -> dict:
        counts: dict = defaultdict(int)
        for item, head in self.header.items():
            node = head
            while node is not None:
                counts[item] += node.count
                node = node.link
        return counts


def _build_tree(weighted_transactions: Iterable[tuple[list, int]], order: dict) -> _Tree:
    tree = _Tree()
    for items, count in weighted_transactions:
        kept = sorted(
            (item for item in items if item in order),
            key=lambda item: (order[item], repr(item)),
        )
        if kept:
            tree.insert(kept, count)
    return tree


def _mine(
    tree: _Tree,
    suffix: frozenset,
    threshold: float,
    m: int,
    results: list[FrequentItemset],
    max_size: int | None,
) -> None:
    counts = tree.item_counts()
    frequent_items = {item: c for item, c in counts.items() if c >= threshold}
    for item, count in frequent_items.items():
        itemset = suffix | {item}
        results.append(FrequentItemset(support=count / m, items=itemset))
        if max_size is not None and len(itemset) >= max_size:
            continue
        paths = tree.prefix_paths(item)
        base_counts: dict = defaultdict(int)
        for path, path_count in paths:
            for path_item in path:
                base_counts[path_item] += path_count
        keep = {pi for pi, c in base_counts.items() if c >= threshold}
        if not keep:
            continue
        order = {pi: -base_counts[pi] for pi in keep}
        conditional = _build_tree(
            (([pi for pi in path if pi in keep], c) for path, c in paths), order
        )
        _mine(conditional, itemset, threshold, m, results, max_size)


def fp_growth(
    db: TransactionDatabase,
    min_support: float,
    max_size: int | None = None,
) -> list[FrequentItemset]:
    """Mine all itemsets with support at least *min_support* via FP-growth.

    Same contract (and same output, up to order normalization) as
    :func:`repro.mining.apriori.apriori`.
    """
    if not 0.0 < min_support <= 1.0:
        raise DataError(f"min_support must be in (0, 1], got {min_support}")
    m = db.n_transactions
    threshold = min_support * m
    counts = {item: db.item_count(item) for item in db.domain}
    keep = {item for item, c in counts.items() if c >= threshold and c > 0}
    order = {item: -counts[item] for item in keep}
    tree = _build_tree(((list(t), 1) for t in db), order)
    results: list[FrequentItemset] = []
    _mine(tree, frozenset(), threshold, m, results, max_size)
    results.sort(key=lambda fi: (-fi.support, len(fi.items), sorted(map(repr, fi.items))))
    return results

"""Association rules from frequent itemsets (Agrawal et al. 1993).

The paper's motivating task is frequent-set / association-rule mining;
this module completes the substrate: generate all rules ``X -> Y`` with
confidence above a threshold from a set of frequent itemsets, with the
standard interestingness measures (confidence, lift, leverage).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from itertools import combinations

from repro.errors import DataError
from repro.mining.itemsets import FrequentItemset

__all__ = ["AssociationRule", "generate_rules"]


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``antecedent -> consequent`` with its measures.

    Attributes
    ----------
    antecedent, consequent:
        Disjoint, non-empty itemsets.
    support:
        Support of their union.
    confidence:
        ``support(A u C) / support(A)``.
    lift:
        ``confidence / support(C)`` — 1 means independence.
    leverage:
        ``support(A u C) - support(A) * support(C)``.
    """

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float
    lift: float
    leverage: float

    def __post_init__(self) -> None:
        if not self.antecedent or not self.consequent:
            raise DataError("rule sides must be non-empty")
        if self.antecedent & self.consequent:
            raise DataError("rule sides must be disjoint")

    def __str__(self) -> str:
        lhs = ", ".join(sorted(map(str, self.antecedent)))
        rhs = ", ".join(sorted(map(str, self.consequent)))
        return (
            f"{{{lhs}}} -> {{{rhs}}} "
            f"(supp={self.support:.3f}, conf={self.confidence:.3f}, lift={self.lift:.2f})"
        )


def generate_rules(
    frequent_itemsets: Iterable[FrequentItemset],
    min_confidence: float,
    min_lift: float | None = None,
) -> list[AssociationRule]:
    """All rules meeting the thresholds, from mined frequent itemsets.

    Parameters
    ----------
    frequent_itemsets:
        Output of :func:`~repro.mining.apriori.apriori` or
        :func:`~repro.mining.fpgrowth.fp_growth`.  Must be *downward
        closed* (both miners guarantee this): every non-empty subset of a
        frequent itemset appears with its support.
    min_confidence:
        Confidence threshold in ``(0, 1]``.
    min_lift:
        Optional lift threshold (e.g. 1.0 for positively correlated
        rules only).

    Returns
    -------
    Rules sorted by descending confidence, then lift.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise DataError(f"min_confidence must be in (0, 1], got {min_confidence}")
    support_of: dict[frozenset, float] = {}
    for itemset in frequent_itemsets:
        support_of[itemset.items] = itemset.support

    rules: list[AssociationRule] = []
    for items, union_support in support_of.items():
        if len(items) < 2:
            continue
        for size in range(1, len(items)):
            for antecedent_tuple in combinations(sorted(items, key=repr), size):
                antecedent = frozenset(antecedent_tuple)
                consequent = items - antecedent
                antecedent_support = support_of.get(antecedent)
                consequent_support = support_of.get(consequent)
                if antecedent_support is None or consequent_support is None:
                    raise DataError(
                        "frequent itemsets are not downward closed: "
                        f"missing support for a subset of {set(items)!r}"
                    )
                confidence = union_support / antecedent_support
                if confidence < min_confidence:
                    continue
                lift = confidence / consequent_support
                if min_lift is not None and lift < min_lift:
                    continue
                rules.append(
                    AssociationRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        support=union_support,
                        confidence=confidence,
                        lift=lift,
                        leverage=union_support - antecedent_support * consequent_support,
                    )
                )
    rules.sort(key=lambda r: (-r.confidence, -r.lift, sorted(map(repr, r.antecedent))))
    return rules

"""Condensed representations: closed and maximal frequent itemsets.

Post-processing over a mined collection:

* an itemset is **closed** when no proper superset has the same support;
* an itemset is **maximal** when no proper superset is frequent.

Closed itemsets preserve all support information; maximal itemsets
preserve only the frequent/infrequent boundary.  Both are standard
condensations used when the full collection is too large to release —
which is also relevant to the paper's setting, since releasing fewer
patterns leaks less structure.

Both functions assume the input collection is *downward closed* (as the
library's miners guarantee): then checking immediate (size + 1)
supersets suffices, because support monotonicity sandwiches every
intermediate superset.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

from repro.mining.itemsets import FrequentItemset

__all__ = ["closed_itemsets", "maximal_itemsets"]


def closed_itemsets(frequent_itemsets: Iterable[FrequentItemset]) -> list[FrequentItemset]:
    """The closed itemsets of a mined collection.

    An itemset is kept unless some strict superset in the collection has
    exactly the same support.
    """
    collection = list(frequent_itemsets)
    by_size: dict[int, list[FrequentItemset]] = defaultdict(list)
    for itemset in collection:
        by_size[len(itemset.items)].append(itemset)

    closed: list[FrequentItemset] = []
    for itemset in collection:
        supersets = by_size.get(len(itemset.items) + 1, [])
        if any(
            itemset.items < candidate.items and candidate.support == itemset.support
            for candidate in supersets
        ):
            continue
        closed.append(itemset)
    closed.sort(key=lambda fi: (-fi.support, len(fi.items), sorted(map(repr, fi.items))))
    return closed


def maximal_itemsets(frequent_itemsets: Iterable[FrequentItemset]) -> list[FrequentItemset]:
    """The maximal itemsets: frequent sets with no frequent strict superset."""
    collection = list(frequent_itemsets)
    all_sets = {itemset.items for itemset in collection}
    by_size: dict[int, list[frozenset]] = defaultdict(list)
    for items in all_sets:
        by_size[len(items)].append(items)

    maximal: list[FrequentItemset] = []
    for itemset in collection:
        supersets = by_size.get(len(itemset.items) + 1, [])
        if any(itemset.items < candidate for candidate in supersets):
            continue
        maximal.append(itemset)
    maximal.sort(key=lambda fi: (-fi.support, len(fi.items), sorted(map(repr, fi.items))))
    return maximal

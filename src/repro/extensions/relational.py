"""Crack analysis for anonymized relations (paper, Section 8.1).

The paper's example: a relation with attributes age, ethnicity and
car-model is released with names replaced by integers.  A hacker who
"somehow knows that John is Chinese owning a Toyota" can connect John to
every anonymized row matching those facts; a hacker knowing nothing about
Bob connects Bob to every row.  Once the bipartite graph is set up this
way, all of the library's lemmas and estimates apply unchanged — that is
the paper's point, and this module is the setup step.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Hashable

from repro.errors import DataError, DomainMismatchError
from repro.graph.bipartite import ExplicitMappingSpace

__all__ = [
    "Predicate",
    "Exactly",
    "OneOf",
    "Between",
    "Unknown",
    "Relation",
    "AttributeKnowledge",
    "build_relational_space",
]


class Predicate(abc.ABC):
    """A hacker's partial fact about one attribute of one individual."""

    @abc.abstractmethod
    def matches(self, value: object) -> bool:
        """Whether an observed attribute value is consistent with the fact."""


@dataclass(frozen=True)
class Exactly(Predicate):
    """The hacker knows the exact value ("John is Chinese")."""

    value: object

    def matches(self, value: object) -> bool:
        return value == self.value


@dataclass(frozen=True)
class OneOf(Predicate):
    """The hacker knows the value is among a few possibilities."""

    values: frozenset

    def __init__(self, values):
        object.__setattr__(self, "values", frozenset(values))

    def matches(self, value: object) -> bool:
        return value in self.values


@dataclass(frozen=True)
class Between(Predicate):
    """The hacker knows a numeric range ("Mary's age is between 30 and 35")."""

    low: float
    high: float

    def matches(self, value: object) -> bool:
        try:
            return self.low <= value <= self.high  # type: ignore[operator]
        except TypeError:
            return False


class Unknown(Predicate):
    """No knowledge — consistent with everything ("Bob")."""

    def matches(self, value: object) -> bool:
        return True

    def __repr__(self) -> str:
        return "Unknown()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Unknown)

    def __hash__(self) -> int:
        return hash("Unknown")


class Relation:
    """A tiny relational substrate: identified rows over named attributes.

    Parameters
    ----------
    attributes:
        Attribute names, e.g. ``("age", "ethnicity", "car_model")``.
    rows:
        Mapping of individual identity -> attribute-value tuple (aligned
        with *attributes*).  One row per individual.
    """

    def __init__(self, attributes: Sequence[str], rows: Mapping[Hashable, Sequence]):
        if not attributes:
            raise DataError("a relation needs at least one attribute")
        if not rows:
            raise DataError("a relation needs at least one row")
        self.attributes = tuple(attributes)
        normalized: dict = {}
        for identity, values in rows.items():
            values = tuple(values)
            if len(values) != len(self.attributes):
                raise DataError(
                    f"row for {identity!r} has {len(values)} values, "
                    f"expected {len(self.attributes)}"
                )
            normalized[identity] = values
        self.rows = normalized

    @property
    def individuals(self) -> tuple:
        """The identities, in a stable order."""
        return tuple(sorted(self.rows, key=repr))

    def value(self, identity: Hashable, attribute: str) -> object:
        """One attribute value of one individual."""
        try:
            column = self.attributes.index(attribute)
        except ValueError:
            raise DataError(f"unknown attribute {attribute!r}") from None
        return self.rows[identity][column]

    def __len__(self) -> int:
        return len(self.rows)


class AttributeKnowledge:
    """The hacker's facts: individual -> attribute -> predicate.

    Unspecified attributes (or unlisted individuals) default to
    :class:`Unknown`.
    """

    def __init__(self, facts: Mapping[Hashable, Mapping[str, Predicate]] | None = None):
        self._facts: dict = {}
        for identity, by_attribute in (facts or {}).items():
            self._facts[identity] = dict(by_attribute)

    def predicate(self, identity: Hashable, attribute: str) -> Predicate:
        """The fact about one attribute of one individual."""
        return self._facts.get(identity, {}).get(attribute, Unknown())

    def consistent_with_row(
        self, identity: Hashable, attributes: Sequence[str], values: Sequence
    ) -> bool:
        """Whether a released row could be this individual's."""
        return all(
            self.predicate(identity, attribute).matches(value)
            for attribute, value in zip(attributes, values)
        )


def build_relational_space(
    relation: Relation, knowledge: AttributeKnowledge
) -> ExplicitMappingSpace:
    """Build the consistent-mapping space of an anonymized relation.

    The released view is the relation with identities replaced by row
    labels ``1..n`` (in the stable individual order, which is the secret
    pairing); the edge (row, individual) is present when the row's
    attribute values satisfy every fact the hacker holds about the
    individual.  The returned space plugs directly into
    :func:`repro.core.o_estimate`, the simulator, propagation and the
    itemset-identification extension.
    """
    individuals = relation.individuals
    n = len(individuals)
    adjacency: list[list[int]] = []
    for identity in individuals:
        row_edges = [
            j
            for j, row_identity in enumerate(individuals)
            if knowledge.consistent_with_row(
                identity, relation.attributes, relation.rows[row_identity]
            )
        ]
        adjacency.append(row_edges)
    if any(not edges for edges in adjacency):
        empty = [
            repr(individuals[i]) for i, edges in enumerate(adjacency) if not edges
        ]
        raise DomainMismatchError(
            f"knowledge is inconsistent with every released row for: {', '.join(empty)}"
        )
    return ExplicitMappingSpace(
        items=individuals,
        anonymized=tuple(range(1, n + 1)),
        adjacency=adjacency,
        true_partner_of=list(range(n)),
    )

"""Forced itemset identifications (paper, Section 8.2, "ongoing work").

Even when no single item can be distinguished, a *set* of items can be
identified with certainty: in Figure 6(b), nothing separates 1' from 2',
yet every consistent mapping sends ``{1', 2'}`` onto ``{1, 2}``.

The complete structure of such forced identifications comes from
matching theory (the Dulmage–Mendelsohn decomposition of a perfectly
matchable bipartite graph): fix any consistent perfect matching ``M`` and
orient each non-matching edge ``(x', y)`` as ``y -> M^{-1}(x')``.  An
edge lies in *some* perfect matching iff it is a matching edge or its
endpoints lie in the same strongly connected component; consequently
every consistent mapping sends each SCC's item set exactly onto its
matched anonymized set.  The SCCs are therefore the minimal indisputable
itemset identifications — singleton SCCs are the items cracked with
certainty (Figure 6(a)'s staircase).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.bipartite import MappingSpace
from repro.graph.matching import group_feasible_matching

__all__ = ["IdentifiedBlock", "itemset_identifications", "surely_cracked_items"]

_DEFAULT_MAX_EDGES = 5_000_000


@dataclass(frozen=True)
class IdentifiedBlock:
    """A minimal itemset whose anonymized counterpart is forced.

    Every consistent crack mapping maps :attr:`anonymized` onto
    :attr:`items` as sets (in some order).
    """

    items: tuple
    anonymized: tuple

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_sure_crack(self) -> bool:
        """True when the block pins down a single item exactly."""
        return len(self.items) == 1


def _tarjan_scc(n: int, successors: list[list[int]]) -> list[int]:
    """Iterative Tarjan SCC; returns the component id of each node."""
    index_of = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    component = [-1] * n
    counter = 0
    n_components = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            node, edge_position = work[-1]
            if edge_position == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            successors_of_node = successors[node]
            while edge_position < len(successors_of_node):
                successor = successors_of_node[edge_position]
                edge_position += 1
                if index_of[successor] == -1:
                    work[-1] = (node, edge_position)
                    work.append((successor, 0))
                    advanced = True
                    break
                if on_stack[successor]:
                    low[node] = min(low[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component[member] = n_components
                    if member == node:
                        break
                n_components += 1
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return component


def itemset_identifications(
    space: MappingSpace, max_edges: int = _DEFAULT_MAX_EDGES
) -> list[IdentifiedBlock]:
    """All minimal forced itemset identifications of a mapping space.

    Requires a consistent perfect matching to exist (otherwise
    :class:`~repro.errors.InfeasibleMatchingError` propagates).  Returns
    blocks sorted by size then by item representation; their item sets
    partition the domain.
    """
    total_edges = space.edge_count()
    if total_edges > max_edges:
        raise GraphError(
            f"itemset identification materializes the adjacency; {total_edges} "
            f"edges exceed the {max_edges}-edge guard"
        )
    n = space.n
    match = group_feasible_matching(space)
    item_of_anon = [0] * n
    for i in range(n):
        item_of_anon[int(match[i])] = i

    successors: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        own = int(match[i])
        for j in space.candidates(i):
            if j != own:
                successors[i].append(item_of_anon[j])

    component = _tarjan_scc(n, successors)
    members: dict[int, list[int]] = {}
    for i in range(n):
        members.setdefault(component[i], []).append(i)

    blocks = [
        IdentifiedBlock(
            items=tuple(space.items[i] for i in sorted(item_indices, key=lambda i: repr(space.items[i]))),
            anonymized=tuple(
                sorted((space.anonymized[int(match[i])] for i in item_indices), key=repr)
            ),
        )
        for item_indices in members.values()
    ]
    blocks.sort(key=lambda block: (len(block.items), tuple(map(repr, block.items))))
    return blocks


def surely_cracked_items(space: MappingSpace, max_edges: int = _DEFAULT_MAX_EDGES) -> list:
    """Items identified with certainty by every consistent mapping.

    These are the singleton blocks whose forced pair is the true pair —
    with a compliant belief every singleton block is a sure crack, since
    the forced anonymized partner must then be the true one.
    """
    cracked = []
    for block in itemset_identifications(space, max_edges=max_edges):
        if not block.is_sure_crack:
            continue
        item = block.items[0]
        item_index = space.item_index(item)
        anon = block.anonymized[0]
        if space.anonymized[space.true_partner(item_index)] == anon:
            cracked.append(item)
    return cracked

"""Extensions beyond frequent sets (paper, Section 8).

* :mod:`repro.extensions.relational` — Section 8.1: building consistent-
  mapping graphs from partial knowledge about a released anonymized
  *relation* (the age/ethnicity/car-model example), after which every
  analysis of the library applies unchanged.
* :mod:`repro.extensions.itemsets` — Section 8.2's ongoing-work
  direction: identities of *sets* of items.  Even when no single item can
  be cracked, a set of items can be indisputably identified with a set of
  anonymized items (Figure 6(b)); this module finds all such forced
  itemset identifications via matching theory.
* :mod:`repro.extensions.linkage` — the consortium hazard of Section 1:
  linking two independently anonymized releases of the same domain by
  statistically compatible frequencies.
* :mod:`repro.extensions.powerset` — the other half of Section 8.2:
  belief functions over the powerset.  Pairwise co-occurrence beliefs
  prune the consistent-mapping graph by arc consistency, sharpening
  every downstream estimate.
"""

from repro.extensions.itemsets import (
    IdentifiedBlock,
    itemset_identifications,
    surely_cracked_items,
)
from repro.extensions.linkage import build_linkage_space, linkage_risk, split_release
from repro.extensions.powerset import PairBelief, refine_with_pair_beliefs
from repro.extensions.relational import (
    AttributeKnowledge,
    Between,
    Exactly,
    OneOf,
    Relation,
    Unknown,
    build_relational_space,
)

__all__ = [
    "Relation",
    "AttributeKnowledge",
    "Exactly",
    "OneOf",
    "Between",
    "Unknown",
    "build_relational_space",
    "IdentifiedBlock",
    "itemset_identifications",
    "surely_cracked_items",
    "PairBelief",
    "refine_with_pair_beliefs",
    "build_linkage_space",
    "linkage_risk",
    "split_release",
]

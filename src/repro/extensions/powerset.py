"""Powerset belief functions — the paper's "ongoing work" (Section 8.2).

The paper closes by proposing belief functions *over the powerset*: the
hacker may hold ball-park frequencies not just for items but for
itemsets ("milk and diapers sell together in about 30% of baskets").
Pairwise knowledge is the practically obtainable case — co-occurrence
rates are published in category-management reports — and it is already
far sharper than item-level knowledge, because a crack mapping must now
preserve *pair* supports too.

This module implements the pairwise case:

* :class:`PairBelief` — intervals for the believed support of unordered
  item pairs (on top of an ordinary item-level belief function);
* :func:`refine_with_pair_beliefs` — prunes the consistent-mapping graph
  by arc consistency: the edge ``(x', y)`` survives only if, for every
  constrained pair ``{y, z}``, some still-admissible partner ``w'`` of
  ``z`` gives the observed anonymized pair ``{x', w'}`` a support inside
  the believed interval.  Pruning iterates to a fixed point (AC-3).

The refined graph is an ordinary
:class:`~repro.graph.bipartite.ExplicitMappingSpace`, so every analysis
in the library — O-estimates, propagation, simulation, itemset
identification — applies unchanged, exactly as Section 8 argues.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Mapping
from typing import Hashable

from repro.anonymize.database import AnonymizedDatabase
from repro.beliefs.function import BeliefFunction
from repro.beliefs.interval import Interval
from repro.errors import BeliefError, DomainMismatchError
from repro.graph.bipartite import ExplicitMappingSpace

__all__ = ["PairBelief", "refine_with_pair_beliefs"]

Item = Hashable


class PairBelief:
    """Believed support intervals for unordered item pairs.

    Parameters
    ----------
    intervals:
        Mapping of 2-element item collections to intervals (or
        ``(low, high)`` pairs / floats, as for belief functions).
    """

    def __init__(self, intervals: Mapping[object, object]):
        normalized: dict[frozenset, Interval] = {}
        for pair, value in intervals.items():
            key = frozenset(pair)
            if len(key) != 2:
                raise BeliefError(f"pair belief keys must be 2-element sets, got {set(key)!r}")
            normalized[key] = BeliefFunction._coerce(value)
        if not normalized:
            raise BeliefError("a pair belief needs at least one pair")
        self._intervals = normalized

    @property
    def pairs(self) -> frozenset:
        """The constrained pairs."""
        return frozenset(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __getitem__(self, pair) -> Interval:
        try:
            return self._intervals[frozenset(pair)]
        except KeyError:
            raise BeliefError(f"no belief for pair {set(pair)!r}") from None

    def __contains__(self, pair) -> bool:
        return frozenset(pair) in self._intervals

    def compliancy(self, true_pair_supports: Mapping[object, float]) -> float:
        """Fraction of pair intervals containing the true pair support."""
        hits = 0
        for pair, interval in self._intervals.items():
            try:
                truth = true_pair_supports[pair]
            except KeyError:
                truth = true_pair_supports[tuple(sorted(pair, key=repr))]
            if truth in interval:
                hits += 1
        return hits / len(self._intervals)


class _PairSupportOracle:
    """Lazy exact pair supports of the anonymized database via tidsets."""

    def __init__(self, released: AnonymizedDatabase):
        self._tidsets: dict = defaultdict(set)
        for tid, transaction in enumerate(released.database):
            for anon in transaction:
                self._tidsets[anon].add(tid)
        self._m = released.database.n_transactions
        self._cache: dict[frozenset, float] = {}

    def support(self, anon_a, anon_b) -> float:
        key = frozenset((anon_a, anon_b))
        cached = self._cache.get(key)
        if cached is None:
            cached = len(self._tidsets[anon_a] & self._tidsets[anon_b]) / self._m
            self._cache[key] = cached
        return cached


def refine_with_pair_beliefs(
    released: AnonymizedDatabase,
    belief: BeliefFunction,
    pair_belief: PairBelief,
) -> ExplicitMappingSpace:
    """Build the pairwise-consistent mapping space (Section 8.2).

    Starts from the item-level consistent graph (edge ``(x', y)`` iff the
    observed frequency of ``x'`` lies in ``belief(y)``) and prunes it to
    arc consistency against the pair constraints.  Items whose pairs are
    guessed wrong may end with empty neighbourhoods — they can then never
    be cracked by a pairwise-consistent mapping, mirroring the
    alpha-compliancy story at the itemset level.
    """
    mapping = released.mapping
    if belief.domain != mapping.original_domain:
        raise DomainMismatchError("belief function does not cover the released domain")
    stray = {
        item for pair in pair_belief.pairs for item in pair
    } - mapping.original_domain
    if stray:
        raise DomainMismatchError(
            f"pair beliefs mention {len(stray)} item(s) outside the domain"
        )

    items = sorted(mapping.original_domain, key=repr)
    item_index = {item: i for i, item in enumerate(items)}
    anonymized = sorted(mapping.anonymized_domain)
    anon_index = {anon: j for j, anon in enumerate(anonymized)}
    observed = released.observed_frequencies()

    adjacency: list[set[int]] = []
    for item in items:
        interval = belief[item]
        adjacency.append(
            {j for j, anon in enumerate(anonymized) if observed[anon] in interval}
        )

    constraints_of: dict[int, list[tuple[int, Interval]]] = defaultdict(list)
    for pair in pair_belief.pairs:
        first, second = tuple(pair)
        interval = pair_belief[pair]
        constraints_of[item_index[first]].append((item_index[second], interval))
        constraints_of[item_index[second]].append((item_index[first], interval))

    oracle = _PairSupportOracle(released)

    def edge_supported(i: int, j: int) -> bool:
        """AC check: every pair constraint on item i has a witness for j."""
        for partner, interval in constraints_of.get(i, ()):
            anon_i = anonymized[j]
            witnesses = adjacency[partner]
            if not any(
                w != j and oracle.support(anon_i, anonymized[w]) in interval
                for w in witnesses
            ):
                return False
        return True

    queue: deque[int] = deque(constraints_of)
    in_queue = set(queue)
    while queue:
        i = queue.popleft()
        in_queue.discard(i)
        doomed = {j for j in adjacency[i] if not edge_supported(i, j)}
        if not doomed:
            continue
        adjacency[i] -= doomed
        # Edges of constraint partners may have lost their witness.
        for partner, _ in constraints_of.get(i, ()):
            if partner not in in_queue:
                queue.append(partner)
                in_queue.add(partner)

    pairing = [anon_index[mapping.anonymize_item(item)] for item in items]
    return ExplicitMappingSpace(
        items=items,
        anonymized=tuple(anonymized),
        adjacency=[sorted(edges) for edges in adjacency],
        true_partner_of=pairing,
    )

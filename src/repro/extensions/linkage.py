"""Cross-release linkage: when two anonymized releases meet.

The paper's consortium scenario (Section 1) has several parties each
releasing anonymized data about overlapping item domains.  Each release
may pass the recipe in isolation — yet an adversary holding *both* can
try to link them: anonymized item ``a`` in release A and ``b`` in
release B refer to the same product exactly when their observed
frequencies are statistically compatible.  Linking defeats the purpose
of independent anonymization (anything known about ``a`` transfers to
``b``), and the paper's own machinery quantifies it:

* treat release A's anonymized items as the "original" side and release
  B's as the "anonymized" side;
* give each item ``a`` the belief interval ``F_A(a) ± w`` where ``w``
  reflects binomial sampling noise at the two transaction counts;
* the resulting :class:`FrequencyMappingSpace` makes every analysis in
  the library — O-estimates, simulation, propagation, attack guesses —
  apply verbatim to the linkage question.

The owner-side helper :func:`linkage_risk` answers "if I hand two
independently anonymized halves of my data to two partners, how many
columns could a collusion link?"
"""

from __future__ import annotations

import math

import numpy as np

from repro.anonymize.database import AnonymizedDatabase, anonymize
from repro.core.oestimate import OEstimateResult, o_estimate
from repro.data.database import TransactionDatabase
from repro.errors import DataError, DomainMismatchError
from repro.graph.bipartite import FrequencyMappingSpace

__all__ = ["build_linkage_space", "linkage_risk", "split_release"]


def _noise_width(frequency: float, m_a: int, m_b: int, z: float) -> float:
    """A ``z``-sigma tolerance for comparing two binomial frequencies."""
    variance = frequency * (1.0 - frequency) * (1.0 / m_a + 1.0 / m_b)
    return z * math.sqrt(max(variance, 0.0)) + 1e-12


def build_linkage_space(
    release_a: AnonymizedDatabase,
    release_b: AnonymizedDatabase,
    z: float = 3.0,
    width: float | None = None,
) -> FrequencyMappingSpace:
    """The consistent-linkage space between two releases of the same domain.

    Parameters
    ----------
    release_a, release_b:
        Two anonymized releases whose secret mappings share the original
        item domain (the owner holds both, e.g. before handing them to
        different partners).
    z:
        Width of the statistical compatibility band in standard
        deviations of the frequency difference (default 3).
    width:
        Fixed half-width override; when given, ``z`` is ignored.

    Returns
    -------
    A mapping space whose "items" are release A's anonymized items,
    whose "anonymized" side is release B's, and whose ground-truth
    pairing links items of common origin.  ``o_estimate`` on it is the
    expected number of linkable columns.
    """
    mapping_a, mapping_b = release_a.mapping, release_b.mapping
    if mapping_a.original_domain != mapping_b.original_domain:
        raise DomainMismatchError("the releases do not cover the same original domain")

    f_a = release_a.observed_frequencies()
    f_b = release_b.observed_frequencies()
    m_a = release_a.database.n_transactions
    m_b = release_b.database.n_transactions

    originals = sorted(mapping_a.original_domain, key=repr)
    items = [mapping_a.anonymize_item(x) for x in originals]
    anonymized = [mapping_b.anonymize_item(x) for x in originals]
    observed = [float(f_b[b]) for b in anonymized]
    intervals = []
    for a in items:
        frequency = float(f_a[a])
        half = width if width is not None else _noise_width(frequency, m_a, m_b, z)
        intervals.append((max(0.0, frequency - half), min(1.0, frequency + half)))
    return FrequencyMappingSpace(
        items=items,
        anonymized=anonymized,
        observed=observed,
        intervals=intervals,
        true_partner_of=list(range(len(originals))),
    )


def split_release(
    db: TransactionDatabase,
    fraction: float = 0.5,
    rng: np.random.Generator | None = None,
) -> tuple[AnonymizedDatabase, AnonymizedDatabase]:
    """Split a database into two disjoint halves, anonymized independently.

    Models the consortium case where two partners each receive an
    (independently renamed) share of the same underlying data.
    """
    if not 0.0 < fraction < 1.0:
        raise DataError(f"split fraction must be in (0, 1), got {fraction}")
    rng = np.random.default_rng() if rng is None else rng
    indices = rng.permutation(db.n_transactions)
    cut = max(1, min(db.n_transactions - 1, round(fraction * db.n_transactions)))
    first = TransactionDatabase((db[int(i)] for i in indices[:cut]), domain=db.domain)
    second = TransactionDatabase((db[int(i)] for i in indices[cut:]), domain=db.domain)
    return anonymize(first, rng=rng), anonymize(second, rng=rng)


def linkage_risk(
    db: TransactionDatabase,
    fraction: float = 0.5,
    z: float = 3.0,
    rng: np.random.Generator | None = None,
) -> OEstimateResult:
    """Expected number of linkable items between two independent releases.

    Splits *db*, anonymizes the halves with independent mappings, builds
    the linkage space and returns its O-estimate: the expected number of
    anonymized columns a collusion of the two recipients could match up.
    """
    rng = np.random.default_rng() if rng is None else rng
    release_a, release_b = split_release(db, fraction=fraction, rng=rng)
    space = build_linkage_space(release_a, release_b, z=z)
    return o_estimate(space)

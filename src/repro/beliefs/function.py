"""The :class:`BeliefFunction` — item -> frequency interval (Section 2.2)."""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Hashable

from repro.beliefs.interval import FULL_INTERVAL, Interval
from repro.errors import BeliefError, DomainMismatchError

__all__ = ["BeliefFunction"]

Item = Hashable


class BeliefFunction:
    """An immutable mapping from items of ``I`` to belief intervals.

    Parameters
    ----------
    intervals:
        Mapping of item -> :class:`~repro.beliefs.interval.Interval` (or a
        ``(low, high)`` pair, or a bare float for a point belief).  The
        keys define the domain the belief function is about.

    Notes
    -----
    Classification helpers mirror the paper's taxonomy:

    * :attr:`is_point_valued` — every interval is a point;
    * :attr:`is_ignorant` — every interval is ``[0, 1]``;
    * :meth:`is_compliant_for` / :meth:`compliancy` — containment of the
      true frequencies (full and fractional alpha-compliancy).
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Mapping[Item, object]):
        if not intervals:
            raise BeliefError("a belief function needs a non-empty domain")
        normalized: dict[Item, Interval] = {}
        for item, value in intervals.items():
            normalized[item] = self._coerce(value)
        self._intervals = normalized

    @staticmethod
    def _coerce(value: object) -> Interval:
        if isinstance(value, Interval):
            return value
        if isinstance(value, (int, float)):
            return Interval.point(float(value))
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return Interval(float(value[0]), float(value[1]))
        raise BeliefError(f"cannot interpret {value!r} as a belief interval")

    # -- mapping behaviour ---------------------------------------------------

    @property
    def domain(self) -> frozenset:
        """The item universe the belief function covers."""
        return frozenset(self._intervals)

    def __getitem__(self, item: Item) -> Interval:
        try:
            return self._intervals[item]
        except KeyError:
            raise BeliefError(f"belief function has no interval for item {item!r}") from None

    def __contains__(self, item: Item) -> bool:
        return item in self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self):
        return iter(self._intervals)

    def items(self):
        """Iterate over ``(item, interval)`` pairs."""
        return self._intervals.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BeliefFunction):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(frozenset(self._intervals.items()))

    def __repr__(self) -> str:
        return f"BeliefFunction(n_items={len(self._intervals)})"

    # -- paper taxonomy --------------------------------------------------------

    @property
    def is_point_valued(self) -> bool:
        """True when every belief interval is a point (Section 2.2)."""
        return all(interval.is_point for interval in self._intervals.values())

    @property
    def is_interval_valued(self) -> bool:
        """True when at least one belief interval is a true range."""
        return any(not interval.is_point for interval in self._intervals.values())

    @property
    def is_ignorant(self) -> bool:
        """True when every interval is the full ``[0, 1]``."""
        return all(interval == FULL_INTERVAL for interval in self._intervals.values())

    # -- compliancy --------------------------------------------------------------

    def _check_domain(self, frequencies: Mapping[Item, float]) -> None:
        missing = self.domain - frozenset(frequencies)
        if missing:
            sample = sorted(map(repr, list(missing)[:5]))
            raise DomainMismatchError(
                f"true frequencies missing for {len(missing)} item(s), e.g. {', '.join(sample)}"
            )

    def compliant_items(self, frequencies: Mapping[Item, float]) -> frozenset:
        """Items whose interval contains their true frequency."""
        self._check_domain(frequencies)
        return frozenset(
            item for item, interval in self._intervals.items() if frequencies[item] in interval
        )

    def is_compliant_for(self, frequencies: Mapping[Item, float]) -> bool:
        """Full compliancy: every interval contains the true frequency."""
        return len(self.compliant_items(frequencies)) == len(self._intervals)

    def compliancy(self, frequencies: Mapping[Item, float]) -> float:
        """The degree of compliancy ``alpha`` against *frequencies* (Section 5.3)."""
        return len(self.compliant_items(frequencies)) / len(self._intervals)

    # -- derivation ---------------------------------------------------------------

    def restrict(self, items: Iterable[Item]) -> "BeliefFunction":
        """The belief function restricted to *items* (must be a subset)."""
        keep = frozenset(items)
        missing = keep - self.domain
        if missing:
            raise DomainMismatchError(f"{len(missing)} item(s) outside the belief domain")
        return BeliefFunction({item: self._intervals[item] for item in keep})

    def widen(self, delta: float) -> "BeliefFunction":
        """Widen every interval by *delta* on both sides (clamped to [0, 1]).

        By monotonicity (Lemma 8) this can only lower the O-estimate.
        """
        return BeliefFunction(
            {
                item: Interval(max(0.0, iv.low - delta), min(1.0, iv.high + delta))
                for item, iv in self._intervals.items()
            }
        )

    def replace(self, overrides: Mapping[Item, object]) -> "BeliefFunction":
        """A copy with the intervals of *overrides* substituted in."""
        stray = frozenset(overrides) - self.domain
        if stray:
            raise DomainMismatchError(f"{len(stray)} override item(s) outside the belief domain")
        merged = dict(self._intervals)
        for item, value in overrides.items():
            merged[item] = self._coerce(value)
        return BeliefFunction(merged)

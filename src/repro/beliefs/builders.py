"""Constructors for the belief-function classes the paper analyzes.

These mirror the paper's taxonomy (Sections 2.2, 5.3, 6.1, 7.4):

* :func:`ignorant_belief` — no knowledge, every interval ``[0, 1]``;
* :func:`point_belief` — exact knowledge of every frequency;
* :func:`interval_belief` — arbitrary intervals, given explicitly;
* :func:`uniform_width_belief` — the recipe's ``[f - delta, f + delta]``;
* :func:`alpha_compliant_belief` — a compliant base with a random
  ``(1 - alpha)`` fraction of items deliberately guessed wrong;
* :func:`from_sample_belief` — the Similarity-by-Sampling construction
  (Figure 13): sampled frequencies widened by the sampled median gap.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Hashable

import numpy as np

from repro.beliefs.function import BeliefFunction
from repro.beliefs.interval import FULL_INTERVAL, Interval
from repro.data.database import FrequencySource
from repro.data.frequency import FrequencyGroups
from repro.errors import BeliefError

__all__ = [
    "ignorant_belief",
    "point_belief",
    "interval_belief",
    "uniform_width_belief",
    "alpha_compliant_belief",
    "from_sample_belief",
]

Item = Hashable


def ignorant_belief(domain: Iterable[Item]) -> BeliefFunction:
    """The ignorant belief function: every item maps to ``[0, 1]``."""
    return BeliefFunction({item: FULL_INTERVAL for item in domain})


def point_belief(frequencies: Mapping[Item, float]) -> BeliefFunction:
    """The compliant point-valued belief function from true frequencies."""
    return BeliefFunction({item: Interval.point(freq) for item, freq in frequencies.items()})


def interval_belief(intervals: Mapping[Item, object]) -> BeliefFunction:
    """A belief function from an explicit item -> interval mapping."""
    return BeliefFunction(intervals)


def uniform_width_belief(frequencies: Mapping[Item, float], delta: float) -> BeliefFunction:
    """Compliant intervals ``[f - delta, f + delta]`` (Figure 8, step 5)."""
    return BeliefFunction(
        {item: Interval.around(freq, delta) for item, freq in frequencies.items()}
    )


def _noncompliant_interval(
    true_frequency: float,
    delta: float,
    observed_frequencies: tuple[float, ...],
    rng: np.random.Generator,
) -> Interval:
    """A wrong-guess interval: excludes the true frequency.

    To keep the consistent-mapping graph non-degenerate (so that
    simulation remains possible), the wrong interval is centered on a
    *different* observed frequency whenever one exists, then clipped just
    enough to exclude the true frequency.
    """
    others = [f for f in observed_frequencies if f != true_frequency]
    if not others:
        # Degenerate domain: a single frequency group.  The only way to be
        # non-compliant is an interval that matches nothing.
        if true_frequency >= 0.5:
            return Interval(0.0, max(0.0, true_frequency - max(delta, 1e-9)) / 2)
        low = min(1.0, true_frequency + max(delta, 1e-9) * 2)
        return Interval(low, 1.0) if low < 1.0 else Interval(1.0, 1.0)

    target = float(others[int(rng.integers(len(others)))])
    low = max(0.0, target - delta)
    high = min(1.0, target + delta)
    if low <= true_frequency <= high:
        midpoint = (true_frequency + target) / 2
        if target > true_frequency:
            low = min(target, np.nextafter(midpoint, 1.0))
        else:
            high = max(target, np.nextafter(midpoint, 0.0))
    return Interval(low, high)


def alpha_compliant_belief(
    frequencies: Mapping[Item, float],
    alpha: float,
    delta: float,
    rng: np.random.Generator | None = None,
    noncompliant_items: Iterable[Item] | None = None,
) -> BeliefFunction:
    """An ``alpha``-compliant interval belief function (Section 5.3).

    A ``ceil((1 - alpha) * n)``-sized subset of items (random unless
    *noncompliant_items* is given) receives a wrong-guess interval that
    excludes its true frequency; every other item gets the compliant
    interval ``[f - delta, f + delta]``.

    Parameters
    ----------
    frequencies:
        True item frequencies (defines the domain).
    alpha:
        Desired degree of compliancy in ``[0, 1]``.
    delta:
        Interval half-width (typically ``delta_med``).
    rng:
        Source of randomness for selecting wrong items and wrong targets.
    noncompliant_items:
        Explicit set of items to guess wrong; overrides the random choice
        (and *alpha* is then implied by its size).
    """
    if not 0.0 <= alpha <= 1.0:
        raise BeliefError(f"alpha must be in [0, 1], got {alpha}")
    rng = np.random.default_rng() if rng is None else rng
    items = sorted(frequencies, key=repr)
    if noncompliant_items is None:
        n_wrong = round((1.0 - alpha) * len(items))
        wrong = set(
            items[i] for i in rng.choice(len(items), size=n_wrong, replace=False)
        ) if n_wrong else set()
    else:
        wrong = set(noncompliant_items)
        stray = wrong - set(items)
        if stray:
            raise BeliefError(f"{len(stray)} non-compliant item(s) outside the domain")

    observed = tuple(sorted(set(frequencies.values())))
    intervals: dict[Item, Interval] = {}
    for item in items:
        freq = frequencies[item]
        if item in wrong:
            intervals[item] = _noncompliant_interval(freq, delta, observed, rng)
        else:
            intervals[item] = Interval.around(freq, delta)
    return BeliefFunction(intervals)


def from_sample_belief(
    sample: FrequencySource,
    delta: float | None = None,
    use_mean_gap: bool = False,
) -> BeliefFunction:
    """Build a belief function from a sampled database (Figure 13).

    The hacker observes the sampled frequency ``f_hat(x)`` of every item
    and widens it by the sampled median frequency gap ``delta'_med``
    (or the sampled *mean* gap when *use_mean_gap* — the paper shows the
    mean makes compliancy misleadingly easy, Section 7.4).

    Parameters
    ----------
    sample:
        The sampled database or frequency profile ``D_p``.
    delta:
        Explicit half-width override; when ``None`` the sampled gap
        statistic is used.
    use_mean_gap:
        Use the sampled mean gap instead of the sampled median gap.
    """
    frequencies = sample.frequencies()
    if delta is None:
        groups = FrequencyGroups(frequencies)
        if len(groups) < 2:
            raise BeliefError(
                "cannot derive a gap-based width from a sample with a single frequency group; "
                "pass delta explicitly"
            )
        delta = groups.mean_gap() if use_mean_gap else groups.median_gap()
    return uniform_width_belief(frequencies, delta)

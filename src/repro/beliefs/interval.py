"""Closed frequency intervals ``[low, high]`` within ``[0, 1]``.

The building block of belief functions (paper, Section 2.2).  Intervals
are closed on both ends, matching the paper's consistency rule: an
anonymized item with observed frequency ``F`` may map to item ``x`` iff
``beta(x).low <= F <= beta(x).high``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidIntervalError

__all__ = ["Interval", "FULL_INTERVAL"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed sub-interval of ``[0, 1]``.

    ``Interval(f, f)`` is a *point* belief (exact knowledge of frequency
    ``f``); ``Interval(0, 1)`` is total ignorance.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise InvalidIntervalError(
                f"interval [{self.low}, {self.high}] violates 0 <= low <= high <= 1"
            )

    @classmethod
    def point(cls, value: float) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return cls(value, value)

    @classmethod
    def around(cls, center: float, delta: float) -> "Interval":
        """``[center - delta, center + delta]`` clamped to ``[0, 1]``.

        This is the recipe's construction (Figure 8, step 5): the belief
        interval of an item with true frequency ``f`` is
        ``[f - delta_med, f + delta_med]``.
        """
        if delta < 0:
            raise InvalidIntervalError(f"width delta must be non-negative, got {delta}")
        return cls(max(0.0, center - delta), min(1.0, center + delta))

    # -- predicates --------------------------------------------------------

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high

    def contains_interval(self, other: "Interval") -> bool:
        """Interval containment: ``other subset-of self``.

        Matches Definition 7 of the paper: ``[l1, r1] subset [l2, r2]``
        iff ``l1 >= l2`` and ``r1 <= r2``.
        """
        return self.low <= other.low and other.high <= self.high

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    @property
    def is_point(self) -> bool:
        """True for degenerate (exact-knowledge) intervals."""
        return self.low == self.high

    @property
    def width(self) -> float:
        """``high - low``; 0 for point intervals."""
        return self.high - self.low

    def __repr__(self) -> str:
        if self.is_point:
            return f"Interval.point({self.low})"
        return f"Interval({self.low}, {self.high})"


FULL_INTERVAL = Interval(0.0, 1.0)
"""The ignorant interval ``[0, 1]``."""

"""Partial orders on belief functions (Definitions 7 and 9 of the paper).

These orders underpin the two monotonicity results the Assess-Risk recipe
relies on:

* Definition 7 / Lemma 8 — *refinement*: ``beta1 <= beta2`` when every
  interval of ``beta1`` is contained in the corresponding interval of
  ``beta2``; the O-estimate is antitone in this order (sharper knowledge
  means more expected cracks).
* Definition 9 / Lemma 10 — *compliancy refinement*: ``beta2 <=_C beta1``
  when ``beta2`` is compliant on a subset of the items ``beta1`` is
  compliant on, and is no sharper there; the O-estimate is monotone in
  this order (fewer correct guesses mean fewer expected cracks).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Hashable

from repro.beliefs.function import BeliefFunction
from repro.errors import DomainMismatchError

__all__ = ["is_refinement", "is_compliancy_refinement"]

Item = Hashable


def _require_same_domain(beta1: BeliefFunction, beta2: BeliefFunction) -> None:
    if beta1.domain != beta2.domain:
        raise DomainMismatchError("belief functions are over different item domains")


def is_refinement(beta1: BeliefFunction, beta2: BeliefFunction) -> bool:
    """Definition 7: ``beta1 <= beta2`` iff every ``beta1(x) subset beta2(x)``."""
    _require_same_domain(beta1, beta2)
    return all(beta2[item].contains_interval(beta1[item]) for item in beta1)


def is_compliancy_refinement(
    beta2: BeliefFunction,
    beta1: BeliefFunction,
    true_frequencies: Mapping[Item, float],
    compliant2: Iterable[Item] | None = None,
    compliant1: Iterable[Item] | None = None,
) -> bool:
    """Definition 9: ``beta2 <=_C beta1``.

    Holds when (i) the compliant set of ``beta2`` is a subset of the
    compliant set of ``beta1``, and (ii) on that smaller set, ``beta1``'s
    intervals are contained in ``beta2``'s (the compliant guesses do not
    shrink).

    Compliant sets default to the sets actually induced by
    *true_frequencies*; explicit sets can be supplied to model the
    paper's construction where non-compliance is assigned by fiat.
    """
    _require_same_domain(beta1, beta2)
    set2 = (
        beta2.compliant_items(true_frequencies)
        if compliant2 is None
        else frozenset(compliant2)
    )
    set1 = (
        beta1.compliant_items(true_frequencies)
        if compliant1 is None
        else frozenset(compliant1)
    )
    if not set2 <= set1:
        return False
    return all(beta2[item].contains_interval(beta1[item]) for item in set2)

"""Belief functions — the hacker's partial knowledge (paper, Section 2.2).

A belief function maps each item of the original domain to a frequency
interval ``[l, r]``: the hacker believes the item's true frequency lies in
that range.  The special classes the paper analyzes are all constructible
here:

* *ignorant* — every interval is ``[0, 1]`` (no knowledge, Section 3.1);
* *compliant point-valued* — every interval is the exact true frequency
  (total knowledge, Section 3.2);
* *compliant interval* — every interval contains the true frequency
  (Section 4), e.g. uniform-width ``[f - delta, f + delta]`` intervals;
* *alpha-compliant* — only a fraction ``alpha`` of the intervals contain
  the true frequency (Section 5.3).
"""

from repro.beliefs.builders import (
    alpha_compliant_belief,
    from_sample_belief,
    ignorant_belief,
    interval_belief,
    point_belief,
    uniform_width_belief,
)
from repro.beliefs.function import BeliefFunction
from repro.beliefs.noise import (
    gaussian_noise_belief,
    laplace_noise_belief,
    relative_error_belief,
)
from repro.beliefs.interval import Interval
from repro.beliefs.order import is_compliancy_refinement, is_refinement

__all__ = [
    "Interval",
    "BeliefFunction",
    "ignorant_belief",
    "point_belief",
    "interval_belief",
    "uniform_width_belief",
    "alpha_compliant_belief",
    "from_sample_belief",
    "is_refinement",
    "is_compliancy_refinement",
    "gaussian_noise_belief",
    "laplace_noise_belief",
    "relative_error_belief",
]

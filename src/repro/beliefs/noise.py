"""Noise-model belief builders: hackers with imperfect measurements.

Section 7.4 models partial information by *sampling*; these builders
model it by *measurement error* instead — the hacker's frequency
estimates are the truth plus noise (market research, scanner panels,
scraped data).  The induced degree of compliancy is then a transparent
function of the noise-to-width ratio, which makes these models handy for
calibrating how much error a given interval width tolerates.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Hashable

import numpy as np

from repro.beliefs.function import BeliefFunction
from repro.beliefs.interval import Interval
from repro.errors import BeliefError

__all__ = [
    "gaussian_noise_belief",
    "laplace_noise_belief",
    "relative_error_belief",
]

Item = Hashable


def _noisy_centers(
    frequencies: Mapping[Item, float],
    noise: np.ndarray,
) -> dict:
    items = sorted(frequencies, key=repr)
    return {
        item: float(np.clip(frequencies[item] + noise[rank], 0.0, 1.0))
        for rank, item in enumerate(items)
    }


def gaussian_noise_belief(
    frequencies: Mapping[Item, float],
    sigma: float,
    width: float,
    rng: np.random.Generator | None = None,
) -> BeliefFunction:
    """Intervals of half-width *width* around Gaussian-noised frequencies.

    Each item's believed center is ``f + N(0, sigma)`` (clipped to
    ``[0, 1]``); the item is compliant exactly when the noise stays
    within ``width``, so the expected compliancy is
    ``P(|N(0, sigma)| <= width)`` — e.g. ``width = sigma`` gives
    alpha ~ 0.68, ``width = 2 sigma`` gives alpha ~ 0.95.
    """
    if sigma < 0 or width < 0:
        raise BeliefError("sigma and width must be non-negative")
    rng = np.random.default_rng() if rng is None else rng
    noise = rng.normal(0.0, sigma, size=len(frequencies))
    centers = _noisy_centers(frequencies, noise)
    return BeliefFunction(
        {item: Interval.around(center, width) for item, center in centers.items()}
    )


def laplace_noise_belief(
    frequencies: Mapping[Item, float],
    scale: float,
    width: float,
    rng: np.random.Generator | None = None,
) -> BeliefFunction:
    """Like :func:`gaussian_noise_belief` with Laplace(0, scale) noise.

    The Laplace model matches a hacker whose information comes from a
    differentially-private release of the frequencies — the expected
    compliancy ``1 - exp(-width/scale)`` quantifies how much such a
    release helps an attacker under the paper's framework.
    """
    if scale < 0 or width < 0:
        raise BeliefError("scale and width must be non-negative")
    rng = np.random.default_rng() if rng is None else rng
    noise = rng.laplace(0.0, scale, size=len(frequencies)) if scale else np.zeros(len(frequencies))
    centers = _noisy_centers(frequencies, noise)
    return BeliefFunction(
        {item: Interval.around(center, width) for item, center in centers.items()}
    )


def relative_error_belief(
    frequencies: Mapping[Item, float],
    relative_error: float,
) -> BeliefFunction:
    """Compliant intervals ``[f (1 - r), f (1 + r)]`` (clipped to [0, 1]).

    Models a hacker who knows every frequency "to within r percent" —
    tighter for rare items than the recipe's uniform-width model, which
    is the realistic shape for knowledge derived from large panels.
    """
    if relative_error < 0:
        raise BeliefError("relative_error must be non-negative")
    intervals = {}
    for item, frequency in frequencies.items():
        low = max(0.0, frequency * (1.0 - relative_error))
        high = min(1.0, frequency * (1.0 + relative_error))
        intervals[item] = Interval(low, high)
    return BeliefFunction(intervals)

"""The full owner report: everything the decision needs, in one document.

Chains the library's owner-facing pieces into a single markdown report:
database statistics, the Assess-Risk recipe, the per-item risk profile,
the Similarity-by-Sampling curve, and — when the recipe does not
disclose — a protection plan.  The CLI's ``--full-report`` writes it; it
is also the natural artifact to attach to a data-sharing agreement.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.profile import RiskProfile
from repro.beliefs.builders import uniform_width_belief
from repro.data.database import FrequencySource
from repro.data.frequency import FrequencyGroups
from repro.data.stats import describe
from repro.errors import DataError
from repro.graph.bipartite import space_from_frequencies
from repro.protect.planner import protect_to_tolerance
from repro.recipe.assess import RiskAssessment, assess_risk
from repro.recipe.similarity import similarity_by_sampling

__all__ = ["full_report"]


def _stats_section(source: FrequencySource) -> list[str]:
    stats = describe(source)
    return [
        "## Data",
        "",
        "```",
        stats.to_text(),
        "```",
        "",
    ]


def _assessment_section(assessment: RiskAssessment) -> list[str]:
    return [
        "## Assess-Risk recipe (Figure 8)",
        "",
        "```",
        assessment.summary(),
        "```",
        "",
    ]


def _similarity_section(
    source: FrequencySource,
    fractions: tuple[float, ...],
    rng: np.random.Generator,
    alpha_max: float | None,
) -> list[str]:
    lines = [
        "## Similarity-by-Sampling (Figure 13)",
        "",
        "| sample size | compliancy alpha | std |",
        "|---|---|---|",
    ]
    warning = None
    for point in similarity_by_sampling(source, fractions, n_samples=5, rng=rng):
        lines.append(
            f"| {point.fraction:.0%} | {point.alpha_mean:.3f} | {point.alpha_std:.3f} |"
        )
        if warning is None and alpha_max is not None and point.alpha_mean >= alpha_max:
            warning = point.fraction
    lines.append("")
    if warning is not None:
        lines.append(
            f"**Warning:** a {warning:.0%} sample of similar data already reaches "
            f"the tolerable compliancy bound alpha_max = {alpha_max:.2f}."
        )
        lines.append("")
    return lines


def full_report(
    source: FrequencySource,
    tolerance: float,
    sample_fractions: tuple[float, ...] = (0.1, 0.3, 0.5),
    protect_strategy: str | None = "quantile",
    top_k: int = 10,
    rng: np.random.Generator | None = None,
) -> str:
    """Render the complete markdown disclosure report for *source*.

    Parameters
    ----------
    source:
        The owner's database or frequency profile.
    tolerance:
        The recipe tolerance ``tau``.
    sample_fractions:
        Sample sizes for the similarity section.
    protect_strategy:
        Strategy for the protection plan appended when the recipe does
        not disclose (``None`` to skip the section).
    top_k:
        Rows in the exposed-items table.
    rng:
        Randomness for the alpha stage, sampling, and protection search.
    """
    rng = np.random.default_rng() if rng is None else rng
    sections: list[str] = [f"# Disclosure decision report (tau = {tolerance})", ""]
    sections += _stats_section(source)

    assessment = assess_risk(source, tolerance, rng=rng)
    sections += _assessment_section(assessment)

    frequencies = source.frequencies()
    delta = assessment.delta
    if delta is None:
        groups = FrequencyGroups(frequencies)
        delta = groups.median_gap() if len(groups) >= 2 else 0.0
    space = space_from_frequencies(uniform_width_belief(frequencies, delta), frequencies)
    profile = RiskProfile.from_space(space)
    sections += [profile.to_markdown(top_k=top_k), ""]

    sections += _similarity_section(source, sample_fractions, rng, assessment.alpha_max)

    if protect_strategy is not None and not assessment.disclose:
        sections.append("## Protection plan")
        sections.append("")
        try:
            plan = protect_to_tolerance(
                source, tolerance, strategy=protect_strategy, delta=assessment.delta
            )
            sections.append(plan.summary())
        except DataError as error:
            sections.append(f"No {protect_strategy} plan meets the tolerance: {error}")
        sections.append("")

    verdict = "**Disclose.**" if assessment.disclose else (
        "**Judgement call** — disclose only if a hacker holding correct "
        f"frequency ranges for {assessment.alpha_max:.0%} of items is implausible."
    )
    sections += ["## Verdict", "", verdict, ""]
    return "\n".join(sections)

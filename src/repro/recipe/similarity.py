"""Similarity-by-Sampling (paper, Section 7.4, Figures 12 and 13).

The owner gauges how much compliancy a hacker holding "similar data"
would achieve by simulating similarity with samples of the owner's own
database: for each sample size ``p``, draw ``D_p``, build the belief
function ``[f_hat - delta'_med, f_hat + delta'_med]`` from the sampled
frequencies and the *sampled* median gap, and measure its degree of
compliancy against the true frequencies.  The resulting curve (alpha vs
sample size) is read together with the recipe's ``alpha_max``: if even a
small sample yields alpha above ``alpha_max``, disclosure is risky.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.beliefs.builders import from_sample_belief
from repro.data.database import FrequencyProfile, FrequencySource, TransactionDatabase
from repro.data.sampling import sample_profile, sample_transactions
from repro.errors import BeliefError, RecipeError

__all__ = ["SimilarityPoint", "similarity_by_sampling"]


@dataclass(frozen=True)
class SimilarityPoint:
    """Average compliancy achieved by belief functions from one sample size.

    Attributes
    ----------
    fraction:
        The sample size ``p`` as a fraction of the database.
    alpha_mean, alpha_std:
        Mean and standard deviation of the degree of compliancy over the
        repeated samples.
    delta_mean:
        Mean sampled gap width ``delta'`` used for the intervals.
    """

    fraction: float
    alpha_mean: float
    alpha_std: float
    delta_mean: float


def _draw_sample(
    source: FrequencySource, fraction: float, rng: np.random.Generator
) -> FrequencySource:
    if isinstance(source, TransactionDatabase):
        return sample_transactions(source, fraction, rng=rng)
    if isinstance(source, FrequencyProfile):
        return sample_profile(source, fraction, rng=rng)
    raise RecipeError(f"cannot sample from {type(source).__name__}")


def similarity_by_sampling(
    source: FrequencySource,
    fractions: Sequence[float],
    n_samples: int = 10,
    rng: np.random.Generator | None = None,
    use_mean_gap: bool = False,
) -> list[SimilarityPoint]:
    """Run the Similarity-by-Sampling procedure (Figure 13).

    Parameters
    ----------
    source:
        The owner's database or frequency profile.
    fractions:
        The sample sizes ``p`` to evaluate (fractions in ``(0, 1]``).
    n_samples:
        Samples averaged per size (the paper uses 10).
    rng:
        Randomness source.
    use_mean_gap:
        Use the sampled *mean* gap instead of the sampled median gap as
        the interval width — the paper's cautionary variant, which
        reports a misleading compliancy of ~0.99 across all sizes.
    """
    if n_samples <= 0:
        raise RecipeError(f"n_samples must be positive, got {n_samples}")
    if not isinstance(source, (TransactionDatabase, FrequencyProfile)):
        raise RecipeError(
            f"cannot sample from {type(source).__name__}; pass a "
            "TransactionDatabase or FrequencyProfile"
        )
    rng = np.random.default_rng() if rng is None else rng
    true_frequencies = source.frequencies()
    points: list[SimilarityPoint] = []
    for fraction in fractions:
        alphas: list[float] = []
        deltas: list[float] = []
        for _ in range(n_samples):
            sample = _draw_sample(source, fraction, rng)
            try:
                belief = from_sample_belief(sample, use_mean_gap=use_mean_gap)
            except BeliefError:
                # A degenerate sample (single frequency group) believes
                # every item sits at one frequency; zero-width intervals.
                belief = from_sample_belief(sample, delta=0.0)
            alphas.append(belief.compliancy(true_frequencies))
            widths = [belief[item].width / 2 for item in belief]
            deltas.append(float(np.mean(widths)))
        alphas_arr = np.asarray(alphas)
        points.append(
            SimilarityPoint(
                fraction=float(fraction),
                alpha_mean=float(alphas_arr.mean()),
                alpha_std=float(alphas_arr.std(ddof=1)) if len(alphas) > 1 else 0.0,
                delta_mean=float(np.mean(deltas)),
            )
        )
    return points

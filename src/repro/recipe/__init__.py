"""The data owner's risk-assessment recipe (paper, Sections 6 and 7.4).

* :func:`~repro.recipe.assess.assess_risk` — the Assess-Risk algorithm of
  Figure 8: point-valued check, compliant-interval O-estimate with the
  median-gap width, and the alpha_max binary search.
* :func:`~repro.recipe.similarity.similarity_by_sampling` — the
  Similarity-by-Sampling procedure of Figure 13, mapping sample size to
  the degree of compliancy a hacker with "similar data" would achieve.
"""

from repro.recipe.assess import Decision, RiskAssessment, assess_risk
from repro.recipe.report import full_report
from repro.recipe.similarity import SimilarityPoint, similarity_by_sampling

__all__ = [
    "Decision",
    "RiskAssessment",
    "assess_risk",
    "SimilarityPoint",
    "similarity_by_sampling",
    "full_report",
]

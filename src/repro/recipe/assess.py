"""Assess-Risk — the suggested recipe of Figure 8.

Given the owner's database (or its frequency profile) and a *degree of
tolerance* ``tau`` (the fraction of items the owner can afford to see
cracked), the recipe proceeds through three increasingly realistic hacker
models:

1. **Point-valued** (worst case): expected cracks = ``g``, the number of
   frequency groups (Lemma 3).  If already within tolerance, disclose.
2. **Compliant interval** with half-width ``delta_med`` (the median gap
   between frequency groups): compute the O-estimate.  If within
   tolerance, disclose.
3. **alpha-compliant**: find ``alpha_max``, the largest degree of
   compliancy keeping the expected cracks within tolerance.  The owner
   then judges whether a hacker is plausibly that well-informed —
   Similarity-by-Sampling (Figure 13) helps anchor that judgement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.beliefs.builders import uniform_width_belief
from repro.budget import ComputeBudget, PartialEstimate
from repro.core.alpha import alpha_max as compute_alpha_max
from repro.core.oestimate import OEstimateResult, o_estimate
from repro.data.database import FrequencySource
from repro.data.frequency import FrequencyGroups
from repro.errors import BudgetExceeded, GraphError, InfeasibleMatchingError, RecipeError
from repro.graph.bipartite import FrequencyMappingSpace, space_from_frequencies

__all__ = ["AttackSummary", "Decision", "RiskAssessment", "assess_risk"]

#: The interval rung upgrades from the O-estimate to the exact engine
#: when the plan's cost hint stays below this (see
#: :func:`repro.graph.exact.exact_strategy`); pricier plans keep the
#: historical O-estimate behaviour.
EXACT_COST_BUDGET = 5e7


def _try_exact_interval(
    space: FrequencyMappingSpace,
    interest: frozenset | None,
    budget: ComputeBudget | None = None,
) -> tuple[float | None, str | None]:
    """Exact interval-rung expected cracks, or (None, None) to fall back."""
    from repro.graph.exact import crack_marginals_exact, exact_strategy
    from repro.graph.intervaldp import DEFAULT_BUDGET, DPBudget

    plan = exact_strategy(space)
    if not plan.matchable:
        return 0.0, plan.strategy
    if not plan.feasible or plan.cost_hint > EXACT_COST_BUDGET:
        return None, None
    dp_budget = (
        DEFAULT_BUDGET
        if budget is None
        else DPBudget(
            max_states=DEFAULT_BUDGET.max_states,
            max_ops=DEFAULT_BUDGET.max_ops,
            compute=budget,
        )
    )
    try:
        marginals = crack_marginals_exact(space, budget=dp_budget)
    except BudgetExceeded:
        # Deadline hit inside the exact refinement: it is an optional
        # enrichment of the interval rung, so degrade to the O-estimate
        # alone rather than failing the whole assessment.
        return None, None
    except (GraphError, InfeasibleMatchingError):
        return None, None
    if interest is None:
        return float(marginals.sum()), plan.strategy
    indices = [space.item_index(x) for x in interest]
    return float(marginals[indices].sum()), plan.strategy


@dataclass(frozen=True)
class AttackSummary:
    """What the attacker workbench certifies about the interval rung.

    Produced by the solver's exact edge classification
    (:mod:`repro.graph.refine`): ``forced_pairs`` edges are in *every*
    consistent mapping, of which ``certified_cracks`` coincide with the
    ground truth — a hacker with the interval belief identifies that
    many items with certainty, no matter which consistent mapping they
    pick.  The reduction fields record how much the solver shrinks the
    exact engine's problem (see ``docs/attack.md``).
    """

    forced_pairs: int
    certified_cracks: int
    forbidden_edges: int
    largest_block_before: int
    largest_block_after: int


#: Edge guard for the attack summary: classification needs an explicit
#: adjacency, and the summary is an enrichment, never worth a blow-up.
ATTACK_SUMMARY_MAX_EDGES = 2_000_000


def _attack_summary(
    space: FrequencyMappingSpace,
    budget: ComputeBudget | None = None,
) -> AttackSummary | None:
    """Solver-certified attack facts for the interval rung, or ``None``.

    Skipped (returning ``None``) when the graph is too large for an
    explicit adjacency or the compute budget runs out — like the exact
    enrichment, the summary degrades to absent rather than failing the
    assessment.
    """
    from repro.graph.blocks import decompose
    from repro.graph.refine import classify_edges, reduced_blocks

    try:
        classification = classify_edges(
            space, budget=budget, max_edges=ATTACK_SUMMARY_MAX_EDGES
        )
    except BudgetExceeded:
        return None
    except GraphError:
        return None
    decomposition = decompose(space)
    before = decomposition.largest_block
    if classification.infeasible:
        return AttackSummary(
            forced_pairs=0,
            certified_cracks=0,
            forbidden_edges=classification.n_forbidden,
            largest_block_before=before,
            largest_block_after=0,
        )
    after = max((block.n for block in reduced_blocks(classification)), default=0)
    return AttackSummary(
        forced_pairs=classification.n_forced,
        certified_cracks=classification.forced_cracks(space),
        forbidden_edges=classification.n_forbidden,
        largest_block_before=before,
        largest_block_after=after,
    )


class Decision(enum.Enum):
    """The recipe's outcome."""

    DISCLOSE_POINT_VALUED = "disclose: safe even against exact frequency knowledge"
    DISCLOSE_INTERVAL = "disclose: safe against ball-park (median-gap) frequency knowledge"
    ALPHA_BOUND = "judgement call: safe only below the reported alpha_max compliancy"
    INCONCLUSIVE = "inconclusive: the compute budget ran out before a decision rung settled"


@dataclass(frozen=True)
class RiskAssessment:
    """Everything the recipe computed on the way to its decision.

    Attributes
    ----------
    decision:
        Which rung of the recipe settled the matter.
    tolerance:
        The owner's ``tau``.
    n_items:
        Domain size.
    g:
        Number of frequency groups — the point-valued expected cracks
        (Lemma 3).
    delta:
        The interval half-width used (``delta_med`` unless overridden).
    interval_estimate:
        The fully compliant interval O-estimate (step 6), ``None`` when
        the recipe stopped at step 2.
    alpha_max:
        Largest tolerable degree of compliancy (step 9), ``None`` unless
        the recipe reached step 8.
    interest:
        The owner's subset ``I_1`` of items of interest (Lemmas 2 and 4),
        ``None`` when every item counted.
    runs:
        Averaging runs used by the alpha-compliant stage, ``None`` when
        the recipe stopped before step 8.
    exact_cracks:
        Exact expected cracks for the interval-belief space, when the
        structure-exploiting engine (:mod:`repro.graph.exact`) found a
        cheap plan; ``None`` when exact was skipped or infeasible.  The
        decision itself stays on the paper's Figure-8 O-estimate rule;
        the exact value quantifies the O-estimate's known downward bias
        (see EXPERIMENTS.md) so owners can judge the margin.
    exact_strategy:
        Which exact engine ran (``"interval-dp"``, ``"block-ryser"``,
        ...), ``None`` when exact was skipped.
    partial_estimate:
        When the compute budget ran out mid-recipe, the best bounded
        estimate reached before exhaustion (with its standard error and
        ladder rung); ``None`` for a complete assessment.
    attack:
        The attacker workbench's certified facts for the interval-rung
        space (forced pairs, solver-certified minimum cracks, and the
        solver reduction); ``None`` when the recipe stopped at the
        point-valued rung or the summary was skipped.
    """

    decision: Decision
    tolerance: float
    n_items: int
    g: int
    delta: float | None = None
    interval_estimate: OEstimateResult | None = None
    alpha_max: float | None = None
    interest: frozenset | None = None
    runs: int | None = None
    exact_cracks: float | None = None
    exact_strategy: str | None = None
    partial_estimate: PartialEstimate | None = None
    attack: AttackSummary | None = None

    @property
    def disclose(self) -> bool:
        """True when the recipe reached an unconditional disclose."""
        return self.decision in (
            Decision.DISCLOSE_POINT_VALUED,
            Decision.DISCLOSE_INTERVAL,
        )

    @property
    def partial(self) -> bool:
        """True when the budget expired before the recipe could finish."""
        return self.decision is Decision.INCONCLUSIVE

    def summary(self) -> str:
        """A human-readable account of the assessment."""
        lines = [
            f"domain: {self.n_items} items, tolerance tau = {self.tolerance}",
            f"point-valued expected cracks g = {self.g} "
            f"({self.g / self.n_items:.4f} of domain)",
        ]
        if self.interest is not None:
            lines.append(f"interest subset: {len(self.interest)} items")
        if self.delta is not None:
            lines.append(f"interval half-width delta_med = {self.delta:.6g}")
        if self.interval_estimate is not None:
            lines.append(
                f"compliant-interval O-estimate = {self.interval_estimate.value:.2f} "
                f"({self.interval_estimate.fraction:.4f} of domain)"
            )
        if self.exact_cracks is not None:
            lines.append(
                f"exact expected cracks = {self.exact_cracks:.4f} "
                f"(strategy: {self.exact_strategy})"
            )
        if self.attack is not None:
            lines.append(
                f"solver-certified cracks = {self.attack.certified_cracks} "
                f"({self.attack.forced_pairs} forced pairs, "
                f"{self.attack.forbidden_edges} forbidden edges)"
            )
        if self.alpha_max is not None:
            lines.append(f"alpha_max = {self.alpha_max:.3f}")
        if self.partial_estimate is not None:
            pe = self.partial_estimate
            lines.append(
                f"partial estimate = {pe.value:.2f} +/- {pe.std_error:.2f} "
                f"(rung: {pe.rung}, budget: {pe.reason})"
            )
        lines.append(f"decision: {self.decision.value}")
        return "\n".join(lines)


def assess_risk(
    source: FrequencySource,
    tolerance: float,
    delta: float | None = None,
    runs: int = 5,
    rng: np.random.Generator | None = None,
    interest: "Iterable | None" = None,
    budget: ComputeBudget | None = None,
) -> RiskAssessment:
    """Run the Assess-Risk recipe (Figure 8) on a database or profile.

    Parameters
    ----------
    source:
        The owner's data — a :class:`TransactionDatabase` or
        :class:`FrequencyProfile`.
    tolerance:
        ``tau`` — the fraction of items the owner can tolerate cracked.
    delta:
        Interval half-width override; defaults to the median frequency
        gap ``delta_med`` (step 4).
    runs:
        Averaging runs for the alpha-compliant stage (Section 6.2 uses 5).
    rng:
        Randomness for the alpha-compliant subsets.
    interest:
        Optional subset ``I_1`` of items the owner actually cares about
        (Lemmas 2 and 4 — e.g. the frequent items or those with the
        highest margin).  Every stage then counts expected cracks among
        these items only, against a budget of ``tolerance * |I_1|``.
    budget:
        Optional :class:`~repro.budget.ComputeBudget` polled at every
        stage boundary and threaded into the exact engine.  When it runs
        out *after* a decision rung has produced a bounded estimate, the
        recipe returns an ``INCONCLUSIVE`` assessment carrying a
        :class:`~repro.budget.PartialEstimate` instead of raising; when
        nothing is ready yet, :class:`~repro.errors.BudgetExceeded`
        propagates with ``partial=None``.
    """
    if not 0.0 <= tolerance <= 1.0:
        raise RecipeError(f"tolerance must be in [0, 1], got {tolerance}")
    frequencies = source.frequencies()
    groups = FrequencyGroups(frequencies)
    n = len(frequencies)
    g = len(groups)
    if interest is not None:
        interest = frozenset(interest)
        if not interest:
            raise RecipeError("the interest subset must be non-empty")
    basis = n if interest is None else len(interest)

    # Steps 1-2: the point-valued worst case (Lemma 3, or Lemma 4 for a
    # subset of interest).
    if interest is None:
        point_valued = float(g)
    else:
        from repro.core.exact import expected_cracks_point_valued_subset

        point_valued = expected_cracks_point_valued_subset(groups, interest)
    if point_valued <= tolerance * basis:
        return RiskAssessment(
            decision=Decision.DISCLOSE_POINT_VALUED,
            tolerance=tolerance,
            n_items=n,
            g=g,
            interest=interest,
        )

    # Steps 3-5: compliant interval belief with the median-gap width.
    # Nothing is bounded yet, so exhaustion here propagates partial-less.
    if budget is not None:
        budget.poll()
    if delta is None:
        if g < 2:
            raise RecipeError(
                "a single frequency group has no gaps; pass delta explicitly"
            )
        delta = groups.median_gap()
    belief = uniform_width_belief(frequencies, delta)
    space = space_from_frequencies(belief, frequencies)

    # Steps 6-7: the fully compliant O-estimate decides (Figure 8); the
    # structure-exploiting engine additionally reports the *exact*
    # expected cracks whenever it has a cheap plan (interval beliefs
    # usually do — see docs/exact.md), exposing the O-estimate's bias.
    estimate = o_estimate(space, interest=interest)
    exact_cracks, exact_strategy_name = _try_exact_interval(space, interest, budget)
    attack = _attack_summary(space, budget)
    if estimate.value <= tolerance * basis:
        return RiskAssessment(
            decision=Decision.DISCLOSE_INTERVAL,
            tolerance=tolerance,
            n_items=n,
            g=g,
            delta=delta,
            interval_estimate=estimate,
            interest=interest,
            exact_cracks=exact_cracks,
            exact_strategy=exact_strategy_name,
            attack=attack,
        )

    # Steps 8-9: search for the largest tolerable degree of compliancy.
    # The interval rung's O-estimate is a bounded answer, so exhaustion
    # from here on degrades to an INCONCLUSIVE partial assessment.
    try:
        if budget is not None:
            budget.poll()
        alpha = compute_alpha_max(space, tolerance, runs=runs, rng=rng, interest=interest)
    except BudgetExceeded as exc:
        partial = exc.partial if isinstance(exc.partial, PartialEstimate) else (
            PartialEstimate(
                value=float(estimate.value),
                std_error=0.0,
                sweeps_completed=0,
                rung="o-estimate",
                reason=exc.reason,
            )
        )
        return RiskAssessment(
            decision=Decision.INCONCLUSIVE,
            tolerance=tolerance,
            n_items=n,
            g=g,
            delta=delta,
            interval_estimate=estimate,
            interest=interest,
            exact_cracks=exact_cracks,
            exact_strategy=exact_strategy_name,
            partial_estimate=partial,
            attack=attack,
        )
    return RiskAssessment(
        decision=Decision.ALPHA_BOUND,
        tolerance=tolerance,
        n_items=n,
        g=g,
        delta=delta,
        interval_estimate=estimate,
        alpha_max=alpha,
        interest=interest,
        runs=runs,
        exact_cracks=exact_cracks,
        exact_strategy=exact_strategy_name,
        attack=attack,
    )

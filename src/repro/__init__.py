"""repro — disclosure-risk analysis for anonymized transaction data.

A faithful, from-scratch reproduction of Lakshmanan, Ng and Ramesh,
*"To Do or Not To Do: The Dilemma of Disclosing Anonymized Data"*
(SIGMOD 2005): belief functions modelling a hacker's partial knowledge,
the bipartite space of consistent crack mappings, exact expected-crack
formulas for ignorant / point-valued / chain belief functions, the
O-estimate heuristic, the swap-chain simulator, and the owner-facing
Assess-Risk recipe with Similarity-by-Sampling.

Quickstart::

    from repro import TransactionDatabase, assess_risk

    db = TransactionDatabase([[1, 2], [2, 3], [1, 2, 3], [2, 4]])
    report = assess_risk(db, tolerance=0.5)
    print(report.summary())
"""

from repro.analysis import RiskProfile, delta_sensitivity, tolerance_curve
from repro.attack import best_guess_mapping, candidate_ranking, evaluate_attack
from repro.anonymize import AnonymizationMapping, AnonymizedDatabase, anonymize
from repro.beliefs import (
    BeliefFunction,
    Interval,
    alpha_compliant_belief,
    from_sample_belief,
    ignorant_belief,
    interval_belief,
    point_belief,
    uniform_width_belief,
)
from repro.core import (
    ChainSpec,
    OEstimateResult,
    alpha_curve,
    alpha_max,
    chain_expected_cracks,
    chain_o_estimate,
    expected_cracks_ignorant,
    expected_cracks_point_valued,
    o_estimate,
    o_estimate_from_frequencies,
)
from repro.data import (
    FrequencyGroups,
    FrequencyProfile,
    TransactionDatabase,
    read_fimi,
    sample_transactions,
    write_fimi,
)
from repro.datasets import BENCHMARK_NAMES, load_benchmark, load_benchmark_database
from repro.errors import ReproError
from repro.graph import (
    ExplicitMappingSpace,
    FrequencyMappingSpace,
    expected_cracks_direct,
    space_from_anonymized,
    space_from_frequencies,
)
from repro.mining import apriori, eclat, fp_growth, generate_rules
from repro.protect import protect_to_tolerance
from repro.recipe import RiskAssessment, assess_risk, similarity_by_sampling
from repro.simulation import simulate_expected_cracks

__version__ = "1.0.0"

__all__ = [
    # data
    "TransactionDatabase",
    "FrequencyProfile",
    "FrequencyGroups",
    "read_fimi",
    "write_fimi",
    "sample_transactions",
    # anonymization
    "AnonymizationMapping",
    "AnonymizedDatabase",
    "anonymize",
    # beliefs
    "Interval",
    "BeliefFunction",
    "ignorant_belief",
    "point_belief",
    "interval_belief",
    "uniform_width_belief",
    "alpha_compliant_belief",
    "from_sample_belief",
    # graph
    "FrequencyMappingSpace",
    "ExplicitMappingSpace",
    "space_from_frequencies",
    "space_from_anonymized",
    "expected_cracks_direct",
    # core
    "expected_cracks_ignorant",
    "expected_cracks_point_valued",
    "ChainSpec",
    "chain_expected_cracks",
    "chain_o_estimate",
    "OEstimateResult",
    "o_estimate",
    "o_estimate_from_frequencies",
    "alpha_curve",
    "alpha_max",
    # simulation
    "simulate_expected_cracks",
    # recipe
    "assess_risk",
    "RiskAssessment",
    "similarity_by_sampling",
    # datasets
    "BENCHMARK_NAMES",
    "load_benchmark",
    "load_benchmark_database",
    # mining
    "apriori",
    "fp_growth",
    "eclat",
    "generate_rules",
    # analysis and protection
    "RiskProfile",
    "tolerance_curve",
    "delta_sensitivity",
    "protect_to_tolerance",
    # attack workbench
    "best_guess_mapping",
    "candidate_ranking",
    "evaluate_attack",
    # errors
    "ReproError",
    "__version__",
]

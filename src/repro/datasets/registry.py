"""Loading calibrated benchmarks by name, reproducibly."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import FrequencyProfile, TransactionDatabase
from repro.datasets.benchmarks import BENCHMARK_SPECS, BenchmarkSpec, generate_benchmark_profile
from repro.datasets.synthetic import database_from_profile
from repro.errors import DataError

__all__ = ["BENCHMARK_NAMES", "CalibratedDataset", "load_benchmark", "load_benchmark_database"]

BENCHMARK_NAMES: tuple[str, ...] = tuple(sorted(BENCHMARK_SPECS))

_DEFAULT_SEED = 20050614  # the paper's presentation date at SIGMOD 2005


@dataclass(frozen=True)
class CalibratedDataset:
    """A generated benchmark profile together with its target spec."""

    spec: BenchmarkSpec
    profile: FrequencyProfile

    @property
    def name(self) -> str:
        return self.spec.name


def _resolve_spec(name: str) -> BenchmarkSpec:
    try:
        return BENCHMARK_SPECS[name.lower()]
    except KeyError:
        known = ", ".join(BENCHMARK_NAMES)
        raise DataError(f"unknown benchmark {name!r}; known: {known}") from None


def load_benchmark(name: str, seed: int | None = _DEFAULT_SEED) -> CalibratedDataset:
    """Generate the calibrated stand-in for a Figure 9 benchmark.

    Parameters
    ----------
    name:
        One of :data:`BENCHMARK_NAMES` (case-insensitive).
    seed:
        Generation seed; the default makes repeated loads identical.
        Pass ``None`` for a fresh random instance.
    """
    spec = _resolve_spec(name)
    rng = np.random.default_rng(seed)
    return CalibratedDataset(spec=spec, profile=generate_benchmark_profile(spec, rng))


def load_benchmark_database(
    name: str,
    seed: int | None = _DEFAULT_SEED,
    max_occurrences: int = 50_000_000,
) -> TransactionDatabase:
    """Materialize a benchmark as an actual transaction database.

    Only needed for transaction-level work (mining, transaction
    sampling); the profile from :func:`load_benchmark` is enough for all
    frequency-based analyses and is far cheaper.
    """
    dataset = load_benchmark(name, seed=seed)
    rng = np.random.default_rng(None if seed is None else seed + 1)
    return database_from_profile(dataset.profile, rng=rng, max_occurrences=max_occurrences)

"""IBM Quest-style synthetic transaction generator (Agrawal-Srikant 1994).

The classic generator behind the T10I4D100K-family datasets used across
the frequent-set literature (including several FIMI benchmarks the paper
draws on).  Transactions are built from a pool of correlated *maximal
potentially large itemsets*:

1. a pool of ``n_patterns`` itemsets is drawn, with sizes Poisson-like
   around ``avg_pattern_size`` and items biased toward earlier items
   (and partially inherited from the previous pattern for correlation);
2. each transaction picks patterns (weighted by pattern probability)
   until its Poisson-like target size is filled, corrupting each pattern
   by dropping a random suffix with per-pattern corruption levels.

This provides a transaction-level workload with realistic itemset
structure, complementing the frequency-calibrated Figure 9 stand-ins
(which match marginal statistics but draw occurrences independently).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import TransactionDatabase
from repro.errors import DataError

__all__ = ["QuestParameters", "quest_database"]


@dataclass(frozen=True)
class QuestParameters:
    """Knobs of the Quest generator, named after the original paper.

    ``T`` = avg_transaction_size, ``I`` = avg_pattern_size,
    ``D`` = n_transactions, ``N`` = n_items, ``L`` = n_patterns.
    """

    n_items: int = 1000
    n_transactions: int = 10_000
    avg_transaction_size: float = 10.0
    avg_pattern_size: float = 4.0
    n_patterns: int = 2000
    correlation: float = 0.5
    corruption_mean: float = 0.5

    def __post_init__(self) -> None:
        if self.n_items <= 0 or self.n_transactions <= 0 or self.n_patterns <= 0:
            raise DataError("n_items, n_transactions and n_patterns must be positive")
        if self.avg_transaction_size < 1 or self.avg_pattern_size < 1:
            raise DataError("average sizes must be at least 1")
        if not 0.0 <= self.correlation <= 1.0:
            raise DataError("correlation must be in [0, 1]")
        if not 0.0 <= self.corruption_mean < 1.0:
            raise DataError("corruption_mean must be in [0, 1)")


def _pattern_pool(params: QuestParameters, rng: np.random.Generator) -> tuple[list[tuple], np.ndarray, np.ndarray]:
    """Draw the pool of potentially large itemsets with weights."""
    patterns: list[tuple] = []
    previous: tuple = ()
    # Exponentially-biased item popularity, as in the original generator.
    item_weights = rng.exponential(size=params.n_items)
    item_weights /= item_weights.sum()
    for _ in range(params.n_patterns):
        size = max(1, int(rng.poisson(params.avg_pattern_size - 1) + 1))
        size = min(size, params.n_items)
        inherited: list = []
        if previous and params.correlation > 0:
            n_inherit = min(len(previous), int(round(params.correlation * size)))
            if n_inherit:
                picks = rng.choice(len(previous), size=n_inherit, replace=False)
                inherited = [previous[int(p)] for p in picks]
        fresh_needed = size - len(inherited)
        fresh: list = []
        if fresh_needed > 0:
            candidates = rng.choice(
                params.n_items, size=fresh_needed * 3 + 8, replace=True, p=item_weights
            )
            seen = set(inherited)
            for candidate in candidates:
                item = int(candidate) + 1
                if item not in seen:
                    fresh.append(item)
                    seen.add(item)
                if len(fresh) == fresh_needed:
                    break
        pattern = tuple(dict.fromkeys(list(inherited) + fresh))
        patterns.append(pattern)
        previous = pattern

    weights = rng.exponential(size=params.n_patterns)
    weights /= weights.sum()
    corruption = np.clip(
        rng.normal(params.corruption_mean, 0.1, size=params.n_patterns), 0.0, 0.95
    )
    return patterns, weights, corruption


def quest_database(
    params: QuestParameters | None = None,
    rng: np.random.Generator | None = None,
) -> TransactionDatabase:
    """Generate a Quest-style database.

    Examples
    --------
    >>> db = quest_database(QuestParameters(n_items=50, n_transactions=100,
    ...                                     avg_transaction_size=5,
    ...                                     avg_pattern_size=2, n_patterns=20),
    ...                     rng=np.random.default_rng(0))
    >>> db.n_transactions
    100
    """
    params = QuestParameters() if params is None else params
    rng = np.random.default_rng() if rng is None else rng
    patterns, weights, corruption = _pattern_pool(params, rng)

    transactions: list[set] = []
    for _ in range(params.n_transactions):
        target = max(1, int(rng.poisson(params.avg_transaction_size)))
        basket: set = set()
        attempts = 0
        while len(basket) < target and attempts < 5 * target + 10:
            attempts += 1
            index = int(rng.choice(params.n_patterns, p=weights))
            pattern = patterns[index]
            keep = len(pattern)
            # Corrupt: repeatedly drop items while a biased coin says so.
            while keep > 1 and rng.random() < corruption[index]:
                keep -= 1
            basket.update(pattern[:keep])
        if not basket:
            basket = {int(rng.integers(params.n_items)) + 1}
        transactions.append(basket)
    return TransactionDatabase(transactions, domain=range(1, params.n_items + 1))

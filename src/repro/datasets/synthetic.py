"""Generic synthetic transaction-data generators.

These are the low-level building blocks: the calibrated Figure 9
generators in :mod:`repro.datasets.benchmarks` compose them, and tests
use them directly for randomized workloads.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.database import FrequencyProfile, TransactionDatabase
from repro.errors import DataError

__all__ = [
    "profile_from_group_counts",
    "database_from_profile",
    "random_database",
    "zipf_profile",
]


def profile_from_group_counts(
    group_counts: Sequence[int],
    group_sizes: Sequence[int],
    n_transactions: int,
    rng: np.random.Generator | None = None,
    shuffle_item_ids: bool = True,
) -> FrequencyProfile:
    """Build a profile with an exact frequency-group structure.

    Parameters
    ----------
    group_counts:
        Distinct per-group transaction counts (one per frequency group).
    group_sizes:
        Number of items in each group, aligned with *group_counts*.
    n_transactions:
        Total transactions; every count must be in ``[1, n_transactions]``.
    rng, shuffle_item_ids:
        When shuffling, item ids ``1..n`` are assigned to (group, slot)
        positions in random order, so ids carry no frequency information
        — like a well-anonymized catalogue.
    """
    if len(group_counts) != len(group_sizes):
        raise DataError("group_counts and group_sizes must align")
    if len(set(group_counts)) != len(group_counts):
        raise DataError("group counts must be distinct (they define the groups)")
    if any(size <= 0 for size in group_sizes):
        raise DataError("group sizes must be positive")
    n_items = int(sum(group_sizes))
    ids = np.arange(1, n_items + 1)
    if shuffle_item_ids:
        rng = np.random.default_rng() if rng is None else rng
        ids = rng.permutation(ids)
    counts: dict[int, int] = {}
    position = 0
    for count, size in zip(group_counts, group_sizes):
        if not 1 <= count <= n_transactions:
            raise DataError(f"group count {count} outside [1, {n_transactions}]")
        for _ in range(size):
            counts[int(ids[position])] = int(count)
            position += 1
    return FrequencyProfile(counts, n_transactions)


def database_from_profile(
    profile: FrequencyProfile,
    rng: np.random.Generator | None = None,
    max_occurrences: int = 50_000_000,
) -> TransactionDatabase:
    """Materialize transactions realizing *profile*'s counts exactly.

    Each item's occurrences are placed into distinct uniformly random
    transactions.  Transactions that end up empty are then repaired by
    moving one occurrence of some item from a transaction holding at
    least two items — a move that preserves every item count.  Raises
    :class:`~repro.errors.DataError` when repair is impossible (fewer
    total occurrences than transactions).
    """
    rng = np.random.default_rng() if rng is None else rng
    m = profile.n_transactions
    total = sum(profile.counts.values())
    if total > max_occurrences:
        raise DataError(
            f"profile would materialize {total} item occurrences "
            f"(> {max_occurrences}); work with the FrequencyProfile instead"
        )
    if total < m:
        raise DataError(
            f"{total} item occurrences cannot fill {m} non-empty transactions"
        )
    transactions: list[set] = [set() for _ in range(m)]
    for item, count in profile.counts.items():
        if count == 0:
            continue
        for index in rng.choice(m, size=count, replace=False):
            transactions[int(index)].add(item)

    empties = [t for t in range(m) if not transactions[t]]
    if empties:
        # Donors only ever lose items, so a single forward pointer that
        # re-checks its current position suffices.
        donor_index = 0
        for empty_index in empties:
            while donor_index < m and len(transactions[donor_index]) < 2:
                donor_index += 1
            if donor_index == m:
                raise DataError("cannot repair empty transactions without changing counts")
            moved = next(iter(transactions[donor_index]))
            transactions[donor_index].discard(moved)
            transactions[empty_index].add(moved)
    return TransactionDatabase(transactions, domain=profile.domain)


def random_database(
    n_items: int,
    n_transactions: int,
    density: float = 0.3,
    rng: np.random.Generator | None = None,
) -> TransactionDatabase:
    """A Bernoulli(``density``) random database over items ``1..n_items``.

    Transactions that come out empty get one uniformly random item, so
    the model invariant (non-empty transactions) always holds.
    """
    if n_items <= 0 or n_transactions <= 0:
        raise DataError("n_items and n_transactions must be positive")
    if not 0.0 < density <= 1.0:
        raise DataError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng() if rng is None else rng
    membership = rng.random((n_transactions, n_items)) < density
    transactions = []
    for row in membership:
        items = set(int(i) + 1 for i in np.flatnonzero(row))
        if not items:
            items = {int(rng.integers(n_items)) + 1}
        transactions.append(items)
    return TransactionDatabase(transactions, domain=range(1, n_items + 1))


def zipf_profile(
    n_items: int,
    n_transactions: int,
    exponent: float = 1.1,
    max_frequency: float = 0.8,
    rng: np.random.Generator | None = None,
) -> FrequencyProfile:
    """A Zipf-like frequency profile (retail-style long tail).

    Item ranked ``r`` gets frequency ``max_frequency / r^exponent``
    (count at least 1).  Useful as a quick realistic workload when no
    calibrated benchmark fits.
    """
    if n_items <= 0 or n_transactions <= 0:
        raise DataError("n_items and n_transactions must be positive")
    rng = np.random.default_rng() if rng is None else rng
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    freqs = max_frequency / ranks**exponent
    counts = np.maximum(1, np.round(freqs * n_transactions)).astype(np.int64)
    ids = rng.permutation(np.arange(1, n_items + 1))
    return FrequencyProfile(
        {int(item): int(count) for item, count in zip(ids, counts)}, n_transactions
    )

"""Calibrated synthetic stand-ins for the paper's benchmarks (Figure 9).

Each :class:`BenchmarkSpec` records the statistics Figure 9 reports for a
UCI/FIMI dataset; :func:`generate_benchmark_profile` builds a frequency
profile that realizes them:

1. **Gaps** between successive frequency-group counts are constructed in
   integer count space (the minimum representable gap is one transaction,
   ``1/m``, which matches every dataset's reported minimum).  The lower
   half of the gaps is log-spaced between the minimum and the median; the
   upper half is log-spaced between the median and the maximum, with a
   warp exponent binary-searched so the total matches the reported *mean*
   gap.  This reproduces the paper's observation that the median gap sits
   close to the minimum while the mean is dragged up by a heavy tail.
2. **Gap placement** along the frequency axis is either sorted (small
   gaps at the dense bottom of the frequency range — the typical shape of
   dense UCI datasets) or shuffled, per dataset.
3. **Group sizes**: the reported number of singleton groups is placed at
   the top of the frequency range; the remaining items fill the bottom
   groups with power-law sizes (``size_skew``), reproducing the dense
   low-frequency clusters that give RETAIL its camouflage.

The statistics the paper's analyses consume (g, singleton count, gap
mean/median/min/max, and the induced O-estimates) land close to the
reported values; ``benchmarks/bench_fig9_dataset_stats.py`` prints the
achieved-vs-reported table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import FrequencyProfile
from repro.datasets.synthetic import profile_from_group_counts
from repro.errors import DataError

__all__ = ["BenchmarkSpec", "BENCHMARK_SPECS", "generate_benchmark_profile"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Figure 9 statistics for one benchmark dataset."""

    name: str
    n_items: int
    n_transactions: int
    n_groups: int
    n_singletons: int
    gap_mean: float
    gap_median: float
    gap_min: float
    gap_max: float
    size_skew: float = 1.2
    gap_order: str = "sorted"  # "sorted" or "shuffled"
    min_frequency: float = 0.0001

    def __post_init__(self) -> None:
        if self.n_singletons > self.n_groups:
            raise DataError("cannot have more singleton groups than groups")
        if self.n_groups > self.n_items:
            raise DataError("cannot have more groups than items")
        non_singleton_items = self.n_items - self.n_singletons
        non_singleton_groups = self.n_groups - self.n_singletons
        if non_singleton_groups == 0 and non_singleton_items != 0:
            raise DataError("items left over after filling all singleton groups")
        if non_singleton_groups and non_singleton_items < 2 * non_singleton_groups:
            raise DataError("non-singleton groups need at least two items each")
        if self.gap_order not in ("sorted", "shuffled"):
            raise DataError(f"unknown gap_order {self.gap_order!r}")


#: Figure 9 of the paper, verbatim (plus calibration knobs).
BENCHMARK_SPECS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec(
            name="connect",
            n_items=130,
            n_transactions=67557,
            n_groups=125,
            n_singletons=122,
            gap_mean=0.0081,
            gap_median=0.0029,
            gap_min=0.000015,
            gap_max=0.0519,
            gap_order="sorted",
        ),
        BenchmarkSpec(
            name="pumsb",
            n_items=2113,
            n_transactions=49046,
            n_groups=650,
            n_singletons=421,
            gap_mean=0.00154,
            gap_median=0.000041,
            gap_min=0.00002,
            gap_max=0.0536,
            gap_order="shuffled",
        ),
        BenchmarkSpec(
            name="accidents",
            n_items=469,
            n_transactions=340184,
            n_groups=310,
            n_singletons=286,
            gap_mean=0.00324,
            gap_median=0.000176,
            gap_min=0.0000029,
            gap_max=0.04966,
            gap_order="shuffled",
        ),
        BenchmarkSpec(
            name="retail",
            n_items=16470,
            n_transactions=88163,
            n_groups=582,
            n_singletons=218,
            gap_mean=0.00099,
            gap_median=0.0000113,
            gap_min=0.0000113,
            gap_max=0.30102,
            size_skew=1.35,
            gap_order="shuffled",
        ),
        BenchmarkSpec(
            name="mushroom",
            n_items=120,
            n_transactions=8124,
            n_groups=90,
            n_singletons=77,
            gap_mean=0.01124,
            gap_median=0.00394,
            gap_min=0.00049,
            gap_max=0.1477,
            gap_order="sorted",
        ),
        BenchmarkSpec(
            name="chess",
            n_items=75,
            n_transactions=3196,
            n_groups=73,
            n_singletons=71,
            gap_mean=0.01389,
            gap_median=0.00657,
            gap_min=0.00031,
            gap_max=0.0494,
            gap_order="sorted",
        ),
    ]
}


def _log_spaced_ints(low: int, high: int, count: int) -> np.ndarray:
    """*count* integers log-spaced in ``[low, high]`` (non-decreasing)."""
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    if count == 1:
        return np.array([high], dtype=np.int64)
    values = np.geomspace(max(low, 1), max(high, 1), count)
    return np.clip(np.round(values), low, high).astype(np.int64)


def _warped_upper_gaps(
    d_med: int, d_max: int, count: int, target_sum: float
) -> np.ndarray:
    """Upper-half gaps ``d_med * (d_max/d_med)^(u^t)``, warped to a sum.

    A larger warp exponent ``t`` pushes gaps toward the median and the
    sum down; ``t`` is binary-searched so the total matches *target_sum*
    as closely as the bounds allow.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    if d_max <= d_med:
        return np.full(count, d_med, dtype=np.int64)
    grid = np.linspace(1.0 / count, 1.0, count)
    log_ratio = np.log(d_max / d_med)

    def gaps_for(t: float) -> np.ndarray:
        return d_med * np.exp(log_ratio * grid**t)

    low_t, high_t = 1e-3, 60.0
    if gaps_for(low_t).sum() < target_sum:
        result = gaps_for(low_t)
    elif gaps_for(high_t).sum() > target_sum:
        result = gaps_for(high_t)
    else:
        for _ in range(80):
            mid = (low_t * high_t) ** 0.5
            if gaps_for(mid).sum() > target_sum:
                low_t = mid
            else:
                high_t = mid
        result = gaps_for((low_t * high_t) ** 0.5)
    gaps = np.clip(np.round(result), d_med, d_max).astype(np.int64)
    gaps[-1] = d_max  # the reported maximum gap is realized exactly
    return gaps


def _calibrated_count_gaps(spec: BenchmarkSpec, rng: np.random.Generator) -> np.ndarray:
    """Integer count gaps between successive group counts, in axis order."""
    m = spec.n_transactions
    h = spec.n_groups - 1
    if h <= 0:
        return np.empty(0, dtype=np.int64)
    d_min = max(1, round(spec.gap_min * m))
    d_med = max(d_min, round(spec.gap_median * m))
    d_max = max(d_med + 1, round(spec.gap_max * m))
    base_count = max(1, round(spec.min_frequency * m))
    target_total = min(spec.gap_mean * m * h, m - base_count - 1)

    h_lo = h // 2
    lower = _log_spaced_ints(d_min, d_med, h_lo)
    upper = _warped_upper_gaps(d_med, d_max, h - h_lo, target_total - lower.sum())
    gaps = np.concatenate([lower, upper])
    gaps.sort()
    if spec.gap_order == "shuffled":
        rng.shuffle(gaps)
    return gaps


def _group_sizes(spec: BenchmarkSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-group item counts in frequency-axis order (bottom to top)."""
    g, s = spec.n_groups, spec.n_singletons
    sizes = np.ones(g, dtype=np.int64)
    dense = g - s  # non-singleton groups occupy the bottom of the axis
    if dense:
        extra_items = spec.n_items - s - 2 * dense
        weights = np.arange(1, dense + 1, dtype=np.float64) ** (-spec.size_skew)
        weights /= weights.sum()
        allocation = np.floor(weights * extra_items).astype(np.int64)
        remainder = extra_items - int(allocation.sum())
        allocation[:remainder] += 1
        sizes[:dense] = 2 + allocation
    return sizes


def generate_benchmark_profile(
    spec: BenchmarkSpec, rng: np.random.Generator | None = None
) -> FrequencyProfile:
    """Generate a frequency profile realizing *spec*'s Figure 9 statistics."""
    rng = np.random.default_rng() if rng is None else rng
    m = spec.n_transactions
    gaps = _calibrated_count_gaps(spec, rng)
    base_count = max(1, round(spec.min_frequency * m))
    levels = base_count + np.concatenate(([0], np.cumsum(gaps)))
    if levels[-1] > m:
        # Rounding overshoot: compress the largest gaps until we fit.
        overshoot = int(levels[-1] - m)
        order = np.argsort(gaps)[::-1]
        for index in order:
            reducible = int(gaps[index]) - 1
            take = min(reducible, overshoot)
            gaps[index] -= take
            overshoot -= take
            if overshoot == 0:
                break
        levels = base_count + np.concatenate(([0], np.cumsum(gaps)))
    sizes = _group_sizes(spec, rng)
    return profile_from_group_counts(
        [int(c) for c in levels], [int(s) for s in sizes], m, rng=rng
    )

"""Benchmark datasets (paper, Section 7.1, Figure 9).

The paper evaluates on six UCI/FIMI benchmarks: CONNECT, PUMSB,
ACCIDENTS, RETAIL, MUSHROOM and CHESS.  The raw files are not
redistributable here, so this subpackage provides *calibrated synthetic
generators* that reproduce the statistics Figure 9 reports for each
dataset — domain size, transaction count, number of frequency groups,
number of singleton groups, and the mean/median/min/max gap between
successive group frequencies — which are exactly the quantities the
paper's analyses consume.  Real FIMI files can be substituted via
:func:`repro.data.read_fimi` at any time.
"""

from repro.datasets.benchmarks import BENCHMARK_SPECS, BenchmarkSpec, generate_benchmark_profile
from repro.datasets.quest import QuestParameters, quest_database
from repro.datasets.registry import BENCHMARK_NAMES, load_benchmark, load_benchmark_database
from repro.datasets.synthetic import (
    database_from_profile,
    profile_from_group_counts,
    random_database,
    zipf_profile,
)

__all__ = [
    "BenchmarkSpec",
    "BENCHMARK_SPECS",
    "BENCHMARK_NAMES",
    "generate_benchmark_profile",
    "load_benchmark",
    "load_benchmark_database",
    "profile_from_group_counts",
    "database_from_profile",
    "random_database",
    "zipf_profile",
    "QuestParameters",
    "quest_database",
]

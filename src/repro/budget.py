"""Cooperative compute budgets for anytime assessment.

Long-running compute paths (Gibbs sweeps, Ryser loops, interval DP)
periodically call :meth:`ComputeBudget.checkpoint`, a cheap counter
bump that only occasionally performs the real deadline/cancellation
check.  When the budget is exhausted the checkpoint raises
:class:`~repro.errors.BudgetExceeded`; callers that have a usable
intermediate result attach a :class:`PartialEstimate` so the caller one
level up can degrade gracefully instead of failing.

This module sits low in the layer graph (alongside ``repro.data``) so
that simulation and graph code can depend on it without importing the
service layer; :mod:`repro.service.budget` re-exports everything here
and adds the service-side conveniences (request factories wired to the
fault injector).

Design notes
------------

* Deadlines use an injectable monotonic ``clock`` so tests can drive
  exhaustion deterministically without sleeping.
* ``checkpoint(weight)`` is the hot-path call: it only runs the full
  check every ``poll_every`` accumulated units of work, keeping the
  overhead of budget polling to a couple of integer ops per loop
  iteration.  ``poll()`` forces the full check (used at stage
  boundaries).
* Sweep quotas (``max_sweeps``) are checked only at sweep boundaries
  via :meth:`sweep_tick`, which is what makes checkpoint/resume
  bit-identical: a quota interruption never leaves a sweep half done.
* The optional ``fault_hook`` fires with site ``"budget.poll"`` on
  every *full* check, giving the deterministic fault injector a handle
  on the polling path (e.g. a ``delay`` rule burns wall-clock so the
  next poll observes an expired deadline).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.errors import BudgetExceeded, FormatError

__all__ = ["ComputeBudget", "PartialEstimate", "BudgetExceeded"]


@dataclass(frozen=True)
class PartialEstimate:
    """The best estimate available when a budget ran out.

    Attributes
    ----------
    value:
        The point estimate accumulated so far (e.g. mean of collected
        MCMC samples).
    std_error:
        Standard error of *value*; always finite (``0.0`` when fewer
        than two samples were collected, so the uncertainty is simply
        unquantified rather than infinite).
    sweeps_completed:
        How many full sweeps/samples contributed to *value*.
    rung:
        The ladder rung that produced the estimate (``"exact"``,
        ``"chain"``, ``"mcmc-gibbs"``, ``"mcmc-swap"``).
    reason:
        Why the budget ran out (``"deadline"``, ``"sweeps"``,
        ``"cancelled"``).
    """

    value: float
    std_error: float
    sweeps_completed: int
    rung: str
    reason: str = "deadline"

    def __post_init__(self) -> None:
        if not (self.std_error == self.std_error and abs(self.std_error) != float("inf")):
            raise FormatError(
                f"PartialEstimate.std_error must be finite, got {self.std_error!r}"
            )
        if self.sweeps_completed < 0:
            raise FormatError(
                f"PartialEstimate.sweeps_completed must be >= 0, got {self.sweeps_completed}"
            )

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "partial_estimate",
            "value": float(self.value),
            "std_error": float(self.std_error),
            "sweeps_completed": int(self.sweeps_completed),
            "rung": self.rung,
            "reason": self.reason,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "PartialEstimate":
        if not isinstance(payload, Mapping) or payload.get("type") != "partial_estimate":
            raise FormatError(f"not a partial_estimate payload: {payload!r}")
        try:
            return cls(
                value=float(payload["value"]),
                std_error=float(payload["std_error"]),
                sweeps_completed=int(payload["sweeps_completed"]),
                rung=str(payload["rung"]),
                reason=str(payload.get("reason", "deadline")),
            )
        except KeyError as exc:
            raise FormatError(f"partial_estimate payload missing key {exc}") from exc


class ComputeBudget:
    """A wall-clock deadline + sweep quota + cancellation token.

    Parameters
    ----------
    seconds:
        Wall-clock budget; ``None`` means no deadline.  The countdown
        starts at construction time.
    max_sweeps:
        Quota on full sweeps (checked by :meth:`sweep_tick` only at
        sweep boundaries); ``None`` means unlimited.
    poll_every:
        How many units of work :meth:`checkpoint` accumulates between
        full deadline checks.  Smaller values react faster; larger
        values poll cheaper.
    clock:
        Monotonic clock, injectable for deterministic tests.
    fault_hook:
        Optional callable fired with ``"budget.poll"`` on every full
        check (the service layer wires this to its fault injector).
    """

    def __init__(
        self,
        seconds: Optional[float] = None,
        max_sweeps: Optional[int] = None,
        poll_every: int = 256,
        clock: Callable[[], float] = time.monotonic,
        fault_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise FormatError(f"budget seconds must be > 0, got {seconds}")
        if max_sweeps is not None and max_sweeps < 1:
            raise FormatError(f"budget max_sweeps must be >= 1, got {max_sweeps}")
        if poll_every < 1:
            raise FormatError(f"budget poll_every must be >= 1, got {poll_every}")
        self._clock = clock
        self._deadline: Optional[float] = (
            None if seconds is None else clock() + seconds
        )
        self.max_sweeps = max_sweeps
        self.poll_every = poll_every
        self._fault_hook = fault_hook
        self._cancelled = threading.Event()
        self._pending = 0
        self._sweeps = 0
        self.polls = 0

    # -- state ------------------------------------------------------------

    @property
    def sweeps_completed(self) -> int:
        """How many sweeps :meth:`sweep_tick` has recorded."""
        return self._sweeps

    def cancel(self) -> None:
        """Request cooperative cancellation (thread-safe)."""
        self._cancelled.set()

    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline, or ``None`` when unbounded."""
        if self._deadline is None:
            return None
        return self._deadline - self._clock()

    def expired(self) -> bool:
        """Whether the deadline has passed (never True when unbounded)."""
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0

    # -- polling ----------------------------------------------------------

    def checkpoint(self, weight: int = 1) -> None:
        """Cheap hot-loop poll: full check every ``poll_every`` units."""
        self._pending += weight
        if self._pending >= self.poll_every:
            self._pending = 0
            self.poll()

    def poll(self) -> None:
        """Full check: raises :class:`BudgetExceeded` when out of budget."""
        self.polls += 1
        if self._fault_hook is not None:
            self._fault_hook("budget.poll")
        if self._cancelled.is_set():
            raise BudgetExceeded("computation cancelled", reason="cancelled")
        if self.expired():
            raise BudgetExceeded("wall-clock deadline exceeded", reason="deadline")

    def sweep_tick(self, n: int = 1) -> None:
        """Record *n* completed sweeps and enforce the sweep quota.

        Called only at sweep boundaries, so a quota interruption always
        leaves the sampler in a resumable, bit-identical state.
        """
        self._sweeps += n
        if self.max_sweeps is not None and self._sweeps >= self.max_sweeps:
            raise BudgetExceeded(
                f"sweep quota of {self.max_sweeps} exhausted", reason="sweeps"
            )

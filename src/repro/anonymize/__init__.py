"""Anonymization — bijective renaming of the item domain (Section 2.1)."""

from repro.anonymize.database import AnonymizedDatabase, anonymize
from repro.anonymize.mapping import AnonymizationMapping

__all__ = ["AnonymizationMapping", "AnonymizedDatabase", "anonymize"]

"""Anonymized databases — what the owner releases (Section 2.1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anonymize.mapping import AnonymizationMapping
from repro.data.database import TransactionDatabase

__all__ = ["AnonymizedDatabase", "anonymize"]


@dataclass(frozen=True)
class AnonymizedDatabase:
    """The released artifact: an anonymized database plus the secret mapping.

    The ``database`` attribute (transactions over anonymized items) is what
    the public — and a hacker — sees.  The ``mapping`` is the owner's
    secret; it is carried along so experiments can score crack mappings
    against ground truth.
    """

    database: TransactionDatabase
    mapping: AnonymizationMapping

    @property
    def released_view(self) -> TransactionDatabase:
        """The hacker-visible anonymized transaction database."""
        return self.database

    def observed_frequencies(self) -> dict:
        """Frequencies of the anonymized items, ``F(x')`` in the paper."""
        return self.database.frequencies()


def anonymize(
    db: TransactionDatabase,
    mapping: AnonymizationMapping | None = None,
    rng: np.random.Generator | None = None,
) -> AnonymizedDatabase:
    """Anonymize *db* by renaming every item through a bijection.

    Parameters
    ----------
    db:
        The original database.
    mapping:
        Explicit bijection; defaults to a fresh uniformly random one over
        ``db.domain``.
    rng:
        Randomness source for the default random mapping.

    Notes
    -----
    Anonymization does not perturb data characteristics: every frequency
    (and every frequent itemset, up to renaming) is preserved — the
    property that motivates the paper's entire risk analysis.
    """
    if mapping is None:
        mapping = AnonymizationMapping.random(db.domain, rng=rng)
    anonymized_transactions = (
        frozenset(mapping.anonymize_item(item) for item in transaction) for transaction in db
    )
    anonymized_db = TransactionDatabase(
        anonymized_transactions, domain=mapping.anonymized_domain
    )
    return AnonymizedDatabase(database=anonymized_db, mapping=mapping)

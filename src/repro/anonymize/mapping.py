"""Anonymization mappings — bijections from ``I`` to ``J`` (Section 2.1).

The paper anonymizes a database by renaming every item through a bijection
onto a disjoint anonymized domain, "typically as simple as a positive
integer".  The mapping is applied uniformly: if item 1 becomes 1', it
becomes 1' in every transaction.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Hashable

import numpy as np

from repro.errors import DataError, DomainMismatchError

__all__ = ["AnonymizationMapping", "AnonymizedItem"]

Item = Hashable


class AnonymizedItem:
    """An opaque anonymized identifier ``x'`` in the anonymized domain ``J``.

    Wrapping the integer label in a distinct type keeps ``I`` and ``J``
    disjoint even when the original items are integers too, matching the
    paper's requirement ``J intersect I = empty set``.
    """

    __slots__ = ("label",)

    def __init__(self, label: int):
        self.label = int(label)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AnonymizedItem) and other.label == self.label

    def __hash__(self) -> int:
        return hash(("AnonymizedItem", self.label))

    def __lt__(self, other: "AnonymizedItem") -> bool:
        if not isinstance(other, AnonymizedItem):
            return NotImplemented
        return self.label < other.label

    def __repr__(self) -> str:
        return f"{self.label}'"


class AnonymizationMapping:
    """A bijection from the original domain ``I`` to anonymized items.

    Construct with :meth:`random` (the owner's usual procedure — a random
    renaming) or :meth:`from_dict` for an explicit mapping.
    """

    __slots__ = ("_forward", "_backward")

    def __init__(self, forward: Mapping[Item, AnonymizedItem]):
        backward: dict[AnonymizedItem, Item] = {}
        for item, anonymized in forward.items():
            if not isinstance(anonymized, AnonymizedItem):
                raise DataError(f"mapping target {anonymized!r} is not an AnonymizedItem")
            if anonymized in backward:
                raise DataError(f"mapping is not injective: {anonymized!r} used twice")
            backward[anonymized] = item
        self._forward = dict(forward)
        self._backward = backward

    @classmethod
    def random(
        cls, domain: Iterable[Item], rng: np.random.Generator | None = None
    ) -> "AnonymizationMapping":
        """A uniformly random bijection of *domain* onto ``{1', ..., n'}``."""
        rng = np.random.default_rng() if rng is None else rng
        items = sorted(domain, key=repr)
        if not items:
            raise DataError("cannot anonymize an empty domain")
        labels = rng.permutation(len(items)) + 1
        return cls({item: AnonymizedItem(int(label)) for item, label in zip(items, labels)})

    @classmethod
    def identity_labels(cls, domain: Iterable[Item]) -> "AnonymizationMapping":
        """Map the sorted domain onto ``1', 2', ...`` in order.

        Deterministic; convenient for doctests and worked examples (the
        paper's BigMart example uses exactly this labelling).
        """
        items = sorted(domain, key=repr)
        if not items:
            raise DataError("cannot anonymize an empty domain")
        return cls({item: AnonymizedItem(i) for i, item in enumerate(items, start=1)})

    @classmethod
    def from_dict(cls, forward: Mapping[Item, AnonymizedItem]) -> "AnonymizationMapping":
        """An explicit bijection given as a dictionary."""
        return cls(forward)

    # -- lookup ---------------------------------------------------------------

    @property
    def original_domain(self) -> frozenset:
        """The original item domain ``I``."""
        return frozenset(self._forward)

    @property
    def anonymized_domain(self) -> frozenset:
        """The anonymized item domain ``J``."""
        return frozenset(self._backward)

    def anonymize_item(self, item: Item) -> AnonymizedItem:
        """``x -> x'``."""
        try:
            return self._forward[item]
        except KeyError:
            raise DomainMismatchError(f"item {item!r} not in the mapped domain") from None

    def deanonymize_item(self, anonymized: AnonymizedItem) -> Item:
        """``x' -> x`` (the owner's inverse; a hacker does not have this)."""
        try:
            return self._backward[anonymized]
        except KeyError:
            raise DomainMismatchError(f"{anonymized!r} not in the anonymized domain") from None

    def __len__(self) -> int:
        return len(self._forward)

    def __repr__(self) -> str:
        return f"AnonymizationMapping(n_items={len(self._forward)})"

    # -- evaluation helpers ------------------------------------------------------

    def count_cracks(self, crack_mapping: Mapping[AnonymizedItem, Item]) -> int:
        """Number of anonymized items a crack mapping identifies correctly.

        A crack mapping is the hacker's guess ``C : J -> I``; item ``x`` is
        cracked when ``C(x') = x`` (Section 2.3).
        """
        return sum(
            1
            for anonymized, guess in crack_mapping.items()
            if self._backward.get(anonymized) == guess
        )

"""Exact i.i.d. sampling of consistent matchings for chain structures.

For chains, the number of shared items crossing each boundary is forced
(see :func:`repro.core.chain._upward_flows`), so a *uniform* consistent
matching factorizes into independent uniform choices:

1. for each boundary ``i``, a uniform ``t_i``-subset of the shared group
   decides which items map upward;
2. within each frequency group, a uniform bijection pairs the assigned
   items with the group's anonymized items.

No Markov chain, no burn-in, no autocorrelation — exact independent
samples.  Used to validate the MCMC samplers and the Lemma 5/6 formulas,
and as the fastest simulator whenever the belief function happens to
form a chain (which includes every uniform-width belief whose intervals
never span more than two groups).
"""

from __future__ import annotations

import math

import numpy as np

from repro.budget import ComputeBudget, PartialEstimate
from repro.core.chain import chain_from_space
from repro.errors import BudgetExceeded, GraphError, NotAChainError, SimulationError
from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace

__all__ = [
    "sample_chain_cracks",
    "simulate_chain_expected_cracks",
    "best_expected_cracks",
]

#: Exact-engine cost hints below this run on the spot; pricier plans
#: drop to the sampling rungs of the ladder.
_EXACT_COST_BUDGET = 5e7


def _boundary_membership(space: FrequencyMappingSpace):
    """Per-boundary shared-item index lists and per-group exclusive lists."""
    k = len(space.groups)
    shared: list[list[int]] = [[] for _ in range(max(0, k - 1))]
    exclusive: list[list[int]] = [[] for _ in range(k)]
    for i in range(space.n):
        g_lo, g_hi = space.admissible_run(i)
        width = g_hi - g_lo
        if width == 1:
            exclusive[g_lo].append(i)
        elif width == 2:
            shared[g_lo].append(i)
        else:
            raise NotAChainError("an item admits more than two frequency groups")
    return shared, exclusive


def sample_chain_cracks(
    space: FrequencyMappingSpace,
    n_samples: int,
    rng: np.random.Generator | None = None,
    rao_blackwell: bool = True,
    budget: ComputeBudget | None = None,
) -> np.ndarray:
    """Draw exact i.i.d. crack counts from a chain-structured space.

    Parameters
    ----------
    space:
        A compliant mapping space whose belief groups form a chain
        (:func:`repro.core.chain.chain_from_space` must succeed).
    n_samples:
        Number of independent samples.
    rao_blackwell:
        Return the group-conditional expectation per sample (exact given
        the sampled boundary subsets) instead of a raw crack count.

    Returns
    -------
    Array of ``n_samples`` values whose mean estimates ``E[X]`` without
    any MCMC error.
    """
    if n_samples <= 0:
        raise SimulationError("n_samples must be positive")
    rng = np.random.default_rng() if rng is None else rng
    spec = chain_from_space(space)  # validates the chain structure
    flows = []
    t_prev = 0
    for i in range(spec.k - 1):
        t_i = spec.shared_sizes[i] + spec.exclusive_sizes[i] + t_prev - spec.group_sizes[i]
        flows.append(t_i)
        t_prev = t_i

    shared, exclusive = _boundary_membership(space)
    true_group = np.array([space.true_group(i) for i in range(space.n)], dtype=np.int64)
    counts = space.groups.counts
    inv_size = 1.0 / counts

    samples = np.empty(n_samples, dtype=np.float64)
    k = len(space.groups)
    for sample_index in range(n_samples):
        if budget is not None:
            try:
                budget.checkpoint(max(space.n, 1))
            except BudgetExceeded as exc:
                raise BudgetExceeded(
                    str(exc),
                    partial=_chain_partial(samples[:sample_index], exc.reason),
                    reason=exc.reason,
                ) from exc
        # Assigned-to-true-group tallies, seeded with the exclusives
        # (an exclusive item is always assigned its only — true — group).
        hits = np.zeros(k, dtype=np.int64)
        assigned_items: list[list[int]] | None = None
        if not rao_blackwell:
            assigned_items = [list(exclusive[g]) for g in range(k)]
        for g in range(k):
            hits[g] += len(exclusive[g])
        for boundary, members in enumerate(shared):
            t_i = flows[boundary]
            up = set()
            if t_i:
                picks = rng.choice(len(members), size=t_i, replace=False)
                up = {members[int(p)] for p in picks}
            for item in members:
                assigned = boundary + 1 if item in up else boundary
                if true_group[item] == assigned:
                    hits[assigned] += 1
                if assigned_items is not None:
                    assigned_items[assigned].append(item)
        if rao_blackwell:
            samples[sample_index] = float((hits * inv_size).sum())
        else:
            cracks = 0
            for g in range(k):
                members = assigned_items[g]
                permutation = rng.permutation(len(members))
                anon_members = space.groups.members[g]
                for position, item in enumerate(members):
                    if space.true_partner(item) == anon_members[int(permutation[position])]:
                        cracks += 1
            samples[sample_index] = float(cracks)
    return samples


def _chain_partial(collected: np.ndarray, reason: str) -> PartialEstimate | None:
    """Partial estimate over the i.i.d. chain samples drawn so far."""
    n = int(collected.size)
    if n == 0:
        return None
    mean = float(collected.mean())
    std_error = float(collected.std(ddof=1) / math.sqrt(n)) if n >= 2 else 0.0
    return PartialEstimate(
        value=mean,
        std_error=std_error,
        sweeps_completed=n,
        rung="chain-sampler",
        reason=reason,
    )


def simulate_chain_expected_cracks(
    space: FrequencyMappingSpace,
    n_samples: int = 1000,
    rng: np.random.Generator | None = None,
    rao_blackwell: bool = True,
    budget: ComputeBudget | None = None,
) -> tuple[float, float]:
    """Mean and standard error of the exact chain sampler's estimate."""
    samples = sample_chain_cracks(
        space, n_samples, rng=rng, rao_blackwell=rao_blackwell, budget=budget
    )
    return float(samples.mean()), float(samples.std(ddof=1) / math.sqrt(len(samples)))


def best_expected_cracks(
    space: MappingSpace,
    n_samples: int = 1000,
    rng: np.random.Generator | None = None,
    exact_budget: float = _EXACT_COST_BUDGET,
    budget: ComputeBudget | None = None,
) -> tuple[float, float, str]:
    """Estimate ``E[X]`` by the best rung of the strategy ladder.

    Tries, in order: the structure-exploiting exact engine (when
    :func:`repro.graph.exact.exact_strategy` deems the plan feasible and
    its cost hint is below *exact_budget*), the exact i.i.d. chain
    sampler, then MCMC (Gibbs on frequency spaces, swap otherwise).

    Returns ``(estimate, standard_error, strategy)`` where *strategy* is
    the plan name for exact rungs (``"interval-dp"``, ``"block-ryser"``,
    ...), ``"chain-sampler"``, or ``"mcmc-gibbs"`` / ``"mcmc-swap"``;
    exact rungs report a standard error of 0.

    When *budget* (a :class:`~repro.budget.ComputeBudget`) runs out
    inside an exact rung, the ladder degrades one rung instead of
    failing: the sampling rungs can still deliver a bounded estimate in
    whatever time remains.  Exhaustion inside a sampling rung propagates
    :class:`~repro.errors.BudgetExceeded` carrying the partial estimate
    accumulated so far.
    """
    from repro.graph.exact import exact_strategy, expected_cracks_exact
    from repro.graph.intervaldp import DEFAULT_BUDGET, DPBudget

    plan = exact_strategy(space)
    if plan.feasible and plan.cost_hint <= exact_budget:
        dp_budget = (
            DEFAULT_BUDGET
            if budget is None
            else DPBudget(
                max_states=DEFAULT_BUDGET.max_states,
                max_ops=DEFAULT_BUDGET.max_ops,
                compute=budget,
            )
        )
        try:
            return expected_cracks_exact(space, budget=dp_budget), 0.0, plan.strategy
        except GraphError:
            pass  # DP budget blown mid-run: drop to the sampling rungs
        except BudgetExceeded:
            # Deadline hit inside the exact rung: the exact engine has no
            # partial answer, but a cheaper rung may still produce one
            # before the next poll — degrade instead of failing.
            pass
    if isinstance(space, FrequencyMappingSpace):
        try:
            mean, stderr = simulate_chain_expected_cracks(
                space, n_samples, rng=rng, budget=budget
            )
            return mean, stderr, "chain-sampler"
        except NotAChainError:
            pass
    from repro.simulation.estimate import simulate_expected_cracks

    method = "gibbs" if isinstance(space, FrequencyMappingSpace) else "swap"
    result = simulate_expected_cracks(
        space, rng=rng, rao_blackwell=True, method=method, budget=budget
    )
    return result.mean, result.std, f"mcmc-{method}"

"""Simulation of the expected number of cracks (paper, Section 7.1).

The paper validates its O-estimates against a sampler of (approximately
uniform) random consistent perfect matchings: start from a seed matching,
propose partner swaps driven by random permutations of the items, accept
a swap when both new edges remain consistent, and record the number of
cracks at fixed intervals.

:class:`~repro.simulation.sampler.MatchingSampler` implements the chain;
:func:`~repro.simulation.estimate.simulate_expected_cracks` wraps it into
the paper's protocol (several independent runs, mean and standard
deviation across runs).  A Rao-Blackwellized estimator — exact
expectation conditional on the item-to-frequency-group assignment — is
available as a lower-variance alternative.
"""

from repro.simulation.diagnostics import (
    ConvergenceReport,
    autocorrelation_time,
    diagnose_chains,
    effective_sample_size,
    potential_scale_reduction,
)
from repro.simulation.estimate import SimulationResult, simulate_expected_cracks
from repro.simulation.exact import (
    best_expected_cracks,
    sample_chain_cracks,
    simulate_chain_expected_cracks,
)
from repro.simulation.gibbs import GibbsAssignmentSampler
from repro.simulation.sampler import MatchingSampler

__all__ = [
    "MatchingSampler",
    "GibbsAssignmentSampler",
    "SimulationResult",
    "simulate_expected_cracks",
    "ConvergenceReport",
    "diagnose_chains",
    "potential_scale_reduction",
    "autocorrelation_time",
    "effective_sample_size",
    "sample_chain_cracks",
    "simulate_chain_expected_cracks",
    "best_expected_cracks",
]

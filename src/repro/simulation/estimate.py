"""Simulated expected-crack estimates (paper, Sections 7.1–7.2).

The paper's protocol: generate many samples of consistent matchings with
the swap chain, average the crack counts, repeat over 5 independent runs,
and report the mean of the run averages with the standard deviation
across runs ("the differences between the O-estimates and the average
simulated estimates are well within one standard deviation").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.budget import ComputeBudget, PartialEstimate
from repro.errors import BudgetExceeded, SimulationError
from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace
from repro.simulation.gibbs import GibbsAssignmentSampler
from repro.simulation.sampler import MatchingSampler

__all__ = ["SimulationResult", "simulate_expected_cracks"]

#: The paper's reported budgets (Section 7.1).  The library defaults are
#: smaller; pass these explicitly to reproduce the paper's exact protocol.
PAPER_BURN_IN_PROPOSALS = 100_000
PAPER_PROPOSALS_PER_SAMPLE = 10_000
PAPER_SAMPLES_PER_SEED = 250
PAPER_TOTAL_SAMPLES = 5_000


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a multi-run simulation.

    Attributes
    ----------
    mean:
        Mean expected cracks across runs (the "average simulated
        estimate" of Figure 10).
    std:
        Sample standard deviation of the per-run means.
    run_means:
        The individual run averages.
    n:
        Domain size, so ``mean / n`` is the simulated cracked fraction.
    n_samples_per_run:
        Matching samples drawn per run.
    """

    mean: float
    std: float
    run_means: tuple[float, ...]
    n: int
    n_samples_per_run: int

    @property
    def fraction(self) -> float:
        """Simulated expected cracks as a fraction of the domain size."""
        return self.mean / self.n

    def within_one_std(self, value: float) -> bool:
        """The paper's accuracy criterion for the O-estimate."""
        return abs(value - self.mean) <= max(self.std, 1e-12)


def _partial_from_samples(
    samples: list[float],
    method: str,
    reason: str,
    budget: ComputeBudget | None,
) -> PartialEstimate | None:
    """Package the samples collected before exhaustion (None when empty).

    The standard error is always finite: with fewer than two samples the
    uncertainty is simply unquantified (0.0), never ``inf``/``nan``.
    """
    if not samples:
        return None
    mean = math.fsum(samples) / len(samples)
    if len(samples) >= 2:
        variance = math.fsum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        std_error = math.sqrt(variance / len(samples))
    else:
        std_error = 0.0
    return PartialEstimate(
        value=mean,
        std_error=std_error,
        sweeps_completed=budget.sweeps_completed if budget is not None else len(samples),
        rung=f"mcmc-{method}",
        reason=reason,
    )


def simulate_expected_cracks(
    space: MappingSpace,
    runs: int = 5,
    samples_per_run: int = 200,
    burn_in_sweeps: int = 20,
    sweeps_per_sample: int = 2,
    samples_per_seed: int = 250,
    rng: np.random.Generator | None = None,
    rao_blackwell: bool = False,
    method: str = "swap",
    budget: ComputeBudget | None = None,
) -> SimulationResult:
    """Estimate the expected number of cracks by matching-swap simulation.

    Parameters
    ----------
    space:
        The consistent-mapping space; a consistent perfect matching must
        exist.
    runs:
        Independent runs (the paper uses 5).
    samples_per_run:
        Matching samples averaged within each run.
    burn_in_sweeps:
        Whole-permutation sweeps before the first sample of each seed
        (each sweep is ``n`` proposals, so the default 20 sweeps is a
        burn-in of ``20 n`` proposals).
    sweeps_per_sample:
        Sweeps between consecutive samples.
    samples_per_seed:
        After this many samples the chain is re-seeded from scratch, as
        in the paper's procedure (250 samples per seed).
    rng:
        Randomness source.
    rao_blackwell:
        Record the group-conditional expectation instead of the raw crack
        count — identical mean, lower variance; only available on
        frequency mapping spaces.
    method:
        ``"swap"`` for the paper's transposition chain (Section 7.1, works
        on any mapping space) or ``"gibbs"`` for the group-level heat-bath
        chain (frequency spaces only) — same stationary distribution, far
        faster mixing on large domains; see
        :mod:`repro.simulation.gibbs`.
    budget:
        Optional :class:`~repro.budget.ComputeBudget` polled inside every
        sweep.  On exhaustion a :class:`~repro.errors.BudgetExceeded` is
        raised carrying a :class:`~repro.budget.PartialEstimate` over the
        samples collected so far (``partial=None`` when no sample was
        drawn yet), so anytime callers can degrade instead of failing.
    """
    if runs <= 0 or samples_per_run <= 0:
        raise SimulationError("runs and samples_per_run must be positive")
    if rao_blackwell and not isinstance(space, FrequencyMappingSpace):
        raise SimulationError("Rao-Blackwell estimation needs a frequency mapping space")
    if method not in ("swap", "gibbs"):
        raise SimulationError(f"unknown simulation method {method!r}")
    if method == "gibbs" and not isinstance(space, FrequencyMappingSpace):
        raise SimulationError("the Gibbs sampler needs a frequency mapping space")
    sampler_class = MatchingSampler if method == "swap" else GibbsAssignmentSampler
    rng = np.random.default_rng() if rng is None else rng

    run_means: list[float] = []
    all_samples: list[float] = []
    try:
        for _ in range(runs):
            samples: list[float] = []
            sampler = None
            # Bounded by samples_per_run; the budget (when given) is
            # additionally polled inside every sweep.
            while len(samples) < samples_per_run:
                if sampler is None or len(samples) % samples_per_seed == 0 and samples:
                    sampler = sampler_class(space, rng=rng)
                    sampler.sweep(burn_in_sweeps, budget=budget)
                sampler.sweep(sweeps_per_sample, budget=budget)
                if rao_blackwell:
                    samples.append(sampler.rao_blackwell_cracks())
                else:
                    samples.append(float(sampler.crack_count()))
                all_samples.append(samples[-1])
            run_means.append(math.fsum(samples) / len(samples))
    except BudgetExceeded as exc:
        raise BudgetExceeded(
            str(exc),
            partial=_partial_from_samples(all_samples, method, exc.reason, budget),
            reason=exc.reason,
        ) from exc

    mean = math.fsum(run_means) / runs
    if runs > 1:
        variance = math.fsum((m - mean) ** 2 for m in run_means) / (runs - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return SimulationResult(
        mean=mean,
        std=std,
        run_means=tuple(run_means),
        n=space.n,
        n_samples_per_run=samples_per_run,
    )

"""Block-Gibbs sampling of consistent matchings at the group level.

A uniform random consistent perfect matching factorizes over the
frequency-group structure: every capacity-respecting assignment of items
to admissible frequency groups is realized by exactly ``prod_g n_g!``
matchings (the within-group bijections), so the uniform distribution over
matchings induces the *uniform* distribution over valid assignments, with
independent uniform within-group bijections given the assignment.

:class:`GibbsAssignmentSampler` exploits this: its state is the
item-to-group assignment, and one move resamples, for a random adjacent
group pair ``(g, g+1)``, the placement of all items currently in the pair
that admit both groups — a heat-bath step whose conditional is uniform
over subsets, because all completions carry equal weight.  Reshuffling a
whole boundary per step mixes dramatically faster than the paper's
single-transposition swap chain (see ``bench_ablations``), while
targeting exactly the same distribution.

Interval beliefs make every admissible set a contiguous run of groups, so
adjacent-pair moves connect the state space: any unit of "flow" between
two groups of an item's run can be routed through the intermediate
boundaries step by step.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.graph.bipartite import FrequencyMappingSpace
from repro.graph.matching import group_feasible_matching

__all__ = ["GibbsAssignmentSampler"]


class GibbsAssignmentSampler:
    """Heat-bath sampler over item-to-frequency-group assignments.

    Parameters
    ----------
    space:
        A frequency mapping space (the group factorization requires it).
    rng:
        Randomness source.
    seed_with_truth:
        Start from the ground-truth assignment where consistent (mirrors
        the paper's all-cracked seed); otherwise from an arbitrary
        feasible assignment.
    """

    def __init__(
        self,
        space: FrequencyMappingSpace,
        rng: np.random.Generator | None = None,
        seed_with_truth: bool = True,
    ):
        if not isinstance(space, FrequencyMappingSpace):
            raise SimulationError("the Gibbs sampler needs a frequency mapping space")
        self.space = space
        self.rng = np.random.default_rng() if rng is None else rng
        self.n = space.n
        self.k = len(space.groups)

        matching = group_feasible_matching(
            space, prefer_truth=seed_with_truth, rng=None if seed_with_truth else self.rng
        )
        group_of_anon = space.groups.group_of
        self._assign: np.ndarray = group_of_anon[matching].astype(np.int64)
        self._members: list[list[int]] = [[] for _ in range(self.k)]
        for i in range(self.n):
            self._members[int(self._assign[i])].append(i)

        self._g_lo = np.array([space.admissible_run(i)[0] for i in range(self.n)])
        self._g_hi = np.array([space.admissible_run(i)[1] for i in range(self.n)])
        self._true_group = np.array(
            [space.true_group(i) for i in range(self.n)], dtype=np.int64
        )
        counts = space.groups.counts
        self._inv_group_size = 1.0 / counts[self._true_group]

    # -- chain ----------------------------------------------------------------

    def _resample_boundary(self, g: int) -> None:
        """Heat-bath reshuffle of the flexible items across groups g, g+1."""
        h = g + 1
        g_lo, g_hi = self._g_lo, self._g_hi
        flexible = [i for i in self._members[g] if g_lo[i] <= g and g_hi[i] > h] + [
            i for i in self._members[h] if g_lo[i] <= g and g_hi[i] > h
        ]
        if len(flexible) < 2:
            return
        quota_g = sum(1 for i in self._members[g] if g_lo[i] <= g and g_hi[i] > h)
        order = self.rng.permutation(len(flexible))
        keep_g = {flexible[int(j)] for j in order[:quota_g]}
        self._members[g] = [
            i for i in self._members[g] if not (g_lo[i] <= g and g_hi[i] > h)
        ]
        self._members[h] = [
            i for i in self._members[h] if not (g_lo[i] <= g and g_hi[i] > h)
        ]
        for i in flexible:
            target = g if i in keep_g else h
            self._members[target].append(i)
            self._assign[i] = target

    def sweep(self, n_sweeps: int = 1) -> int:
        """Run passes over all adjacent boundaries in random order.

        Returns the number of boundary moves attempted (for symmetry with
        the swap sampler's diagnostics).
        """
        moves = 0
        for _ in range(n_sweeps):
            if self.k < 2:
                break
            for g in self.rng.permutation(self.k - 1):
                self._resample_boundary(int(g))
                moves += 1
        return moves

    # -- observables ---------------------------------------------------------

    @property
    def assignment(self) -> np.ndarray:
        """The current item-to-group assignment (copy)."""
        return self._assign.copy()

    def rao_blackwell_cracks(self) -> float:
        """Expected cracks given the current group assignment."""
        in_true_group = self._assign == self._true_group
        return float(self._inv_group_size[in_true_group].sum())

    def crack_count(self) -> int:
        """A raw crack count: sample the within-group bijections uniformly."""
        cracks = 0
        for g, members in enumerate(self._members):
            size = len(members)
            if size == 0:
                continue
            # Uniform bijection between assigned items and the group's
            # anonymized slots: an item is cracked when it lands on its
            # true partner, which requires its true group to be g.
            slots = self.rng.permutation(size)
            anon_members = self.space.groups.members[g]
            for position, item in enumerate(members):
                if self._true_group[item] != g:
                    continue
                anon = anon_members[int(slots[position])]
                if self.space.true_partner(item) == anon:
                    cracks += 1
        return cracks

    def check_consistency(self) -> bool:
        """Verify capacities and admissibility — a test/debug aid."""
        counts = self.space.groups.counts
        for g, members in enumerate(self._members):
            if len(members) != int(counts[g]):
                return False
            for i in members:
                if not self._g_lo[i] <= g < self._g_hi[i]:
                    return False
                if self._assign[i] != g:
                    return False
        return True

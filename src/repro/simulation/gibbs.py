"""Block-Gibbs sampling of consistent matchings at the group level.

A uniform random consistent perfect matching factorizes over the
frequency-group structure: every capacity-respecting assignment of items
to admissible frequency groups is realized by exactly ``prod_g n_g!``
matchings (the within-group bijections), so the uniform distribution over
matchings induces the *uniform* distribution over valid assignments, with
independent uniform within-group bijections given the assignment.

:class:`GibbsAssignmentSampler` exploits this: its state is the
item-to-group assignment, and one move resamples, for a random adjacent
group pair ``(g, g+1)``, the placement of all items currently in the pair
that admit both groups — a heat-bath step whose conditional is uniform
over subsets, because all completions carry equal weight.  Reshuffling a
whole boundary per step mixes dramatically faster than the paper's
single-transposition swap chain (see ``bench_ablations``), while
targeting exactly the same distribution.

Interval beliefs make every admissible set a contiguous run of groups, so
adjacent-pair moves connect the state space: any unit of "flow" between
two groups of an item's run can be routed through the intermediate
boundaries step by step.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.budget import ComputeBudget
from repro.errors import FormatError, SimulationError
from repro.graph.bipartite import FrequencyMappingSpace
from repro.graph.matching import group_feasible_matching

__all__ = ["GibbsAssignmentSampler"]


class GibbsAssignmentSampler:
    """Heat-bath sampler over item-to-frequency-group assignments.

    Parameters
    ----------
    space:
        A frequency mapping space (the group factorization requires it).
    rng:
        Randomness source.
    seed_with_truth:
        Start from the ground-truth assignment where consistent (mirrors
        the paper's all-cracked seed); otherwise from an arbitrary
        feasible assignment.
    """

    def __init__(
        self,
        space: FrequencyMappingSpace,
        rng: np.random.Generator | None = None,
        seed_with_truth: bool = True,
    ):
        if not isinstance(space, FrequencyMappingSpace):
            raise SimulationError("the Gibbs sampler needs a frequency mapping space")
        self.space = space
        self.rng = np.random.default_rng() if rng is None else rng
        self.n = space.n
        self.k = len(space.groups)

        matching = group_feasible_matching(
            space, prefer_truth=seed_with_truth, rng=None if seed_with_truth else self.rng
        )
        group_of_anon = space.groups.group_of
        self._assign: np.ndarray = group_of_anon[matching].astype(np.int64)

        self._g_lo = np.array([space.admissible_run(i)[0] for i in range(self.n)])
        self._g_hi = np.array([space.admissible_run(i)[1] for i in range(self.n)])
        self._true_group = np.array(
            [space.true_group(i) for i in range(self.n)], dtype=np.int64
        )
        self._true_partner = np.array(
            [space.true_partner(i) for i in range(self.n)], dtype=np.int64
        )
        counts = space.groups.counts
        self._inv_group_size = 1.0 / counts[self._true_group]
        self._counts = counts.astype(np.int64)
        self._anon_members = [
            np.asarray(space.groups.members[g], dtype=np.int64) for g in range(self.k)
        ]
        # Per-boundary candidate arrays: the items whose admissible run
        # spans boundary g (may sit in group g or g+1 and admits both).
        # Precomputing these turns the inner sweep into pure array ops.
        self._spans: list[np.ndarray] = [
            np.flatnonzero((self._g_lo <= g) & (self._g_hi > g + 1))
            for g in range(max(self.k - 1, 0))
        ]

    # -- chain ----------------------------------------------------------------

    def _resample_boundary(self, g: int) -> None:
        """Heat-bath reshuffle of the flexible items across groups g, g+1."""
        span = self._spans[g]
        assign_span = self._assign[span]
        at_g = assign_span == g
        flexible = span[at_g | (assign_span == g + 1)]
        if flexible.size < 2:
            return
        quota_g = int(at_g.sum())
        order = self.rng.permutation(flexible.size)
        self._assign[flexible] = g + 1
        self._assign[flexible[order[:quota_g]]] = g

    def sweep(self, n_sweeps: int = 1, budget: ComputeBudget | None = None) -> int:
        """Run passes over all adjacent boundaries in random order.

        Returns the number of boundary moves attempted (for symmetry with
        the swap sampler's diagnostics).

        When *budget* is given, every boundary move makes a cheap
        :meth:`~repro.budget.ComputeBudget.checkpoint` call and every
        completed sweep a :meth:`~repro.budget.ComputeBudget.sweep_tick`;
        a sweep-quota interruption therefore always lands exactly on a
        sweep boundary, which is what makes :meth:`snapshot` /
        :meth:`restore` bit-identical under interruption.
        """
        moves = 0
        for _ in range(n_sweeps):
            if self.k < 2:
                break
            for g in self.rng.permutation(self.k - 1):
                if budget is not None:
                    budget.checkpoint()
                self._resample_boundary(int(g))
                moves += 1
            if budget is not None:
                budget.sweep_tick()
        return moves

    # -- checkpoint/resume ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serializable snapshot of the chain state.

        Captures the item-to-group assignment and the exact bit-generator
        state, so a restored sampler continues the *identical* random
        stream: interrupt-at-any-sweep + resume reproduces an
        uninterrupted run bit for bit.
        """
        return {
            "type": "gibbs_snapshot",
            "n": int(self.n),
            "k": int(self.k),
            "assignment": [int(g) for g in self._assign],
            "rng_state": self.rng.bit_generator.state,
        }

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        """Restore chain state from a :meth:`snapshot` payload (in place)."""
        if not isinstance(snapshot, Mapping) or snapshot.get("type") != "gibbs_snapshot":
            raise FormatError(f"not a gibbs_snapshot payload: {type(snapshot)!r}")
        if int(snapshot["n"]) != self.n or int(snapshot["k"]) != self.k:
            raise SimulationError(
                "snapshot shape mismatch: snapshot is for "
                f"n={snapshot['n']}, k={snapshot['k']}; space has n={self.n}, k={self.k}"
            )
        assignment = np.asarray(snapshot["assignment"], dtype=np.int64)
        if assignment.shape != self._assign.shape:
            raise SimulationError("snapshot assignment length mismatch")
        self._assign = assignment.copy()
        state = snapshot["rng_state"]
        self.rng.bit_generator.state = dict(state) if isinstance(state, Mapping) else state
        if not self.check_consistency():
            raise SimulationError("snapshot restores an inconsistent assignment")

    @classmethod
    def from_snapshot(
        cls, space: FrequencyMappingSpace, snapshot: Mapping[str, Any]
    ) -> "GibbsAssignmentSampler":
        """Build a sampler over *space* and restore *snapshot* into it."""
        sampler = cls(space, rng=np.random.default_rng(0), seed_with_truth=True)
        sampler.restore(snapshot)
        return sampler

    # -- observables ---------------------------------------------------------

    @property
    def assignment(self) -> np.ndarray:
        """The current item-to-group assignment (copy)."""
        return self._assign.copy()

    def rao_blackwell_cracks(self) -> float:
        """Expected cracks given the current group assignment."""
        in_true_group = self._assign == self._true_group
        return float(self._inv_group_size[in_true_group].sum())

    def crack_count(self) -> int:
        """A raw crack count: sample the within-group bijections uniformly."""
        cracks = 0
        order = np.argsort(self._assign, kind="stable")
        offsets = np.concatenate(([0], np.cumsum(np.bincount(self._assign, minlength=self.k))))
        for g in range(self.k):
            members = order[offsets[g] : offsets[g + 1]]
            size = members.size
            if size == 0:
                continue
            # Uniform bijection between assigned items and the group's
            # anonymized slots: an item is cracked when it lands on its
            # true partner, which requires its true group to be g.
            slots = self.rng.permutation(size)
            anons = self._anon_members[g][slots]
            cracks += int(np.count_nonzero(anons == self._true_partner[members]))
        return cracks

    def check_consistency(self) -> bool:
        """Verify capacities and admissibility — a test/debug aid."""
        occupancy = np.bincount(self._assign, minlength=self.k)
        if occupancy.size > self.k or not np.array_equal(occupancy, self._counts):
            return False
        admissible = (self._g_lo <= self._assign) & (self._assign < self._g_hi)
        return bool(admissible.all())

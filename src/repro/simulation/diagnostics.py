"""Convergence diagnostics for the matching samplers.

The reproduction surfaced a real methodological hazard: the paper's swap
chain, seeded from the all-cracked matching, retains heavy seed bias on
large domains long after a naive burn-in (see EXPERIMENTS.md §3).  These
diagnostics let a user *check* rather than hope:

* :func:`potential_scale_reduction` — Gelman–Rubin R-hat across
  independent chains (values near 1 indicate between-chain agreement);
* :func:`autocorrelation_time` — integrated autocorrelation time of a
  chain's crack-count series (how many sweeps one effective sample
  costs);
* :func:`effective_sample_size` — the resulting effective sample count;
* :func:`diagnose_chains` — run several chains and bundle everything
  into a :class:`ConvergenceReport` with a pass/fail verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace
from repro.simulation.gibbs import GibbsAssignmentSampler
from repro.simulation.sampler import MatchingSampler

__all__ = [
    "potential_scale_reduction",
    "autocorrelation_time",
    "effective_sample_size",
    "ConvergenceReport",
    "diagnose_chains",
]


def potential_scale_reduction(chains: Sequence[Sequence[float]]) -> float:
    """Gelman–Rubin R-hat over several same-length chains.

    Values close to 1 indicate the chains have forgotten their seeds;
    the conventional pass threshold is 1.05–1.1.
    """
    matrix = np.asarray(chains, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] < 2 or matrix.shape[1] < 2:
        raise SimulationError("R-hat needs at least 2 chains of at least 2 samples")
    n_chains, length = matrix.shape
    chain_means = matrix.mean(axis=1)
    chain_variances = matrix.var(axis=1, ddof=1)
    within = chain_variances.mean()
    between = length * chain_means.var(ddof=1)
    if within == 0:
        return 1.0 if between == 0 else float("inf")
    pooled = (length - 1) / length * within + between / length
    return float(np.sqrt(pooled / within))


def autocorrelation_time(series: Sequence[float], max_lag: int | None = None) -> float:
    """Integrated autocorrelation time with Geyer initial-positive truncation.

    Returns 1.0 for an uncorrelated series; a value of ``t`` means about
    ``t`` consecutive samples carry one sample's worth of information.
    """
    values = np.asarray(series, dtype=np.float64)
    if values.size < 4:
        raise SimulationError("autocorrelation time needs at least 4 samples")
    values = values - values.mean()
    variance = float(np.dot(values, values)) / values.size
    if variance == 0:
        return 1.0
    if max_lag is None:
        max_lag = values.size // 2
    time = 1.0
    for lag in range(1, max_lag):
        correlation = float(np.dot(values[:-lag], values[lag:])) / (
            (values.size - lag) * variance
        )
        if correlation <= 0:
            break
        time += 2.0 * correlation
    return time


def effective_sample_size(series: Sequence[float]) -> float:
    """``len(series) / autocorrelation_time(series)``."""
    return len(series) / autocorrelation_time(series)


@dataclass(frozen=True)
class ConvergenceReport:
    """Bundle of diagnostics for a set of sampler chains.

    Attributes
    ----------
    r_hat:
        Gelman–Rubin statistic across the chains.
    autocorrelation_times:
        Per-chain integrated autocorrelation times (in samples).
    effective_samples:
        Total effective sample count across chains.
    n_chains, n_samples:
        The budget diagnosed.
    """

    r_hat: float
    autocorrelation_times: tuple[float, ...]
    effective_samples: float
    n_chains: int
    n_samples: int

    def converged(self, r_hat_threshold: float = 1.1) -> bool:
        """The conventional verdict: R-hat below the threshold."""
        return self.r_hat <= r_hat_threshold

    def summary(self) -> str:
        times = ", ".join(f"{t:.1f}" for t in self.autocorrelation_times)
        return (
            f"R-hat = {self.r_hat:.3f} over {self.n_chains} chains x "
            f"{self.n_samples} samples; autocorrelation times [{times}]; "
            f"effective samples ~ {self.effective_samples:.0f}"
        )


def diagnose_chains(
    space: MappingSpace,
    n_chains: int = 4,
    n_samples: int = 200,
    sweeps_per_sample: int = 1,
    method: str = "swap",
    rng: np.random.Generator | None = None,
    observable: str = "cracks",
) -> ConvergenceReport:
    """Run chains from over-dispersed seeds and report convergence.

    Half the chains are seeded from the ground-truth (all-cracked)
    matching and half from an arbitrary feasible one, so residual seed
    bias shows up as between-chain disagreement (R-hat above 1).

    Parameters
    ----------
    space:
        The mapping space to sample.
    n_chains, n_samples, sweeps_per_sample:
        The budget; no burn-in is discarded — the diagnostic *measures*
        the transient instead of hiding it.
    method:
        ``"swap"`` or ``"gibbs"`` (the latter needs a frequency space).
    observable:
        ``"cracks"`` (raw counts) or ``"rao_blackwell"``.
    """
    if n_chains < 2:
        raise SimulationError("diagnosis needs at least 2 chains")
    if method not in ("swap", "gibbs"):
        raise SimulationError(f"unknown simulation method {method!r}")
    if method == "gibbs" and not isinstance(space, FrequencyMappingSpace):
        raise SimulationError("the Gibbs sampler needs a frequency mapping space")
    if observable not in ("cracks", "rao_blackwell"):
        raise SimulationError(f"unknown observable {observable!r}")
    if observable == "rao_blackwell" and not isinstance(space, FrequencyMappingSpace):
        raise SimulationError("Rao-Blackwell observables need a frequency mapping space")
    rng = np.random.default_rng() if rng is None else rng
    sampler_class: Callable = MatchingSampler if method == "swap" else GibbsAssignmentSampler

    chains: list[list[float]] = []
    for chain_index in range(n_chains):
        sampler = sampler_class(
            space, rng=rng, seed_with_truth=(chain_index % 2 == 0)
        )
        series: list[float] = []
        for _ in range(n_samples):
            sampler.sweep(sweeps_per_sample)
            if observable == "cracks":
                series.append(float(sampler.crack_count()))
            else:
                series.append(sampler.rao_blackwell_cracks())
        chains.append(series)

    return ConvergenceReport(
        r_hat=potential_scale_reduction(chains),
        autocorrelation_times=tuple(
            autocorrelation_time(series) for series in chains
        ),
        effective_samples=sum(effective_sample_size(series) for series in chains),
        n_chains=n_chains,
        n_samples=n_samples,
    )

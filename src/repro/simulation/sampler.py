"""The matching-swap Markov chain of Section 7.1.

State: a consistent perfect matching, held as ``match[i] = j`` (item
``i`` is assigned anonymized item ``j``).  One *proposal* picks a pair of
items and swaps their partners when the two new edges are both
consistent; the paper drives proposals from random permutations ``P`` of
the item set, pairing ``i`` with ``P(i)``.

The chain is irreducible on the set of consistent perfect matchings of a
frequency mapping space (any matching can be transformed into any other
by transpositions within/between overlapping groups) and symmetric, so
its stationary distribution is uniform — matching the paper's
equally-likely-mappings assumption.

Crack counting is incremental: a swap changes the crack count only
through the four (item, partner) pairs involved, so sampling stays
``O(1)`` per proposal after an ``O(n)`` setup.
"""

from __future__ import annotations

import numpy as np

from repro.budget import ComputeBudget
from repro.errors import SimulationError
from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace
from repro.graph.matching import group_feasible_matching

__all__ = ["MatchingSampler"]


class MatchingSampler:
    """Swap-chain sampler over consistent perfect matchings.

    Parameters
    ----------
    space:
        The consistent-mapping space to sample from.  A consistent
        perfect matching must exist (otherwise
        :class:`~repro.errors.InfeasibleMatchingError` propagates from the
        seeding step).
    rng:
        Randomness source.
    seed_with_truth:
        Seed from the ground-truth pairing wherever consistent (the
        paper's "every item is cracked" seed); otherwise seed from an
        arbitrary consistent matching.
    """

    def __init__(
        self,
        space: MappingSpace,
        rng: np.random.Generator | None = None,
        seed_with_truth: bool = True,
    ):
        self.space = space
        self.rng = np.random.default_rng() if rng is None else rng
        self.n = space.n
        match = group_feasible_matching(
            space, prefer_truth=seed_with_truth, rng=None if seed_with_truth else self.rng
        )
        self._match: list[int] = [int(j) for j in match]
        self._true: list[int] = [space.true_partner(i) for i in range(self.n)]
        self._cracks = sum(1 for i in range(self.n) if self._match[i] == self._true[i])

        if isinstance(space, FrequencyMappingSpace):
            self._low = space.low.tolist()
            self._high = space.high.tolist()
            self._freq = space.observed.tolist()
            self._edge = None
        else:
            self._low = self._high = self._freq = None
            self._edge = space.is_edge

        # Rao-Blackwell bookkeeping: group of each anonymized item, the
        # true group of each item, and the size of that true group.
        if isinstance(space, FrequencyMappingSpace):
            group_of = space.groups.group_of
            self._anon_group = group_of.tolist()
            self._true_group = [int(group_of[j]) for j in self._true]
            counts = space.groups.counts
            self._true_group_weight = [
                1.0 / int(counts[g]) for g in self._true_group
            ]
        else:
            self._anon_group = None
            self._true_group = None
            self._true_group_weight = None

    # -- chain ------------------------------------------------------------

    def _consistent(self, i: int, j: int) -> bool:
        if self._edge is not None:
            return self._edge(i, j)
        f = self._freq[j]
        return self._low[i] <= f <= self._high[i]

    def sweep(self, n_sweeps: int = 1, budget: ComputeBudget | None = None) -> int:
        """Run whole-permutation sweeps (``n`` proposals each).

        Returns the number of accepted swaps, mainly for diagnostics.
        A *budget* is polled once per proposal (cheap checkpoint) and
        ticked once per completed sweep, so quota interruptions land on
        sweep boundaries.
        """
        accepted = 0
        match = self._match
        true = self._true
        for _ in range(n_sweeps):
            if budget is not None:
                budget.checkpoint(self.n)
            partner = self.rng.permutation(self.n)
            for a in range(self.n):
                b = int(partner[a])
                if a == b:
                    continue
                ja, jb = match[a], match[b]
                if self._consistent(a, jb) and self._consistent(b, ja):
                    before = (ja == true[a]) + (jb == true[b])
                    after = (jb == true[a]) + (ja == true[b])
                    match[a], match[b] = jb, ja
                    self._cracks += after - before
                    accepted += 1
            if budget is not None:
                budget.sweep_tick()
        return accepted

    def propose(self, n_proposals: int, budget: ComputeBudget | None = None) -> int:
        """Run single random-pair proposals (finer-grained than sweeps)."""
        accepted = 0
        match = self._match
        true = self._true
        if budget is not None:
            budget.checkpoint(n_proposals)
        pairs = self.rng.integers(0, self.n, size=(n_proposals, 2))
        for a, b in pairs:
            a, b = int(a), int(b)
            if a == b:
                continue
            ja, jb = match[a], match[b]
            if self._consistent(a, jb) and self._consistent(b, ja):
                before = (ja == true[a]) + (jb == true[b])
                after = (jb == true[a]) + (ja == true[b])
                match[a], match[b] = jb, ja
                self._cracks += after - before
                accepted += 1
        return accepted

    # -- observables ---------------------------------------------------------

    @property
    def matching(self) -> tuple[int, ...]:
        """The current matching (item index -> anonymized index)."""
        return tuple(self._match)

    def crack_count(self) -> int:
        """Number of cracks in the current matching."""
        return self._cracks

    def rao_blackwell_cracks(self) -> float:
        """Expected cracks conditional on the current group assignment.

        Given the item-to-frequency-group assignment induced by the
        matching, the within-group pairing is uniform, so the conditional
        expectation is ``sum over items assigned to their true group of
        1 / (true group size)``.  Same mean as :meth:`crack_count`,
        strictly lower variance.
        """
        if self._anon_group is None:
            raise SimulationError(
                "Rao-Blackwell estimation needs a frequency mapping space"
            )
        total = 0.0
        match = self._match
        anon_group = self._anon_group
        true_group = self._true_group
        weight = self._true_group_weight
        for i in range(self.n):
            if anon_group[match[i]] == true_group[i]:
                total += weight[i]
        return total

    def check_consistency(self) -> bool:
        """Verify the invariants: perfect, consistent, crack count correct.

        Used by tests and available as a debugging aid.
        """
        seen = set(self._match)
        if len(seen) != self.n:
            return False
        if any(not self._consistent(i, self._match[i]) for i in range(self.n)):
            return False
        actual = sum(1 for i in range(self.n) if self._match[i] == self._true[i])
        return actual == self._cracks

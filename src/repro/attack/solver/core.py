"""The incremental consistency solver behind the attacker workbench.

A :class:`ConsistencySolver` holds the hacker's current consistency
graph and maintains the complete forced/forbidden/undecided edge
partition as observations stream in.  Each ingest is an *intersection*
of candidate sets — candidates only ever disappear — so the partition
after any set of observations is independent of their order, and
previously emitted ``forced`` events never retract (short of the graph
turning infeasible, which is itself monotone).

Per step the solver runs three fronts, cheapest first:

1. the degree-1 cascade of Figure 7
   (:func:`repro.graph.propagation.propagate_degree_one`, whose
   forced *and* forbidden output is reused directly);
2. generalized degree-``k`` naked-subset propagation
   (:func:`repro.graph.refine.propagate_degree_k`);
3. the exact Dulmage–Mendelsohn classification
   (:func:`repro.graph.refine.classify_adjacency`) over whatever the
   propagation fronts left, which decides every remaining edge and
   detects Hall-condition infeasibility.

Newly decided edges are diffed against what was already emitted and
returned as deterministic, ascending-ordered
:class:`~repro.attack.solver.events.SolverEvent` records.  All loops
poll the optional :class:`~repro.budget.ComputeBudget`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.budget import ComputeBudget
from repro.errors import SolverError
from repro.graph.bipartite import ExplicitMappingSpace, MappingSpace
from repro.graph.propagation import propagate_degree_one
from repro.graph.refine import (
    EdgeClassification,
    classify_adjacency,
    propagate_degree_k,
)

from repro.attack.solver.events import Observation, SolverEvent

__all__ = ["ConsistencySolver", "solver_from_space"]

#: Mirrors the explicit-adjacency guard of the propagation module.
_DEFAULT_MAX_EDGES = 5_000_000


class ConsistencySolver:
    """Incremental forced/forbidden/undecided tracker for one instance.

    Parameters
    ----------
    adjacency:
        ``adjacency[i]`` lists the anon indices item ``i`` may map to
        (the square bipartite consistency graph).
    observed:
        Observed frequency per anon index; required to ingest
        ``tighten`` observations.
    true_partner_of:
        Optional ground-truth pairing (owner-side dual view).  When
        present, ``forced`` events carry a ``crack`` flag and the
        summary counts solver-certified cracks.
    item_labels, anon_labels:
        Optional display names echoed into events.
    budget:
        Optional compute budget polled by every solver loop.
    degree_k:
        Naked-subset propagation depth (``>= 1``; 1 disables the
        generalized front since degree-1 already ran).
    """

    def __init__(
        self,
        adjacency: Sequence[Iterable[int]],
        observed: Sequence[float] | None = None,
        true_partner_of: Sequence[int] | None = None,
        item_labels: Sequence[str] | None = None,
        anon_labels: Sequence[str] | None = None,
        budget: ComputeBudget | None = None,
        degree_k: int = 3,
        max_edges: int = _DEFAULT_MAX_EDGES,
    ) -> None:
        n = len(adjacency)
        if n == 0:
            raise SolverError("a solver instance needs a non-empty domain")
        self._n = n
        self._adjacency: list[set[int]] = []
        for i, row in enumerate(adjacency):
            candidates = {int(j) for j in row}
            if any(not 0 <= j < n for j in candidates):
                raise SolverError(f"adjacency of item #{i} references an invalid index")
            self._adjacency.append(candidates)
        if observed is not None and len(observed) != n:
            raise SolverError("observed frequencies must align with the anon side")
        self._observed = None if observed is None else tuple(float(f) for f in observed)
        if true_partner_of is not None:
            truth = [int(j) for j in true_partner_of]
            if sorted(truth) != list(range(n)):
                raise SolverError("ground truth must be a permutation of the anon indices")
            self._truth: list[int] | None = truth
        else:
            self._truth = None
        self._item_labels = None if item_labels is None else tuple(item_labels)
        self._anon_labels = None if anon_labels is None else tuple(anon_labels)
        if self._item_labels is not None and len(self._item_labels) != n:
            raise SolverError("item labels must align with the item side")
        if self._anon_labels is not None and len(self._anon_labels) != n:
            raise SolverError("anon labels must align with the anon side")
        self._budget = budget
        if degree_k < 1:
            raise SolverError(f"degree_k must be >= 1, got {degree_k}")
        self._degree_k = degree_k
        self._max_edges = max_edges
        self._step = 0
        self._emitted_forced: dict[int, int] = {}
        self._emitted_forbidden: set[tuple[int, int]] = set()
        self._infeasible = False
        self._classification: EdgeClassification | None = None
        self._closed = False

    # -- public state --------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def step(self) -> int:
        """Number of observations ingested so far."""
        return self._step

    @property
    def infeasible(self) -> bool:
        return self._infeasible

    @property
    def closed(self) -> bool:
        """True once a ``close`` observation ended the stream."""
        return self._closed

    @property
    def partition(self) -> EdgeClassification:
        """The current complete edge partition (classifying on demand)."""
        if self._classification is None:
            self._classification = self._classify()
        return self._classification

    def status(self, item_index: int, anon_index: int) -> str:
        """``"forced"`` / ``"forbidden"`` / ``"undecided"`` / ``"non-edge"``."""
        return self.partition.status(item_index, anon_index)

    def forced_pairs(self) -> dict[int, int]:
        """Item -> anon pairs currently proven to be in every mapping."""
        return dict(self.partition.forced)

    def certified_cracks(self) -> int | None:
        """Forced pairs agreeing with ground truth; ``None`` without truth."""
        if self._truth is None:
            return None
        return sum(1 for i, j in self.partition.forced.items() if self._truth[i] == j)

    def summary(self) -> dict[str, object]:
        """JSON-ready totals of the current partition."""
        partition = self.partition
        counts: dict[str, object] = {
            "n": self._n,
            "step": self._step,
            "forced": partition.n_forced,
            "forbidden": partition.n_forbidden,
            "undecided": partition.n_undecided,
            "infeasible": self._infeasible,
        }
        certified = self.certified_cracks()
        if certified is not None:
            counts["certified_cracks"] = certified
        return counts

    # -- the solving fronts --------------------------------------------------

    def _space(self) -> MappingSpace:
        """The current graph as a mapping space (identity truth stand-in)."""
        truth = self._truth if self._truth is not None else list(range(self._n))
        return ExplicitMappingSpace(
            items=tuple(range(self._n)),
            anonymized=tuple(range(self._n)),
            adjacency=[sorted(row) for row in self._adjacency],
            true_partner_of=truth,
        )

    def _classify(self) -> EdgeClassification:
        """Full partition of the current graph, propagation-accelerated.

        The propagation fronts only delete edges that are in no perfect
        matching, so classifying their residue classifies the current
        graph; their deletions are folded back into the ``forbidden``
        side of the returned partition.
        """
        n = self._n
        if any(not row for row in self._adjacency):
            empty = min(i for i in range(n) if not self._adjacency[i])
            return self._all_forbidden(
                witness=(empty,), reason=f"item #{empty} has no candidates left"
            )
        edges = sum(len(row) for row in self._adjacency)
        if edges > self._max_edges:
            raise SolverError(
                f"instance has {edges} edges, beyond the {self._max_edges}-edge guard"
            )
        propagation = propagate_degree_one(self._space(), max_edges=self._max_edges)
        if propagation.infeasible:
            return self._all_forbidden(witness=None, reason="degree-1 cascade emptied a node")
        pruned: list[set[int]] = [set() for _ in range(n)]
        for i, j in propagation.forced.items():
            pruned[i] = {j}
        for i, row in propagation.remaining_adjacency.items():
            pruned[i] = set(row)
        if self._degree_k > 1:
            subset = propagate_degree_k(pruned, k=self._degree_k, budget=self._budget)
            if subset.infeasible:
                return self._all_forbidden(
                    witness=None, reason="naked-subset propagation emptied a pool"
                )
            pruned = [set(row) for row in subset.adjacency]
        classification = classify_adjacency(pruned, budget=self._budget)
        if classification.infeasible:
            return self._all_forbidden(
                witness=classification.hall_witness, reason=classification.reason
            )
        # Fold propagation deletions back in: forbidden relative to the
        # *current* graph is everything not forced and not undecided.
        forbidden = []
        for i in range(n):
            decided_free = classification.undecided[i]
            pinned = classification.forced.get(i)
            banned = {j for j in self._adjacency[i] if j != pinned and j not in decided_free}
            forbidden.append(frozenset(banned))
        return EdgeClassification(
            n=n,
            forced=classification.forced,
            undecided=classification.undecided,
            forbidden=tuple(forbidden),
            infeasible=False,
        )

    def _all_forbidden(
        self, witness: tuple[int, ...] | None, reason: str | None
    ) -> EdgeClassification:
        return EdgeClassification(
            n=self._n,
            forced={},
            undecided=tuple(frozenset() for _ in range(self._n)),
            forbidden=tuple(frozenset(row) for row in self._adjacency),
            infeasible=True,
            hall_witness=witness,
            reason=reason,
        )

    # -- event emission ------------------------------------------------------

    def _label_fields(self, i: int, j: int) -> tuple[str | None, str | None]:
        item_label = None if self._item_labels is None else str(self._item_labels[i])
        anon_label = None if self._anon_labels is None else str(self._anon_labels[j])
        return item_label, anon_label

    def _diff_events(self) -> list[SolverEvent]:
        partition = self.partition
        events: list[SolverEvent] = []
        if partition.infeasible:
            if not self._infeasible:
                self._infeasible = True
                events.append(
                    SolverEvent(
                        kind="infeasible",
                        step=self._step,
                        detail=partition.reason,
                    )
                )
            return events
        for i in sorted(partition.forced):
            j = partition.forced[i]
            if self._emitted_forced.get(i) == j:
                continue
            self._emitted_forced[i] = j
            item_label, anon_label = self._label_fields(i, j)
            events.append(
                SolverEvent(
                    kind="forced",
                    step=self._step,
                    item=i,
                    anon=j,
                    item_label=item_label,
                    anon_label=anon_label,
                    crack=None if self._truth is None else self._truth[i] == j,
                )
            )
        for i in range(self._n):
            for j in sorted(partition.forbidden[i]):
                if (i, j) in self._emitted_forbidden:
                    continue
                self._emitted_forbidden.add((i, j))
                item_label, anon_label = self._label_fields(i, j)
                events.append(
                    SolverEvent(
                        kind="forbidden",
                        step=self._step,
                        item=i,
                        anon=j,
                        item_label=item_label,
                        anon_label=anon_label,
                    )
                )
        return events

    # -- ingestion -----------------------------------------------------------

    def bootstrap(self) -> list[SolverEvent]:
        """Classify the initial graph and emit its already-decided edges.

        Figure 6(a)'s staircase, for instance, forces every pair before
        any observation arrives.
        """
        return self._diff_events()

    def ingest(self, observation: Observation) -> list[SolverEvent]:
        """Apply one observation and return the newly decided edges."""
        if self._budget is not None:
            self._budget.poll()
        if observation.kind == "close":
            self._closed = True
            return []
        self._step += 1
        changed = self._apply(observation)
        if changed:
            self._classification = None
        return self._diff_events()

    def replay(self, observations: Iterable[Observation]) -> Iterator[SolverEvent]:
        """Bootstrap, then ingest each observation, yielding events in order."""
        yield from self.bootstrap()
        for observation in observations:
            yield from self.ingest(observation)
            if self._closed:
                return

    def _restrict(self, item: int, allowed: set[int]) -> bool:
        if not 0 <= item < self._n:
            raise SolverError(f"observation references item #{item}, domain is {self._n}")
        before = len(self._adjacency[item])
        self._adjacency[item] &= allowed
        return len(self._adjacency[item]) != before

    def _apply(self, observation: Observation) -> bool:
        kind = observation.kind
        if kind == "confirm":
            assert observation.item is not None and observation.anon is not None
            if not 0 <= observation.anon < self._n:
                raise SolverError(
                    f"observation references anon #{observation.anon}, domain is {self._n}"
                )
            return self._restrict(observation.item, {observation.anon})
        if kind == "restrict":
            assert observation.item is not None and observation.anons is not None
            return self._restrict(observation.item, set(observation.anons))
        if kind == "tighten":
            assert observation.item is not None
            assert observation.low is not None and observation.high is not None
            if self._observed is None:
                raise SolverError(
                    "'tighten' observations need an instance with observed frequencies"
                )
            allowed = {
                j
                for j, f in enumerate(self._observed)
                if observation.low <= f <= observation.high
            }
            return self._restrict(observation.item, allowed)
        if kind == "transaction":
            assert observation.items is not None and observation.anons is not None
            allowed = set(observation.anons)
            changed = False
            for item in observation.items:
                changed = self._restrict(item, allowed) or changed
            return changed
        raise SolverError(f"unknown observation kind {kind!r}")


def solver_from_space(
    space: MappingSpace,
    budget: ComputeBudget | None = None,
    degree_k: int = 3,
    max_edges: int = _DEFAULT_MAX_EDGES,
) -> ConsistencySolver:
    """Owner-side dual view: wrap a mapping space (with its ground truth).

    The observed frequencies ride along for frequency spaces, so
    ``tighten`` observations work against the same instance the
    assessment pipeline analyzes.
    """
    total_edges = space.edge_count()
    if total_edges > max_edges:
        # Fail before materializing the adjacency — a dense frequency
        # space can hold tens of millions of edges.
        raise SolverError(
            f"instance has {total_edges} edges, beyond the {max_edges}-edge guard"
        )
    observed = getattr(space, "observed", None)
    return ConsistencySolver(
        adjacency=[tuple(space.candidates(i)) for i in range(space.n)],
        observed=None if observed is None else [float(f) for f in observed],
        true_partner_of=[space.true_partner(i) for i in range(space.n)],
        item_labels=[repr(x) for x in space.items],
        anon_labels=[repr(x) for x in space.anonymized],
        budget=budget,
        degree_k=degree_k,
        max_edges=max_edges,
    )

"""Wire format of the attacker workbench: observations in, events out.

The ``repro-crack`` CLI and the ``POST /crack/step`` endpoint speak
JSONL — one JSON object per line, no wall-clock timestamps (streams must
replay byte-identically).  Four observation kinds tighten the
consistency graph (every one is an *intersection* of candidate sets, so
the final edge partition is independent of observation order):

``confirm``
    ``{"kind": "confirm", "item": 3, "anon": 5}`` — a confirmed
    identification: item 3 *is* anonymized item 5.
``restrict``
    ``{"kind": "restrict", "item": 3, "anons": [1, 5]}`` — auxiliary
    knowledge narrows item 3's candidates to the listed anons.
``tighten``
    ``{"kind": "tighten", "item": 3, "low": 0.4, "high": 0.5}`` — the
    hacker's belief interval for item 3 tightened; candidates outside
    the observed-frequency window drop out (requires the instance to
    carry observed frequencies).
``transaction``
    ``{"kind": "transaction", "items": [1, 2], "anons": [4, 5, 6]}`` —
    an auxiliary transaction: each listed item's partner lies among the
    listed anons.

``{"kind": "close"}`` ends a ``--watch`` stream.

The solver answers with events:

``forced``
    ``{"event": "forced", "step": 2, "item": 3, "anon": 5, ...}`` — the
    edge just locked on: it is in *every* consistent mapping.  When the
    instance carries ground truth, ``"crack": true`` marks a certain
    identification.
``forbidden``
    The edge was proven absent from every consistent mapping.
``infeasible``
    No consistent mapping is left; carries the Hall witness.
``summary``
    Totals after a step (emitted once per ingest by the CLI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import SolverError

__all__ = [
    "Observation",
    "SolverEvent",
    "decode_observation",
    "read_observations",
]

OBSERVATION_KINDS = ("confirm", "restrict", "tighten", "transaction", "close")
EVENT_KINDS = ("forced", "forbidden", "infeasible", "summary")


def _index(payload: Mapping[str, object], key: str, kind: str) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise SolverError(f"{kind!r} observation needs a non-negative integer {key!r}")
    return value


def _index_tuple(payload: Mapping[str, object], key: str, kind: str) -> tuple[int, ...]:
    value = payload.get(key)
    if not isinstance(value, (list, tuple)):
        raise SolverError(f"{kind!r} observation needs a list under {key!r}")
    out = []
    for element in value:
        if not isinstance(element, int) or isinstance(element, bool) or element < 0:
            raise SolverError(f"{kind!r} observation: {key!r} must hold non-negative integers")
        out.append(element)
    return tuple(out)


def _bound(payload: Mapping[str, object], key: str, kind: str) -> float:
    value = payload.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SolverError(f"{kind!r} observation needs a numeric {key!r}")
    return float(value)


@dataclass(frozen=True)
class Observation:
    """One parsed observation (see the module docstring for the kinds)."""

    kind: str
    item: int | None = None
    anon: int | None = None
    low: float | None = None
    high: float | None = None
    items: tuple[int, ...] | None = None
    anons: tuple[int, ...] | None = None

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "Observation":
        kind = payload.get("kind")
        if kind not in OBSERVATION_KINDS:
            raise SolverError(
                f"unknown observation kind {kind!r}; expected one of {OBSERVATION_KINDS}"
            )
        if kind == "close":
            return cls(kind="close")
        if kind == "confirm":
            return cls(
                kind="confirm",
                item=_index(payload, "item", kind),
                anon=_index(payload, "anon", kind),
            )
        if kind == "restrict":
            return cls(
                kind="restrict",
                item=_index(payload, "item", kind),
                anons=_index_tuple(payload, "anons", kind),
            )
        if kind == "tighten":
            low = _bound(payload, "low", kind)
            high = _bound(payload, "high", kind)
            if low > high:
                raise SolverError(f"'tighten' needs low <= high, got [{low}, {high}]")
            return cls(kind="tighten", item=_index(payload, "item", kind), low=low, high=high)
        return cls(
            kind="transaction",
            items=_index_tuple(payload, "items", kind),
            anons=_index_tuple(payload, "anons", kind),
        )

    def to_json(self) -> dict[str, object]:
        payload: dict[str, object] = {"kind": self.kind}
        if self.item is not None:
            payload["item"] = self.item
        if self.anon is not None:
            payload["anon"] = self.anon
        if self.low is not None:
            payload["low"] = self.low
        if self.high is not None:
            payload["high"] = self.high
        if self.items is not None:
            payload["items"] = list(self.items)
        if self.anons is not None:
            payload["anons"] = list(self.anons)
        return payload

    def encode(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SolverEvent:
    """One solver output event (``forced`` / ``forbidden`` / ...)."""

    kind: str
    step: int
    item: int | None = None
    anon: int | None = None
    item_label: str | None = None
    anon_label: str | None = None
    crack: bool | None = None
    detail: str | None = None
    counts: Mapping[str, int] | None = None

    def to_json(self) -> dict[str, object]:
        payload: dict[str, object] = {"event": self.kind, "step": self.step}
        if self.item is not None:
            payload["item"] = self.item
        if self.anon is not None:
            payload["anon"] = self.anon
        if self.item_label is not None:
            payload["item_label"] = self.item_label
        if self.anon_label is not None:
            payload["anon_label"] = self.anon_label
        if self.crack is not None:
            payload["crack"] = self.crack
        if self.detail is not None:
            payload["detail"] = self.detail
        if self.counts is not None:
            payload["counts"] = {key: self.counts[key] for key in sorted(self.counts)}
        return payload

    def encode(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))


def decode_observation(line: str) -> Observation:
    """Parse one JSONL observation line."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise SolverError(f"observation line is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise SolverError("an observation line must hold a JSON object")
    return Observation.from_json(payload)


def read_observations(lines: Iterable[str]) -> Iterator[Observation]:
    """Parse a JSONL observation stream, skipping blank lines."""
    for line in lines:
        stripped = line.strip()
        if stripped:
            yield decode_observation(stripped)

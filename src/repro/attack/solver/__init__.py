"""Streaming attacker workbench: the incremental consistency solver.

The dual, interactive view of the owner's risk assessment: feed the
solver a consistency-graph instance plus a stream of observations
(confirmed identifications, auxiliary transactions, tightening belief
intervals) and it maintains the exact forced/forbidden/undecided edge
partition, emitting JSONL events the moment an identification locks on.
See ``docs/attack.md`` for the model and the wire format.

Layering: this package builds on :mod:`repro.graph` (propagation,
Dulmage–Mendelsohn refinement) and must stay independent of
:mod:`repro.service` and :mod:`repro.io` — those wire it up, not the
other way around.
"""

from repro.attack.solver.core import ConsistencySolver, solver_from_space
from repro.attack.solver.events import (
    Observation,
    SolverEvent,
    decode_observation,
    read_observations,
)

__all__ = [
    "ConsistencySolver",
    "solver_from_space",
    "Observation",
    "SolverEvent",
    "decode_observation",
    "read_observations",
]

"""The hacker's side: constructing and scoring actual crack mappings.

The paper analyzes how many cracks a hacker gets *in expectation*; this
package makes the attack concrete, which the owner-side analysis needs
for red-teaming:

* :func:`~repro.attack.guess.best_guess_mapping` — the hacker's best
  deterministic guess (forced pairs from propagation, maximum-marginal
  assignment within the remaining freedom) with its expected accuracy;
* :func:`~repro.attack.guess.candidate_ranking` — the posterior over
  original items for one anonymized item;
* :func:`~repro.attack.evaluate.evaluate_attack` — run an attack against
  a released database and score it against the owner's ground truth;
* :mod:`repro.attack.solver` — the streaming workbench: an incremental
  :class:`~repro.attack.solver.ConsistencySolver` maintaining the exact
  forced/forbidden/undecided edge partition as observations arrive.
"""

from repro.attack.evaluate import AttackOutcome, evaluate_attack
from repro.attack.guess import CrackGuess, best_guess_mapping, candidate_ranking
from repro.attack.solver import (
    ConsistencySolver,
    Observation,
    SolverEvent,
    solver_from_space,
)

__all__ = [
    "CrackGuess",
    "best_guess_mapping",
    "candidate_ranking",
    "AttackOutcome",
    "evaluate_attack",
    "ConsistencySolver",
    "Observation",
    "SolverEvent",
    "solver_from_space",
]

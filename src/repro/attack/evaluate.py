"""Scoring attacks against ground truth — the owner's red-team harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anonymize.database import AnonymizedDatabase
from repro.attack.guess import CrackGuess, best_guess_mapping
from repro.beliefs.function import BeliefFunction
from repro.core.oestimate import o_estimate
from repro.graph.bipartite import MappingSpace, space_from_anonymized

__all__ = ["AttackOutcome", "evaluate_attack"]


@dataclass(frozen=True)
class AttackOutcome:
    """The score card of one attack run.

    Attributes
    ----------
    guess:
        The submitted crack mapping.
    n_cracked:
        Items the guess identified correctly (ground truth).
    n_items:
        Domain size.
    n_forced_correct:
        Correct identifications among the propagation-forced pairs.
    o_estimate:
        The O-estimate of the same space — the paper's prediction of the
        cracks a *random* consistent mapping achieves; a smart guess
        should meet or beat it.
    """

    guess: CrackGuess
    n_cracked: int
    n_items: int
    n_forced_correct: int
    o_estimate: float

    @property
    def accuracy(self) -> float:
        """Fraction of the domain the attack identified."""
        return self.n_cracked / self.n_items

    def summary(self) -> str:
        return (
            f"attack cracked {self.n_cracked}/{self.n_items} items "
            f"({self.accuracy:.1%}); O-estimate predicted {self.o_estimate:.2f}; "
            f"{self.guess.n_forced} forced pairs ({self.n_forced_correct} correct)"
        )


def evaluate_attack(
    released: AnonymizedDatabase | MappingSpace,
    belief: BeliefFunction | None = None,
    n_samples: int = 300,
    rng: np.random.Generator | None = None,
) -> AttackOutcome:
    """Run the best-guess attack and score it against ground truth.

    Parameters
    ----------
    released:
        Either a released :class:`AnonymizedDatabase` (then *belief* is
        required and the space is built from it) or a ready-made
        :class:`MappingSpace`.
    belief:
        The attacker's belief function (when *released* is a database).
    n_samples, rng:
        Budget for the marginal estimation inside the guesser.
    """
    if isinstance(released, MappingSpace):
        space = released
    else:
        if belief is None:
            raise ValueError("a belief function is required with a released database")
        space = space_from_anonymized(belief, released)
    rng = np.random.default_rng() if rng is None else rng

    guess = best_guess_mapping(space, n_samples=n_samples, rng=rng)
    truth = [space.true_partner(i) for i in range(space.n)]
    n_cracked = sum(1 for i, j in enumerate(guess.assignment) if j == truth[i])

    from repro.graph.propagation import propagate_degree_one

    propagation = propagate_degree_one(space)
    n_forced_correct = propagation.forced_cracks(space)

    return AttackOutcome(
        guess=guess,
        n_cracked=n_cracked,
        n_items=space.n,
        n_forced_correct=n_forced_correct,
        o_estimate=o_estimate(space).value,
    )

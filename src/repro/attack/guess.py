"""Constructing the hacker's best concrete crack mapping.

The paper's hacker picks a consistent mapping uniformly at random; a
*smart* hacker does better by exploiting structure:

1. **forced pairs** — degree-1 propagation (Figure 7) pins part of the
   mapping with certainty;
2. **group-assignment marginals** — for the remaining freedom, estimate
   ``P(item y belongs to frequency group g)`` under the uniform-mapping
   posterior (closed form for chains, Gibbs sampling otherwise) and
   commit the most confident placements first, respecting capacities;
3. within a group nothing distinguishes the anonymized items, so any
   bijection is as good as any other.

The resulting deterministic guess maximizes (greedily) the expected
number of cracks a single submitted mapping can achieve.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import FrequencyMappingSpace, MappingSpace
from repro.graph.matching import hopcroft_karp
from repro.graph.propagation import propagate_degree_one
from repro.simulation.gibbs import GibbsAssignmentSampler

__all__ = ["CrackGuess", "best_guess_mapping", "candidate_ranking"]


@dataclass(frozen=True)
class CrackGuess:
    """A concrete crack mapping with its provenance.

    Attributes
    ----------
    mapping:
        ``anonymized label -> guessed original item``.
    assignment:
        Item index -> anonymized index, aligned with the space.
    n_forced:
        Pairs pinned by propagation (correct with certainty when the
        belief is compliant).
    expected_cracks:
        The guesser's own estimate of how many guesses are right.
    """

    mapping: dict
    assignment: tuple[int, ...]
    n_forced: int
    expected_cracks: float


def _assignment_marginals(
    space: FrequencyMappingSpace,
    n_samples: int,
    rng: np.random.Generator,
) -> dict[int, dict[int, float]]:
    """``P(item i is assigned group g)`` estimated by the Gibbs chain."""
    sampler = GibbsAssignmentSampler(space, rng=rng, seed_with_truth=False)
    sampler.sweep(30)
    tallies: dict[int, defaultdict] = {
        i: defaultdict(float) for i in range(space.n)
    }
    for _ in range(n_samples):
        sampler.sweep(2)
        assignment = sampler.assignment
        for i in range(space.n):
            tallies[i][int(assignment[i])] += 1.0
    return {
        i: {g: count / n_samples for g, count in groups.items()}
        for i, groups in tallies.items()
    }


def _greedy_group_assignment(
    space: FrequencyMappingSpace,
    marginals: dict[int, dict[int, float]],
) -> list[int]:
    """A feasible group assignment maximizing total marginal, greedily.

    Starts from a guaranteed-feasible earliest-deadline-first assignment
    (deadline ties broken toward higher marginal), then runs exchange
    passes over adjacent group pairs: whenever two flexible items sit in
    each other's preferred groups, swapping them raises the total
    marginal while preserving every capacity.
    """
    import heapq

    k = len(space.groups)
    assignment = [-1] * space.n
    items_by_start: list[list[int]] = [[] for _ in range(k)]
    for i in range(space.n):
        g_lo, g_hi = space.admissible_run(i)
        items_by_start[g_lo].append(i)
    heap: list[tuple[int, float, int]] = []
    for g in range(k):
        for i in items_by_start[g]:
            deadline = space.admissible_run(i)[1]
            # Among equal deadlines, place the items that *want* this
            # group most; the deadline key preserves feasibility.
            heapq.heappush(heap, (deadline, -marginals[i].get(g, 0.0), i))
        for _ in range(int(space.groups.counts[g])):
            if not heap:
                raise GraphError("could not complete the greedy group assignment")
            deadline, _, i = heapq.heappop(heap)
            if deadline <= g:
                raise GraphError("could not complete the greedy group assignment")
            assignment[i] = g

    # Exchange passes: marginal-improving swaps across adjacent groups.
    members: list[list[int]] = [[] for _ in range(k)]
    for i, g in enumerate(assignment):
        members[g].append(i)

    def gain(i: int, from_group: int, to_group: int) -> float:
        by_group = marginals[i]
        return by_group.get(to_group, 0.0) - by_group.get(from_group, 0.0)

    for _ in range(3):
        improved = False
        for g in range(k - 1):
            h = g + 1
            movers_up = sorted(
                (i for i in members[g] if space.admissible_run(i)[1] > h),
                key=lambda i: -gain(i, g, h),
            )
            movers_down = sorted(
                (i for i in members[h] if space.admissible_run(i)[0] <= g),
                key=lambda i: -gain(i, h, g),
            )
            for up, down in zip(movers_up, movers_down):
                if gain(up, g, h) + gain(down, h, g) <= 1e-12:
                    break
                assignment[up], assignment[down] = h, g
                members[g].remove(up)
                members[h].remove(down)
                members[g].append(down)
                members[h].append(up)
                improved = True
        if not improved:
            break
    return assignment


def best_guess_mapping(
    space: MappingSpace,
    n_samples: int = 300,
    rng: np.random.Generator | None = None,
) -> CrackGuess:
    """The hacker's best deterministic crack mapping for *space*.

    For frequency spaces, combines propagation-forced pairs with a
    maximum-marginal group assignment; for explicit spaces, forced pairs
    plus an arbitrary consistent completion (no group symmetry to
    exploit).  The ``expected_cracks`` field is the guesser's own
    estimate — ground truth is never consulted.
    """
    rng = np.random.default_rng() if rng is None else rng
    from repro.graph.matching import has_perfect_matching

    if not has_perfect_matching(space):
        # Wrong beliefs can be mutually inconsistent (some item admits no
        # observed frequency, or capacities clash).  A real hacker submits
        # the best partial mapping: a maximum consistent matching,
        # completed arbitrarily.
        return _maximum_matching_guess(space, rng)

    propagation = propagate_degree_one(space)

    if isinstance(space, FrequencyMappingSpace):
        marginals = _assignment_marginals(space, n_samples, rng)
        group_assignment = _greedy_group_assignment(space, marginals)
        # Force propagation pairs over the greedy (they are certainties).
        group_of_anon = space.groups.group_of
        for i, j in propagation.forced.items():
            group_assignment[i] = int(group_of_anon[j])
        assignment = _pair_within_groups(
            space, group_assignment, propagation.forced, rng
        )
        expected = 0.0
        counts = space.groups.counts
        for i in range(space.n):
            if i in propagation.forced:
                expected += 1.0
            else:
                g = group_assignment[i]
                expected += marginals[i].get(g, 0.0) / int(counts[g])
    else:
        adjacency = [list(space.candidates(i)) for i in range(space.n)]
        match_left, _, size = hopcroft_karp(adjacency, space.n)
        if size != space.n:
            raise GraphError("no consistent crack mapping exists to guess with")
        assignment = list(match_left)
        for i, j in propagation.forced.items():
            if assignment[i] != j:
                # swap to honour the forced pair
                other = assignment.index(j)
                assignment[other], assignment[i] = assignment[i], j
        expected = float(propagation.n_forced)
        free = space.n - propagation.n_forced
        if free:
            expected += sum(
                1.0 / space.outdegree(i)
                for i in range(space.n)
                if i not in propagation.forced
            )

    mapping = {
        space.anonymized[j]: space.items[i] for i, j in enumerate(assignment)
    }
    return CrackGuess(
        mapping=mapping,
        assignment=tuple(int(j) for j in assignment),
        n_forced=propagation.n_forced,
        expected_cracks=float(expected),
    )


def _maximum_matching_guess(
    space: MappingSpace, rng: np.random.Generator
) -> CrackGuess:
    """Best partial guess when no consistent perfect matching exists."""
    from repro.graph.matching import maximum_matching

    match = maximum_matching(space)
    assignment = [int(j) for j in match]
    used = {j for j in assignment if j >= 0}
    spare = iter(j for j in range(space.n) if j not in used)
    for i in range(space.n):
        if assignment[i] < 0:
            assignment[i] = next(spare)
    expected = sum(
        1.0 / space.outdegree(i)
        for i in range(space.n)
        if match[i] >= 0 and space.outdegree(i) > 0
    )
    mapping = {space.anonymized[j]: space.items[i] for i, j in enumerate(assignment)}
    return CrackGuess(
        mapping=mapping,
        assignment=tuple(assignment),
        n_forced=0,
        expected_cracks=float(expected),
    )


def _pair_within_groups(
    space: FrequencyMappingSpace,
    group_assignment: list[int],
    forced: dict[int, int],
    rng: np.random.Generator,
) -> list[int]:
    """Expand a group assignment into a full matching, honouring *forced*.

    Within-group pairings are shuffled: the hacker has no information to
    prefer one bijection over another, and index-order pairing would
    leak the canonical ground-truth pairing on owner-built spaces.
    """
    assignment = [-1] * space.n
    used = set()
    for i, j in forced.items():
        assignment[i] = j
        used.add(j)
    pools = {
        g: [j for j in members if j not in used]
        for g, members in enumerate(space.groups.members)
    }
    for pool in pools.values():
        rng.shuffle(pool)
    cursors = {g: 0 for g in pools}
    for i in range(space.n):
        if assignment[i] != -1:
            continue
        g = group_assignment[i]
        pool = pools[g]
        if cursors[g] >= len(pool):
            # Capacity exhausted by forced pairs: place anywhere legal.
            for alt in range(len(space.groups)):
                g_lo, g_hi = space.admissible_run(i)
                if g_lo <= alt < g_hi and cursors[alt] < len(pools[alt]):
                    g = alt
                    break
            pool = pools[g]
        assignment[i] = pool[cursors[g]]
        cursors[g] += 1
    return assignment


def candidate_ranking(
    space: MappingSpace,
    anonymized_label,
    n_samples: int = 400,
    rng: np.random.Generator | None = None,
) -> list[tuple[object, float]]:
    """Posterior over original items for one anonymized item.

    ``P(C(x') = y)`` under the uniform-consistent-mapping model, highest
    first.  For frequency spaces this reduces to group-assignment
    marginals divided by the group size (within-group symmetry); for
    explicit spaces it is estimated by the swap sampler.
    """
    rng = np.random.default_rng() if rng is None else rng
    try:
        anon_index = space.anonymized.index(anonymized_label)
    except ValueError:
        raise GraphError(f"{anonymized_label!r} is not an anonymized item") from None

    if isinstance(space, FrequencyMappingSpace):
        g = int(space.groups.group_of[anon_index])
        group_size = int(space.groups.counts[g])
        marginals = _assignment_marginals(space, n_samples, rng)
        ranking = [
            (space.items[i], marginals[i].get(g, 0.0) / group_size)
            for i in range(space.n)
            if space.is_edge(i, anon_index)
        ]
    else:
        from repro.simulation.sampler import MatchingSampler

        sampler = MatchingSampler(space, rng=rng, seed_with_truth=False)
        sampler.sweep(50)
        hits = defaultdict(float)
        for _ in range(n_samples):
            sampler.sweep(3)
            matching = sampler.matching
            for i in range(space.n):
                if matching[i] == anon_index:
                    hits[i] += 1.0
                    break
        ranking = [
            (space.items[i], count / n_samples) for i, count in hits.items()
        ]
    ranking.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return ranking

"""Red-teaming a release: play the smart hacker before the real one does.

The Assess-Risk recipe predicts how many identities a *random*
consistent mapping reveals.  A determined hacker does better: forced
pairs are certainties and group-assignment marginals point at the most
likely identities.  This example mounts the strongest attack the
library knows against a release, at three levels of attacker knowledge,
and compares achieved cracks against the recipe's prediction.

Run with::

    python examples/red_team.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    anonymize,
    candidate_ranking,
    evaluate_attack,
    from_sample_belief,
    ignorant_belief,
    o_estimate,
    point_belief,
    sample_transactions,
    space_from_anonymized,
    uniform_width_belief,
)
from repro.data import FrequencyGroups
from repro.datasets import QuestParameters, quest_database


def main() -> None:
    rng = np.random.default_rng(17)
    db = quest_database(
        QuestParameters(
            n_items=50,
            n_transactions=1500,
            avg_transaction_size=8,
            avg_pattern_size=3,
            n_patterns=30,
        ),
        rng=rng,
    )
    released = anonymize(db, rng=rng)
    frequencies = db.frequencies()
    delta = FrequencyGroups(frequencies).median_gap()
    print(f"release: {len(db.domain)} items, {db.n_transactions} transactions\n")

    attackers = [
        ("no knowledge (Lemma 1 world)", ignorant_belief(db.domain)),
        ("10% data sample (Figure 13 world)",
         from_sample_belief(sample_transactions(db, 0.1, rng=rng))),
        ("ball-park frequencies (recipe world)",
         uniform_width_belief(frequencies, delta)),
        ("exact frequencies (Lemma 3 world)", point_belief(frequencies)),
    ]

    print(f"{'attacker':>38} {'predicted':>10} {'achieved':>9} {'forced':>7}")
    for label, belief in attackers:
        outcome = evaluate_attack(released, belief, rng=rng)
        print(
            f"{label:>38} {outcome.o_estimate:>10.2f} "
            f"{outcome.n_cracked:>9} {outcome.guess.n_forced:>7}"
        )

    # Zoom in: who hides behind one anonymized item?
    belief = uniform_width_belief(frequencies, delta)
    space = space_from_anonymized(belief, released)
    target_item = max(frequencies, key=frequencies.get)
    target_anon = released.mapping.anonymize_item(target_item)
    print(f"\nposterior for anonymized item {target_anon!r} "
          f"(truly item {target_item}, the best seller):")
    for item, probability in candidate_ranking(space, target_anon, rng=rng)[:5]:
        marker = "  <-- truth" if item == target_item else ""
        print(f"  item {item}: {probability:.0%}{marker}")

    estimate = o_estimate(space)
    print(f"\nrecipe's overall prediction: {estimate.value:.1f} of "
          f"{space.n} items ({estimate.fraction:.0%})")


if __name__ == "__main__":
    main()

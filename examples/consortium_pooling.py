"""Scenario 2 of the paper: mining for the common good.

Several companies pool anonymized data in a consortium.  The catch: a
partner *is* a company in the same market, so its own database is
"similar data" — the strongest realistic form of partial information the
paper models.  This example:

1. creates an industry-wide ground truth and two partners whose
   databases are samples of it (one big, one small);
2. runs Similarity-by-Sampling (Figure 13) so the owner can see how much
   compliancy a partner-sized sample achieves;
3. compares the expected cracks when the pooled release is attacked by
   the small partner, the big partner, and an outsider;
4. shows how the owner reads the recipe's alpha_max against the curve.

Run with::

    python examples/consortium_pooling.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    anonymize,
    assess_risk,
    from_sample_belief,
    o_estimate,
    sample_transactions,
    space_from_anonymized,
)
from repro.datasets import random_database
from repro.extensions import linkage_risk
from repro.recipe import similarity_by_sampling


def main() -> None:
    rng = np.random.default_rng(2005)
    # Industry-wide purchasing behaviour; the consortium member who is
    # deciding whether to contribute holds this database.
    owner_db = random_database(n_items=50, n_transactions=4000, density=0.2, rng=rng)
    print(f"owner database: {len(owner_db.domain)} items, "
          f"{owner_db.n_transactions} transactions")

    released = anonymize(owner_db, rng=rng)

    # -- partners hold similar data: samples of the same behaviour ---------
    small_partner = sample_transactions(owner_db, 0.05, rng=rng)
    big_partner = sample_transactions(owner_db, 0.40, rng=rng)

    print("\nattacks on the pooled (anonymized) release:")
    for label, partner_db in [("5%-sized partner", small_partner),
                              ("40%-sized partner", big_partner)]:
        belief = from_sample_belief(partner_db)
        alpha = belief.compliancy(owner_db.frequencies())
        space = space_from_anonymized(belief, released)
        estimate = o_estimate(space)
        print(f"  {label:>18}: compliancy alpha = {alpha:.2f}, "
              f"expected cracks = {estimate.value:.1f} "
              f"({estimate.fraction:.0%})")

    # -- Figure 13: simulate similarity by sampling, before joining --------
    print("\nSimilarity-by-Sampling curve (Figure 13):")
    points = similarity_by_sampling(
        owner_db, fractions=[0.05, 0.1, 0.2, 0.4, 0.8], n_samples=8, rng=rng
    )
    for point in points:
        bar = "#" * round(point.alpha_mean * 40)
        print(f"  sample {point.fraction:>4.0%}: alpha = {point.alpha_mean:.2f} "
              f"+/- {point.alpha_std:.2f}  {bar}")

    # -- the other consortium hazard: linking two partners' releases -------
    link = linkage_risk(owner_db, rng=rng)
    print(f"\nif two partners each receive an independently anonymized half,")
    print(f"a collusion could link {link.value:.1f} of {link.n} columns "
          f"({link.fraction:.0%}) by frequency alone")

    # -- the decision -------------------------------------------------------
    report = assess_risk(owner_db, tolerance=0.1, rng=rng)
    print(f"\nAssess-Risk at tau = 0.1: {report.decision.value}")
    if report.alpha_max is not None:
        print(f"alpha_max = {report.alpha_max:.2f}")
        reachable = [p for p in points if p.alpha_mean >= report.alpha_max]
        if reachable:
            smallest = min(reachable, key=lambda p: p.fraction)
            print(
                f"a partner holding just a {smallest.fraction:.0%} sample already "
                f"reaches alpha = {smallest.alpha_mean:.2f} >= alpha_max — "
                "contributing the data is risky"
            )
        else:
            print("no partner-sized sample reaches alpha_max — pooling looks safe")


if __name__ == "__main__":
    main()

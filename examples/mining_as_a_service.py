"""Scenario 1 of the paper: mining as a service.

A company without data-mining expertise ships its (anonymized) basket
data to an external provider.  This example plays both sides:

* the **provider** mines the released data and returns renamed patterns
  the owner can translate back — service delivered;
* a **leak** happens: a competitor obtains the released file plus public
  market-share figures (approximate frequencies of well-known products).
  We quantify exactly how many product identities the competitor should
  expect to recover, item by item, and how the owner could have foreseen
  it with the recipe.

Run with::

    python examples/mining_as_a_service.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BeliefFunction,
    Interval,
    TransactionDatabase,
    anonymize,
    assess_risk,
    fp_growth,
    o_estimate,
    space_from_anonymized,
)
from repro.datasets import zipf_profile
from repro.datasets.synthetic import database_from_profile
from repro.simulation import simulate_expected_cracks


def build_catalogue_database() -> TransactionDatabase:
    """A 60-product catalogue with Zipf-like popularity."""
    profile = zipf_profile(
        n_items=60, n_transactions=3000, exponent=0.9, max_frequency=0.6,
        rng=np.random.default_rng(3),
    )
    return database_from_profile(profile, rng=np.random.default_rng(4))


def competitor_belief(db: TransactionDatabase) -> BeliefFunction:
    """Market knowledge: good ranges for the top sellers, vague elsewhere.

    The competitor reads industry reports: the 10 best-selling products'
    penetration is known within +/-2 points; the mid-market within +/-10;
    the long tail is anyone's guess.
    """
    frequencies = db.frequencies()
    ranked = sorted(frequencies, key=frequencies.get, reverse=True)
    intervals = {}
    for rank, item in enumerate(ranked):
        f = frequencies[item]
        if rank < 10:
            intervals[item] = Interval.around(f, 0.02)
        elif rank < 30:
            intervals[item] = Interval.around(f, 0.10)
        else:
            intervals[item] = Interval(0.0, max(0.2, f))
    return BeliefFunction(intervals)


def main() -> None:
    db = build_catalogue_database()
    released = anonymize(db, rng=np.random.default_rng(5))
    print(f"shipped to provider: {db.n_transactions} transactions, "
          f"{len(db.domain)} anonymized products")

    # -- the service works -------------------------------------------------
    patterns = fp_growth(released.database, min_support=0.2)
    print(f"provider returns {len(patterns)} frequent itemsets (renamed); "
          "owner translates them back with the secret mapping")
    top = patterns[0]
    translated = {released.mapping.deanonymize_item(a) for a in top.items}
    print(f"  e.g. top pattern {set(top.items)} -> products {translated} "
          f"(support {top.support:.0%})")

    # -- the leak ----------------------------------------------------------
    belief = competitor_belief(db)
    space = space_from_anonymized(belief, released)
    estimate = o_estimate(space)
    simulated = simulate_expected_cracks(
        space, runs=3, samples_per_run=200, rng=np.random.default_rng(6),
        rao_blackwell=True, method="gibbs",
    )
    print("\nif the file leaks to a competitor with market knowledge:")
    print(f"  O-estimate of recovered identities : {estimate.value:.1f} "
          f"({estimate.fraction:.0%} of the catalogue)")
    print(f"  simulated                          : {simulated.mean:.1f} "
          f"+/- {simulated.std:.1f}")

    # Which products are most exposed?
    degrees = space.outdegrees()
    exposed = sorted(
        ((1.0 / degrees[i], space.items[i]) for i in space.compliant_indices()),
        reverse=True,
    )
    print("  most exposed products (crack probability by O-estimate):")
    for probability, item in exposed[:5]:
        print(f"    {item!r:>6}: {probability:.0%}")

    # -- what the recipe would have said ------------------------------------
    report = assess_risk(db, tolerance=0.1, rng=np.random.default_rng(2))
    print("\nAssess-Risk verdict at tau = 0.1:")
    print(report.summary())


if __name__ == "__main__":
    main()
